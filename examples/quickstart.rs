//! Quickstart: define a mapping, compile it to lenses, exchange data
//! forward, edit the target, and push the edit back.
//!
//! Run with `cargo run --example quickstart`.

use dex::core::{compile, Engine};
use dex::logic::parse_mapping;
use dex::relational::{tuple, Instance};
use dex::rellens::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the two schemas and the mapping in the textual
    //    mapping language: variables shared between the two sides are
    //    copied; `mgr` appears only on the right, so it is
    //    existentially quantified (nobody knows the manager yet).
    let mapping = parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);

        Emp(x) -> Manager(x, y);
        "#,
    )?;

    // 2. Compile the st-tgds into a lens template and instantiate the
    //    engine. The compiler reports one policy "hole": what to do
    //    with the undetermined `Manager.mgr` column (default: fresh
    //    labeled nulls, exactly what the chase would invent).
    let template = compile(&mapping)?;
    let engine = Engine::new(template, Environment::new())?;
    println!("{}", engine.show_plan());

    // 3. Forward exchange: materialize the target.
    let source = Instance::with_facts(
        mapping.source().clone(),
        vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
    )?;
    let target = engine.forward(&source, None)?;
    println!("-- target after forward exchange --\n{target}");

    // 4. Edit the target: Carol joins on the target side with a known
    //    manager.
    let mut edited = target.clone();
    edited.insert("Manager", tuple!["Carol", "Ted"])?;

    // 5. Backward: the edit propagates to the source.
    let source2 = engine.backward(&edited, &source)?;
    println!("-- source after backward propagation --\n{source2}");
    assert!(source2.contains("Emp", &tuple!["Carol"]));

    // 6. And forward again: everything stays consistent.
    let target2 = engine.forward(&source2, Some(&edited))?;
    assert!(mapping.is_solution(&source2, &target2));
    println!("-- round trip complete; target is a valid solution --");
    Ok(())
}
