//! The paper's worked Examples 1–3 end to end: exchange with labeled
//! nulls, composition into an SO-tgd, and the disjunctive maximum
//! recovery.
//!
//! Run with `cargo run --example employees`.

use dex::chase::{core_of, exchange, so_exchange};
use dex::logic::parse_mapping;
use dex::ops::{compose, maximum_recovery, not_invertible_witness};
use dex::relational::homomorphism::is_homomorphic_to;
use dex::relational::{tuple, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------ Example 1
    println!("== Example 1: Emp -> Manager ==");
    let m = parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )?;
    let i = Instance::with_facts(
        m.source().clone(),
        vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
    )?;
    let j_star = exchange(&m, &i)?.target;
    println!("universal solution J*:\n{j_star}");

    // J* maps homomorphically into every other solution.
    let j1 = Instance::with_facts(
        m.target().clone(),
        vec![(
            "Manager",
            vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
        )],
    )?;
    assert!(is_homomorphic_to(&j_star, &j1));
    println!("J* -> J1 homomorphism exists: the null solution is most general");
    assert_eq!(core_of(&j_star), j_star, "J* is already a core");

    // ------------------------------------------------------ Example 2
    println!("\n== Example 2: composition needs second-order tgds ==");
    let m23 = parse_mapping(
        r#"
        source Manager(emp, mgr);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Manager(x, y) -> Boss(x, y);
        Manager(x, x) -> SelfMngr(x);
        "#,
    )?;
    let comp = compose(&m, &m23)?;
    println!("composed dependency:\n  {comp}");
    assert!(
        comp.st_tgds.is_none(),
        "not expressible by st-tgds (second-order quantification is unavoidable)"
    );
    let k = so_exchange(&comp.sotgd, m23.target(), &i)?;
    println!("chasing the SO-tgd over I yields Skolem-term bosses:\n{k}");

    // ------------------------------------------------------ Example 3
    println!("== Example 3: inverses lose information ==");
    let parents = parse_mapping(
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    )?;
    let i1 = Instance::with_facts(
        parents.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )?;
    let i2 = Instance::with_facts(
        parents.source().clone(),
        vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
    )?;
    assert!(not_invertible_witness(&parents, &i1, &i2));
    println!("Father-only and Mother-only sources are indistinguishable: no exact inverse");

    let recovery = maximum_recovery(&parents)?;
    println!("maximum recovery (note the disjunction):\n  {recovery}");
    let j = exchange(&parents, &i1)?.target;
    assert!(recovery.satisfied_by(&j, &i1));
    assert!(recovery.satisfied_by(&j, &i2));
    println!("both I1 and I2 are equally good recoveries of J — exactly the paper's point");
    Ok(())
}
