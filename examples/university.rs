//! The paper's Figure 1: a visual correspondence diagram compiled to
//! st-tgds, then to a lens plan, then executed in both directions.
//!
//! Run with `cargo run --example university`.

use dex::chase::exchange;
use dex::core::{compile, Engine};
use dex::logic::{CorrespondenceGroup, CorrespondenceSet, Mapping};
use dex::relational::{tuple, Instance, RelSchema, Schema};
use dex::rellens::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schemas around Figure 1's upper diagram.
    let source =
        Schema::with_relations(vec![RelSchema::untyped("Takes", vec!["name", "course"])?])?;
    let target = Schema::with_relations(vec![
        RelSchema::untyped("Student", vec!["id", "name"])?,
        RelSchema::untyped("Assgn", vec!["name", "course"])?,
    ])?;

    // The user draws arrows; the tool compiles them to st-tgds
    // (paper: “These visual representations are then compiled into
    // sets of st-tgds”).
    let diagram = CorrespondenceSet::new(vec![CorrespondenceGroup::new(
        vec!["Takes"],
        vec!["Student", "Assgn"],
    )
    .arrow(("Takes", "name"), ("Student", "name"))
    .arrow(("Takes", "name"), ("Assgn", "name"))
    .arrow(("Takes", "course"), ("Assgn", "course"))]);

    let tgds = diagram.compile(&source, &target)?;
    println!("== compiled st-tgds ==");
    for t in &tgds {
        println!("  {t}");
    }

    let mapping = Mapping::new(source, target, tgds)?;

    // Execute via the classical chase…
    let src = Instance::with_facts(
        mapping.source().clone(),
        vec![(
            "Takes",
            vec![
                tuple!["Alice", "Databases"],
                tuple!["Alice", "Programming"],
                tuple!["Bob", "Databases"],
            ],
        )],
    )?;
    let chase_result = exchange(&mapping, &src)?;
    println!(
        "\n== chase: universal solution ({} nulls invented) ==\n{}",
        chase_result.nulls_created, chase_result.target
    );

    // …and via the compiled lens engine (same shape, plus a plan to
    // show and a backward direction).
    let template = compile(&mapping)?;
    let engine = Engine::new(template, Environment::new())?;
    println!("{}", engine.show_plan());
    let tgt = engine.forward(&src, None)?;
    println!("== lens engine forward ==\n{tgt}");
    assert!(mapping.is_solution(&src, &tgt));

    // A registrar fixes a typo on the target side: Bob drops Databases.
    let mut edited = tgt.clone();
    edited.remove("Assgn", &tuple!["Bob", "Databases"])?;
    let src2 = engine.backward(&edited, &src)?;
    println!("== source after the registrar's edit ==\n{src2}");
    assert!(!src2.contains("Takes", &tuple!["Bob", "Databases"]));
    Ok(())
}
