//! The introduction's Person1/Person2 scenario, with every question the
//! paper asks answered by an explicit update policy.
//!
//! > “How does one populate the Salary field? Should it be filled in by
//! > nulls …? How does one populate the ZipCode field? Should it be
//! > filled in … as a function of the City attribute? … Is the Age
//! > field preserved?”
//!
//! Run with `cargo run --example persons`.

use dex::core::{compile, Engine, HoleBinding, HoleSite};
use dex::logic::parse_mapping;
use dex::relational::{tuple, Instance, Name, Value};
use dex::rellens::{Environment, UpdatePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mapping = parse_mapping(
        r#"
        source Person1(id, name, age, city);
        target Person2(id, name, salary, zipcode);

        Person1(i, n, a, c) -> Person2(i, n, s, z);
        "#,
    )?;

    let mut template = compile(&mapping)?;
    println!("== the compiler's questions ==");
    for h in &template.holes {
        println!("  {h}");
    }

    // Answer them:
    //  * Salary: no source information — use the environment's default.
    //  * ZipCode: nulls for now (the paper's most-general choice).
    //  * Age (backward): new people arriving from Person2 get age null.
    //  * City (backward): derive it from… nothing here — constant.
    let ids: Vec<(usize, HoleBinding)> = template
        .holes
        .iter()
        .map(|h| {
            let binding = match &h.site {
                HoleSite::TargetColumn { column, .. } if column == "salary" => {
                    HoleBinding::Column(UpdatePolicy::Env(Name::new("starting_salary")))
                }
                HoleSite::TargetColumn { .. } => HoleBinding::Column(UpdatePolicy::Null),
                HoleSite::SourceColumn { column, .. } if column == "c" => {
                    HoleBinding::Column(UpdatePolicy::Const("unknown-city".into()))
                }
                _ => HoleBinding::Column(UpdatePolicy::Null),
            };
            (h.id, binding)
        })
        .collect();
    for (id, b) in ids {
        template.bind(id, b)?;
    }

    let mut env = Environment::new();
    env.insert(Name::new("starting_salary"), Value::int(55_000));
    let engine = Engine::new(template, env)?;
    println!("\n{}", engine.show_plan());

    let source = Instance::with_facts(
        mapping.source().clone(),
        vec![(
            "Person1",
            vec![
                tuple![1i64, "Alice", 30i64, "Sydney"],
                tuple![2i64, "Bob", 40i64, "Santiago"],
            ],
        )],
    )?;

    let target = engine.forward(&source, None)?;
    println!("-- Person2 after exchange --\n{target}");

    // Changes made in Person2 form migrate back (the intro's “how are
    // those changes migrated back?”): rename Bob, add Carol.
    let mut edited = target.clone();
    let bob = edited
        .relation("Person2")
        .unwrap()
        .iter()
        .find(|t| t[1] == Value::str("Bob"))
        .unwrap()
        .clone();
    edited.remove("Person2", &bob)?;
    let renamed = bob.with_value(1, Value::str("Robert"));
    edited.insert("Person2", renamed)?;
    edited.insert(
        "Person2",
        dex::relational::Tuple::new(vec![
            Value::int(3),
            Value::str("Carol"),
            Value::int(70_000),
            Value::str("2000"),
        ]),
    )?;

    let source2 = engine.backward(&edited, &source)?;
    println!("-- Person1 after backward propagation --\n{source2}");

    // Alice untouched: her age is preserved exactly (she survived the
    // round trip). Bob was renamed, so his row is "new" from the
    // lens's viewpoint: his age is governed by the Age policy.
    assert!(source2.contains("Person1", &tuple![1i64, "Alice", 30i64, "Sydney"]));
    let carol = source2
        .relation("Person1")
        .unwrap()
        .iter()
        .find(|t| t[1] == Value::str("Carol"))
        .expect("Carol arrived on the source side");
    assert!(carol[2].is_null(), "her age is unknown (Age policy: null)");
    assert_eq!(carol[3], Value::str("unknown-city"), "City policy: const");
    println!("-- done --");
    Ok(())
}
