//! The paper's Figure 2: schema A evolves into A′ while a mapping
//! M : A → B is in place. Both repair strategies from §4 are shown:
//!
//! 1. lens route — `[ℓ₂⁻¹, ℓ₁⁻¹, m₁, m₂, m₃]`: invert the evolution
//!    lenses and prepend them to the mapping lens;
//! 2. channel route — propagate the SMOs through the st-tgds,
//!    producing a rewritten mapping over A′.
//!
//! Run with `cargo run --example schema_evolution`.

use dex::core::{compile, Engine};
use dex::evolution::{propagate_all, EvolutionLens, Smo};
use dex::lens::symmetric::{invert, SymLens};
use dex::logic::parse_mapping;
use dex::relational::{tuple, AttrType, Instance, Name};
use dex::rellens::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The original mapping M : A -> B.
    let mapping = parse_mapping(
        r#"
        source Person(id, name, age);
        target Contact(name);
        Person(i, n, a) -> Contact(n);
        "#,
    )?;
    let engine = Engine::new(compile(&mapping)?, Environment::new())?;

    // Schema A evolves: the table is renamed and gains a column.
    let evolution = vec![
        Smo::RenameTable {
            from: Name::new("Person"),
            to: Name::new("People"),
        },
        Smo::AddColumn {
            table: Name::new("People"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: dex::evolution::smo::ColumnDefault::Const("unknown".into()),
        },
    ];

    // Data already lives in the evolved schema A′.
    let evo = EvolutionLens::new(evolution.clone(), mapping.source().clone())?;
    let a_prime_schema = evo.final_schema().unwrap().clone();
    let evolved = Instance::with_facts(
        a_prime_schema,
        vec![(
            "People",
            vec![
                tuple![1i64, "Alice", 30i64, "Sydney"],
                tuple![2i64, "Bob", 40i64, "Santiago"],
            ],
        )],
    )?;

    // ---------------------------------------------- Strategy 1: lenses
    // [ℓ⁻¹ ; M]: the inverted evolution carries A′ back to A, the
    // engine's symmetric lens carries A to B.
    let inv = invert(evo.clone());
    let (a_instance, _c) = inv.put_r(&evolved, &inv.missing());
    let b_via_lenses = engine.forward(&a_instance, None)?;
    println!("== strategy 1 (invert evolution, then map) ==\n{b_via_lenses}");

    // ---------------------------------------------- Strategy 2: channel
    // Propagate the SMOs through the mapping: the rewritten tgds speak
    // the evolved schema directly.
    let evolved_mapping = propagate_all(&evolution, &mapping)?;
    println!("== rewritten mapping over A′ ==");
    for t in evolved_mapping.st_tgds() {
        println!("  {t}");
    }
    let engine2 = Engine::new(compile(&evolved_mapping)?, Environment::new())?;
    let b_via_channel = engine2.forward(&evolved, None)?;
    println!("== strategy 2 (channel propagation) ==\n{b_via_channel}");

    // The two strategies agree on this evolution.
    assert_eq!(b_via_lenses, b_via_channel);
    println!("both strategies produce the same target — Figure 2 is solved twice");

    // Bonus: the evolved mapping still supports backward propagation.
    let mut edited = b_via_channel.clone();
    edited.insert("Contact", tuple!["Carol"])?;
    let evolved2 = engine2.backward(&edited, &evolved)?;
    let carol = evolved2
        .relation("People")
        .unwrap()
        .iter()
        .find(|t| t[1] == dex::relational::Value::str("Carol"))
        .expect("Carol propagated into the evolved source");
    println!("Carol's evolved-source row: {carol}");
    Ok(())
}
