//! Incremental synchronization: stream edits through a lens pipeline
//! without recomputing the view — the delta-lens direction the paper
//! cites (delta lenses “use the nature of the modification … to compute
//! a delta”).
//!
//! Run with `cargo run --example incremental_sync`.

use dex::lens::edit::Delta;
use dex::relational::{tuple, Expr, Instance, Name, RelSchema, Schema};
use dex::rellens::{IncrementalLens, JoinPolicy, RelLensExpr, UpdatePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::with_relations(vec![
        RelSchema::untyped("Person", vec!["id", "name", "age"])?,
        RelSchema::untyped("AgeBand", vec!["age", "band"])?,
    ])?;

    // The published view: adults joined with their age band, projected
    // to (id, band).
    let view_expr = RelLensExpr::base("Person")
        .select(Expr::attr("age").ge(Expr::lit(18i64)))
        .join(RelLensExpr::base("AgeBand"), JoinPolicy::DeleteBoth)
        .project(
            vec!["id", "band"],
            vec![("name", UpdatePolicy::Null), ("age", UpdatePolicy::Null)],
        );
    println!("-- pipeline --\n{}", view_expr.plan_string());

    let db = Instance::with_facts(
        schema.clone(),
        vec![
            (
                "Person",
                vec![
                    tuple![1i64, "Alice", 34i64],
                    tuple![2i64, "Bob", 37i64],
                    tuple![3i64, "Kid", 7i64],
                ],
            ),
            (
                "AgeBand",
                vec![tuple![34i64, "thirties"], tuple![37i64, "thirties"]],
            ),
        ],
    )?;

    println!("-- initial view --\n{}", view_expr.get(&db)?);

    // Build the incremental state once…
    let mut inc = IncrementalLens::new(&view_expr, &schema, &db)?;

    // …then stream edits through it. Each edit yields exactly the view
    // delta, with no recomputation of the join.
    let edits = [
        Delta {
            inserts: vec![(Name::new("Person"), tuple![4i64, "Dana", 34i64])],
            deletes: vec![],
        },
        Delta {
            inserts: vec![],
            deletes: vec![(Name::new("Person"), tuple![2i64, "Bob", 37i64])],
        },
        // Kid turns 18 — an update is a delete + insert.
        Delta {
            inserts: vec![(Name::new("Person"), tuple![3i64, "Kid", 18i64])],
            deletes: vec![(Name::new("Person"), tuple![3i64, "Kid", 7i64])],
        },
        Delta {
            inserts: vec![(Name::new("AgeBand"), tuple![18i64, "teens"])],
            deletes: vec![],
        },
    ];

    for (i, edit) in edits.iter().enumerate() {
        let view_delta = inc.apply(edit)?;
        println!("edit #{i}:");
        for t in &view_delta.deletes {
            println!("  view -{t}");
        }
        for t in &view_delta.inserts {
            println!("  view +{t}");
        }
        if view_delta.is_empty() {
            println!("  (no view change — e.g. Kid at 18 had no band yet)");
        }
    }
    println!("-- done: four source edits, zero view recomputations --");
    Ok(())
}
