//! `dexcli` — command-line front end for the dex engine.
//!
//! ```text
//! dexcli plan     <mapping.dex>                          show the compiled lens plan
//! dexcli explain  <mapping.dex> [--format tree|json|dot] annotated execution plan + provenance
//! dexcli check    <mapping.dex>                          parse + fidelity + termination report
//! dexcli chase    <mapping.dex> <source.json> [--stats]  classical chase (universal solution)
//! dexcli exchange <mapping.dex> <source.json> [prev.json] [--stats] lens-engine forward
//! dexcli backward <mapping.dex> <target.json> <source.json> lens-engine backward
//! dexcli compose  <m1.dex> <m2.dex> [--check]            compose mappings (SO-tgd or st-tgds)
//! dexcli optimize <mapping.dex> [--emit out.dex]         provably-safe optimizer (verified rewrites)
//! dexcli eq       <a.dex> <b.dex>                        decide equivalence (witness on differ)
//! dexcli recover  <mapping.dex>                          maximum recovery (disjunctive rules)
//! dexcli resume   <store-dir>                            continue a crashed/exhausted --store run
//! dexcli migrate  <store-dir> <new-schema.dex>           crash-safe live schema migration
//! dexcli fsck     <store-dir> [--repair]                 verify (and repair) a store directory
//! ```
//!
//! `chase`/`exchange` take `--store <dir>` to persist the run crash-
//! safely (WAL + snapshots; see DESIGN.md §9); `dexcli resume` then
//! continues from the last committed round after a crash or budget
//! trip.
//!
//! Instance JSON format — facts only, schema comes from the mapping:
//!
//! ```json
//! { "Emp": [["Alice"], ["Bob"]], "Dept": [["Alice", 1]] }
//! ```
//!
//! Labeled nulls appear in output as `{"null": n}`; Skolem terms as
//! `{"skolem": "f", "args": [...]}`.

use dex::analyze::{
    analyze_with, chase_bounds, cost::DEFAULT_CARD, deny_warnings, equivalent, explain_with,
    has_errors, parse_error_diagnostic, render_all, sort_diagnostics, verify_containment_witness,
    AnalyzeOptions, Code, ContainmentVerdict,
};
use dex::chase::{
    certain_answers_governed, exchange_checkpointed, exchange_governed, resume_exchange, Budget,
    ChaseOptions, ChaseOutcome, ChaseStats, Governor, ResumeState,
};
use dex::core::{compile, Engine, EngineForward, ForwardStats};
use dex::evolution::{diff, prefix_instance, render_mapping_dex, render_schema_dex, Catalog};
use dex::logic::{parse_mapping, parse_mapping_with_spans, Mapping};
use dex::ops::{compose, maximum_recovery, verify_composition};
use dex::relational::budget_args::{parse_count, BudgetArgs};
use dex::relational::{ExhaustionReport, Instance, Schema, SourceStats, Tuple, Value};
use dex::rellens::Environment;
use dex::store::migrate::{self as store_migrate, MigrateStatus};
use dex::store::{
    fsck, ChaseState, MigratePlan, MigrateRun, Migration, Store, StoreMode, StoreOptions, StoreSink,
};
use serde_json::{json, Map, Value as Json};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code when lint diagnostics deny the mapping: distinct from a
/// usage/IO error (1) so CI gates can tell "bad flags" from "bad
/// mapping".
const EXIT_LINT: u8 = 2;
/// Exit code when a budget trips: the run is neither a success nor an
/// error — the partial result on stdout is a valid chase prefix.
const EXIT_EXHAUSTED: u8 = 3;
/// Exit code when `dexcli eq` proves two mappings inequivalent: not an
/// error — stdout carries the machine-checkable counterexample witness.
const EXIT_DIFFER: u8 = 4;
/// Exit code for an internal panic caught at the process boundary
/// (BSD `EX_SOFTWARE`).
const EXIT_PANIC: u8 = 70;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A panic anywhere below is a bug, not a user error: suppress the
    // default hook's backtrace spew and convert the unwind into a
    // distinct exit code so scripts can tell "bad input" from "bug".
    std::panic::set_hook(Box::new(|_| {}));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&args))) {
        Ok(Ok(code)) => code,
        Ok(Err(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("dexcli: internal error (panic)");
            ExitCode::from(EXIT_PANIC)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage =
        "usage: dexcli <plan|check|lint|explain|optimize|eq|chase|exchange|backward|compose|recover|query|resume|fsck|migrate|serve> <args…>\n\
                 run `dexcli help` for details";
    // Deterministic hook for exercising the panic barrier end-to-end
    // (tests/robustness_cli.rs pins exit code 70 through it).
    if std::env::var_os("DEXCLI_TEST_PANIC").is_some() {
        panic!("DEXCLI_TEST_PANIC set");
    }
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        "plan" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let engine = build_engine(&m)?;
            println!("{}", engine.show_plan());
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            check(&m);
            Ok(ExitCode::SUCCESS)
        }
        "lint" => lint(&args[1..]),
        "explain" => explain_cmd(&args[1..]),
        "optimize" => optimize_cmd(&args[1..]),
        "eq" => eq_cmd(&args[1..]),
        "chase" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let out = extract_output(&mut rest)?;
            let store_opts = extract_store(&mut rest)?;
            let ctl = extract_cost_controls(&mut rest)?;
            extract_threads(&mut rest)?;
            reject_unknown_flags(&rest)?;
            let mapping_path = rest.first().ok_or(usage)?;
            let (text, m) = load_mapping_text(mapping_path)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let (budget, predicted) = match admit(&m, &src, &ctl, budget) {
                Ok(adm) => adm,
                Err(code) => return Ok(code),
            };
            let gov = Governor::new(budget);
            let outcome = match &store_opts {
                Some((dir, opts)) => {
                    let mut store = Store::create(dir, StoreMode::Chase, &text, &src, *opts)
                        .map_err(|e| e.to_string())?;
                    let mut sink = StoreSink::new(&mut store);
                    exchange_checkpointed(&m, &src, ChaseOptions::default(), &gov, &mut sink)
                        .map_err(|e| e.to_string())?
                }
                None => exchange_governed(&m, &src, ChaseOptions::default(), &gov)
                    .map_err(|e| e.to_string())?,
            };
            if let ChaseOutcome::Complete(res) = &outcome {
                // In `--format json` mode stderr carries exactly one
                // machine-readable object; keep the human line out.
                if !out.json {
                    eprintln!(
                        "chased {} source facts; {} nulls invented, {} rule firings",
                        src.fact_count(),
                        res.nulls_created,
                        res.firings
                    );
                }
            }
            finish_chase(
                outcome,
                &out,
                Some(&predicted),
                store_opts.as_ref().map(|(d, _)| d.as_path()),
            )
        }
        "exchange" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let out = extract_output(&mut rest)?;
            let store_opts = extract_store(&mut rest)?;
            let ctl = extract_cost_controls(&mut rest)?;
            extract_threads(&mut rest)?;
            reject_unknown_flags(&rest)?;
            let mapping_path = rest.first().ok_or(usage)?;
            let (text, m) = load_mapping_text(mapping_path)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let prev = match rest.get(2) {
                Some(p) => Some(load_instance(p, m.target())?),
                None => None,
            };
            let (budget, predicted) = match admit(&m, &src, &ctl, budget) {
                Ok(adm) => adm,
                Err(code) => return Ok(code),
            };
            let engine = build_engine(&m)?;
            let gov = Governor::new(budget);
            let mut store = match &store_opts {
                Some((dir, opts)) => Some(
                    Store::create(dir, StoreMode::Exchange, &text, &src, *opts)
                        .map_err(|e| e.to_string())?,
                ),
                None => None,
            };
            let forward = engine
                .forward_governed(&src, prev.as_ref(), &gov)
                .map_err(|e| e.to_string())?;
            finish_forward(forward, &out, Some(&predicted), store.as_mut())
        }
        "resume" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let out = extract_output(&mut rest)?;
            extract_threads(&mut rest)?;
            reject_unknown_flags(&rest)?;
            let dir = Path::new(rest.first().ok_or(usage)?.as_str());
            resume(dir, budget, &out)
        }
        "serve" => serve_cmd(&args[1..]),
        "migrate" => migrate_cmd(&args[1..]),
        "fsck" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let repair = match rest.iter().position(|a| a.as_str() == "--repair") {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            reject_unknown_flags(&rest)?;
            let dir = Path::new(rest.first().ok_or(usage)?.as_str());
            fsck_cmd(dir, repair)
        }
        "backward" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let tgt = load_instance(args.get(2).ok_or(usage)?, m.target())?;
            let src = load_instance(args.get(3).ok_or(usage)?, m.source())?;
            let engine = build_engine(&m)?;
            let out = engine.backward(&tgt, &src).map_err(|e| e.to_string())?;
            println!("{}", render_instance(&out));
            Ok(ExitCode::SUCCESS)
        }
        "compose" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let check = match rest.iter().position(|a| a.as_str() == "--check") {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            reject_unknown_flags(&rest)?;
            let m1 = load_mapping(rest.first().ok_or(usage)?)?;
            let m2 = load_mapping(rest.get(1).ok_or(usage)?)?;
            let comp = compose(&m1, &m2).map_err(|e| e.to_string())?;
            match &comp.st_tgds {
                Some(tgds) => {
                    eprintln!("composition is first-order ({} st-tgds):", tgds.len());
                    for t in tgds {
                        println!("{t}");
                    }
                }
                None => {
                    eprintln!("composition requires second-order quantification:");
                    println!("{comp}");
                }
            }
            if check {
                match verify_composition(&m1, &m2, &comp) {
                    Some(chk) if chk.agreed => eprintln!(
                        "self-check: composition agrees with the two-step chase \
                         on {} critical instance(s)",
                        chk.checked
                    ),
                    Some(chk) => {
                        eprintln!(
                            "error[{}]: composed mapping is not equivalent to the \
                             two-step chase (counterexample found after {} critical \
                             instance(s))",
                            Code::Dex604,
                            chk.checked
                        );
                        if let Some(cx) = chk.counterexample {
                            eprintln!("counterexample source instance:");
                            eprintln!("{}", render_instance(&cx.source));
                        }
                        return Ok(ExitCode::from(EXIT_LINT));
                    }
                    None => eprintln!(
                        "self-check: outside the decidable fragment \
                         (second-order output); skipped"
                    ),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "query" => {
            // dexcli query <mapping> <source.json> "q(x) :- Manager(x, m)"
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            extract_threads(&mut rest)?;
            let m = load_mapping(rest.first().ok_or(usage)?)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let qtext = rest.get(2).ok_or(usage)?;
            let (head, body) = dex::logic::parse_query(qtext).map_err(|e| e.to_string())?;
            let q =
                dex::chase::ConjunctiveQuery::new(head.iter().map(|n| n.as_str()).collect(), body)
                    .map_err(|e| e.to_string())?;
            q.validate(m.target()).map_err(|e| e.to_string())?;
            let gov = Governor::new(budget);
            let outcome = exchange_governed(&m, &src, ChaseOptions::default(), &gov)
                .map_err(|e| e.to_string())?;
            // Certain-answer evaluation is monotone, so answers computed
            // over a chase prefix are a sound subset of the certain
            // answers — report them, flag the truncation, exit 3.
            let (j, chase_report) = match outcome {
                ChaseOutcome::Complete(res) => (res.target, None),
                ChaseOutcome::Exhausted(ex) => (ex.partial, Some(ex.report)),
            };
            let (answers, eval_report) = certain_answers_governed(&q, &j, &gov);
            let exhausted = chase_report.or(eval_report);
            match &exhausted {
                Some(report) => {
                    eprintln!("{report}");
                    eprintln!(
                        "{} certain answer(s) found before the budget tripped \
                         (a sound subset of the full answer set)",
                        answers.len()
                    );
                }
                None => eprintln!(
                    "{} certain answer(s) over the universal solution",
                    answers.len()
                ),
            }
            let rows: Vec<Json> = answers
                .iter()
                .map(|t| Json::Array(t.iter().map(value_to_json).collect()))
                .collect();
            println!(
                "{}",
                serde_json::to_string_pretty(&Json::Array(rows)).map_err(|e| e.to_string())?
            );
            Ok(if exhausted.is_some() {
                ExitCode::from(EXIT_EXHAUSTED)
            } else {
                ExitCode::SUCCESS
            })
        }
        "recover" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let rec = maximum_recovery(&m).map_err(|e| e.to_string())?;
            println!("{rec}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

/// `dexcli lint <files…> [--format text|json] [--deny warnings] [--fix]`.
///
/// Exits [`EXIT_LINT`] (2) iff any file fails to parse or any
/// diagnostic is an error after `--deny warnings` promotion; bad
/// flags and unreadable files exit 1 like any other usage error.
///
/// `--fix` applies machine-applicable suggestions (DEX601/DEX602)
/// in place before linting. Each suggestion is an individually
/// verified equivalence-preserving rewrite, but two suggestions need
/// not compose — so fixes are applied one at a time, re-parsing and
/// re-linting after each, until a fixpoint.
fn lint(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: dexcli lint <mapping.dex>… [--format text|json] [--deny warnings]\n\
                 \x20                               [--deny-cost <n>] [--cards <spec>] [--fix]\n\
                 \x20      dexcli lint --explain DEXnnn";
    let mut files: Vec<&String> = Vec::new();
    let mut format = "text";
    let mut deny = false;
    let mut fix = false;
    let mut deny_cost: Option<u64> = None;
    let mut stats: Option<SourceStats> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fix" => fix = true,
            "--explain" => {
                let code_str = it
                    .next()
                    .ok_or_else(|| format!("--explain takes a code like DEX401\n{usage}"))?;
                let code = Code::parse(code_str)
                    .ok_or_else(|| format!("unknown diagnostic code `{code_str}`"))?;
                println!("{code}: {}", code.explanation());
                return Ok(ExitCode::SUCCESS);
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some(f @ ("text" | "json")) => f,
                    _ => return Err(format!("--format takes `text` or `json`\n{usage}")),
                };
            }
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny = true,
                _ => return Err(format!("--deny takes `warnings`\n{usage}")),
            },
            "--deny-cost" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--deny-cost requires a value\n{usage}"))?;
                deny_cost = Some(parse_count(v, "--deny-cost")?);
            }
            "--cards" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--cards requires a value\n{usage}"))?;
                stats = Some(parse_cards(v)?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{usage}"))
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return Err(usage.into());
    }
    let options = AnalyzeOptions {
        stats,
        deny_cost,
        ..Default::default()
    };

    let mut failed = false;
    let mut json_report: Vec<Json> = Vec::new();
    for path in files {
        let mut text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if fix {
            let (fixed, applied) = apply_fixes(&text, &options);
            if applied > 0 {
                std::fs::write(path, &fixed).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("{path}: applied {applied} verified fix(es)");
                text = fixed;
            }
        }
        let mut diags = match parse_mapping_with_spans(&text) {
            Ok((m, spans)) => analyze_with(&m, Some(&spans), options.clone()),
            Err(e) => vec![parse_error_diagnostic(&e)],
        };
        if deny {
            deny_warnings(&mut diags);
        }
        // Deterministic report order regardless of pass order: by
        // source position, then code, then message.
        sort_diagnostics(&mut diags);
        failed |= has_errors(&diags);
        match format {
            "json" => json_report.push(json!({
                "file": path,
                "diagnostics": serde_json::to_value(&diags)
                    .map_err(|e| e.to_string())?,
            })),
            _ => {
                if !diags.is_empty() {
                    print!("{}", render_all(&diags, path, &text));
                }
            }
        }
    }
    if format == "json" {
        println!(
            "{}",
            serde_json::to_string_pretty(&Json::Array(json_report)).map_err(|e| e.to_string())?
        );
    }
    if failed {
        eprintln!("lint found errors");
        Ok(ExitCode::from(EXIT_LINT))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `dexcli explain <mapping.dex> [--format tree|json|dot]`.
///
/// Renders the compiled execution plan — premise-matching strategy,
/// matcher phase, null production, lens trees with update policies,
/// and position-level provenance. Unparsable mappings print their
/// `DEX000` diagnostic and exit [`EXIT_LINT`], mirroring `lint`.
fn explain_cmd(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: dexcli explain <mapping.dex> [--format tree|json|dot] [--cards <spec>]";
    let mut rest: Vec<&String> = args.iter().collect();
    let format = take_flag_value(&mut rest, "--format")?.unwrap_or_else(|| "tree".into());
    if !matches!(format.as_str(), "tree" | "json" | "dot") {
        return Err(format!("--format takes `tree`, `json` or `dot`\n{usage}"));
    }
    let stats = match take_flag_value(&mut rest, "--cards")? {
        Some(spec) => parse_cards(&spec)?,
        None => SourceStats::uniform(DEFAULT_CARD),
    };
    reject_unknown_flags(&rest)?;
    let path = rest.first().ok_or(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (m, spans) = match parse_mapping_with_spans(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            let d = parse_error_diagnostic(&e);
            print!("{}", render_all(&[d], path, &text));
            return Ok(ExitCode::from(EXIT_LINT));
        }
    };
    let report = explain_with(&m, Some(&spans), &stats);
    match format.as_str() {
        "json" => println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?
        ),
        "dot" => print!("{}", report.render_dot()),
        _ => print!("{}", report.render_tree()),
    }
    Ok(ExitCode::SUCCESS)
}

/// Apply machine-applicable lint suggestions to `text`, one per
/// iteration, until no suggestion remains (or a safety cap trips).
///
/// Suggestions are verified individually but not jointly — two
/// dependencies can each be implied by the rest without being jointly
/// deletable — so after each splice the text is re-parsed and
/// re-linted from scratch. Returns the fixed text and the number of
/// suggestions applied.
fn apply_fixes(text: &str, options: &AnalyzeOptions) -> (String, usize) {
    let mut cur = text.to_string();
    let mut applied = 0usize;
    for _ in 0..256 {
        let Ok((m, spans)) = parse_mapping_with_spans(&cur) else {
            break;
        };
        let mut diags = analyze_with(&m, Some(&spans), options.clone());
        sort_diagnostics(&mut diags);
        let Some(s) = diags.iter().find_map(|d| d.suggestion.clone()) else {
            break;
        };
        let (Some(start), Some(end)) = (
            offset_of(&cur, s.span.line, s.span.col),
            offset_of(&cur, s.span.end_line, s.span.end_col),
        ) else {
            break;
        };
        if start > end || end > cur.len() {
            break;
        }
        let mut next = String::with_capacity(cur.len());
        next.push_str(&cur[..start]);
        next.push_str(&s.replacement);
        // A deletion leaves its line blank; absorb the dangling newline.
        let mut rest = &cur[end..];
        if s.replacement.is_empty()
            && (start == 0 || cur[..start].ends_with('\n'))
            && rest.starts_with('\n')
        {
            rest = &rest[1..];
        }
        next.push_str(rest);
        cur = next;
        applied += 1;
    }
    (cur, applied)
}

/// Byte offset of 1-based (line, col) in `text`; columns count chars.
///
/// The position one past the last character of the input is valid (an
/// exclusive span end may point there); anything further is `None`.
fn offset_of(text: &str, line: usize, col: usize) -> Option<usize> {
    let (mut l, mut c) = (1usize, 1usize);
    for (i, ch) in text.char_indices() {
        if l == line && c == col {
            return Some(i);
        }
        if ch == '\n' {
            l += 1;
            c = 1;
        } else {
            c += 1;
        }
    }
    (l == line && c == col).then_some(text.len())
}

/// `dexcli optimize <mapping.dex> [--emit <out.dex>] [--check]`.
///
/// Runs the provably-safe optimizer: conclusion splitting, implied
/// dependency deletion, and redundant-premise-atom pruning, each
/// rewrite individually re-verified by the containment checker. The
/// optimized mapping prints to stdout (or `--emit <file>`); `--check`
/// reports the verified rewrites without emitting. Non-terminating
/// mappings are refused with a typed reason and exit [`EXIT_LINT`] —
/// never silently "optimized" without proof.
fn optimize_cmd(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: dexcli optimize <mapping.dex> [--emit <out.dex>] [--check]";
    let mut rest: Vec<&String> = args.iter().collect();
    let emit = take_flag_value(&mut rest, "--emit")?;
    let check = match rest.iter().position(|a| a.as_str() == "--check") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    reject_unknown_flags(&rest)?;
    let path = rest.first().ok_or(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let m = match parse_mapping_with_spans(&text) {
        Ok((m, _)) => m,
        Err(e) => {
            let d = parse_error_diagnostic(&e);
            print!("{}", render_all(&[d], path, &text));
            return Ok(ExitCode::from(EXIT_LINT));
        }
    };
    let outcome = dex::analyze::optimize(&m);
    if let Some(reason) = &outcome.refused {
        eprintln!("optimize: refused: {reason}");
        return Ok(ExitCode::from(EXIT_LINT));
    }
    // Belt and braces: each rewrite was verified when it was applied,
    // but re-verify the end-to-end result before letting it replace
    // anything.
    if outcome.changed() && !equivalent(&m, &outcome.mapping).holds() {
        return Err(
            "internal error: optimizer output failed final equivalence re-verification".into(),
        );
    }
    let (a0, d0) = dex::analyze::semantic::mapping_size(&m);
    let (a1, d1) = dex::analyze::semantic::mapping_size(&outcome.mapping);
    for r in &outcome.rewrites {
        eprintln!("verified: {}", r.description);
    }
    if outcome.changed() {
        eprintln!(
            "optimized: {a0} atoms / {d0} deps  ->  {a1} atoms / {d1} deps \
             ({} verified rewrites)",
            outcome.rewrites.len()
        );
    } else {
        eprintln!("already minimal under the implemented rewrites");
    }
    if check {
        return Ok(ExitCode::SUCCESS);
    }
    let rendered = dex::analyze::render_mapping_dex(&outcome.mapping);
    // The rendered text must round-trip: re-parse it and check the
    // reparse is still equivalent to the optimized mapping, so --emit
    // can never write a file that means something else.
    match parse_mapping(&rendered) {
        Ok(back) if equivalent(&outcome.mapping, &back).holds() => {}
        Ok(_) => return Err("internal error: rendered mapping re-parses inequivalent".into()),
        Err(e) => {
            return Err(format!(
                "internal error: rendered mapping does not parse: {e}"
            ))
        }
    }
    match emit {
        Some(out) => {
            std::fs::write(&out, &rendered).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{rendered}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `dexcli eq <a.dex> <b.dex> [--format text|json]`.
///
/// Decides logical equivalence of two terminating mappings over the
/// same schemas by chasing critical instances. Exit codes: 0 —
/// equivalent; [`EXIT_DIFFER`] (4) — provably inequivalent, with a
/// machine-checkable counterexample witness on stdout;
/// [`EXIT_LINT`] (2) — parse error or outside the decidable fragment.
fn eq_cmd(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: dexcli eq <a.dex> <b.dex> [--format text|json]";
    let mut rest: Vec<&String> = args.iter().collect();
    let json = match take_flag_value(&mut rest, "--format")?.as_deref() {
        Some("json") => true,
        Some("text") | None => false,
        Some(f) => return Err(format!("--format takes `text` or `json`, got `{f}`")),
    };
    reject_unknown_flags(&rest)?;
    let (path_a, path_b) = match rest.as_slice() {
        [a, b] => (a.as_str(), b.as_str()),
        _ => return Err(usage.into()),
    };
    let ma = load_mapping(path_a)?;
    let mb = load_mapping(path_b)?;
    let verdict = equivalent(&ma, &mb);
    // A `Fails` witness names the mapping whose dependency is violated
    // (the right-hand side of the failing containment) and carries the
    // (source, target) pair that refutes it. Re-verify before showing
    // it: a witness the checker itself cannot confirm is a bug.
    let mut failures = Vec::new();
    for (dir, holder, m1, m2, other) in [
        ("forward", &verdict.forward, &ma, &mb, path_b),
        ("backward", &verdict.backward, &mb, &ma, path_a),
    ] {
        if let ContainmentVerdict::Fails(w) = holder {
            if !verify_containment_witness(m1, m2, w) {
                return Err(format!(
                    "internal error: {dir} containment witness failed re-verification"
                ));
            }
            failures.push((dir, other, w));
        }
    }
    if json {
        let obj = json!({
            "a": path_a,
            "b": path_b,
            "equivalent": verdict.holds(),
            "forward": containment_json(&verdict.forward)?,
            "backward": containment_json(&verdict.backward)?,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&obj).map_err(|e| e.to_string())?
        );
    }
    if verdict.holds() {
        eprintln!("equivalent: {path_a} == {path_b}");
        return Ok(ExitCode::SUCCESS);
    }
    if verdict.refuted() {
        for (dir, other, w) in &failures {
            eprintln!(
                "{dir} containment fails: the witness below satisfies every \
                 dependency of one mapping but violates {:?} of {other} \
                 (witness re-verified)",
                w.dependency
            );
            if !json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(
                        &serde_json::to_value(w.as_ref()) //
                            .map_err(|e| e.to_string())?
                    )
                    .map_err(|e| e.to_string())?
                );
            }
        }
        eprintln!("mappings differ");
        return Ok(ExitCode::from(EXIT_DIFFER));
    }
    for (dir, v) in [
        ("forward", &verdict.forward),
        ("backward", &verdict.backward),
    ] {
        if let ContainmentVerdict::Undecided { reason } = v {
            eprintln!("{dir} containment undecided: {reason}");
        }
    }
    Ok(ExitCode::from(EXIT_LINT))
}

/// Serialize one direction of an equivalence verdict for `--format json`.
fn containment_json(v: &ContainmentVerdict) -> Result<Json, String> {
    Ok(match v {
        ContainmentVerdict::Holds => json!({"verdict": "holds"}),
        ContainmentVerdict::Fails(w) => json!({
            "verdict": "fails",
            "witness": serde_json::to_value(w.as_ref()).map_err(|e| e.to_string())?,
        }),
        ContainmentVerdict::Undecided { reason } => {
            json!({"verdict": "undecided", "reason": reason})
        }
    })
}

// ---------------------------------------------------------------------
// Store-backed runs: output plumbing, resume, fsck
// ---------------------------------------------------------------------

/// How `--stats`/`--format` shape the stderr side channel.
struct OutputOpts {
    stats: bool,
    json: bool,
}

/// After flag extraction, anything left that still looks like a flag
/// is unknown — reject it rather than silently treating it as a
/// positional argument.
fn reject_unknown_flags(rest: &[&String]) -> Result<(), String> {
    match rest.iter().find(|a| a.starts_with("--")) {
        Some(flag) => Err(format!("unknown flag `{flag}`")),
        None => Ok(()),
    }
}

/// Extract `--stats` and `--format text|json` from an argument list.
fn extract_output(rest: &mut Vec<&String>) -> Result<OutputOpts, String> {
    let stats = match rest.iter().position(|a| a.as_str() == "--stats") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let json = match take_flag_value(rest, "--format")?.as_deref() {
        Some("json") => true,
        Some("text") | None => false,
        Some(f) => return Err(format!("--format takes `text` or `json`, got `{f}`")),
    };
    if json && !stats {
        return Err("--format json requires --stats".into());
    }
    Ok(OutputOpts { stats, json })
}

/// Extract `--store <dir>` (plus `--snapshot-every <n>` and
/// `--no-sync`) from an argument list.
fn extract_store(
    rest: &mut Vec<&String>,
) -> Result<Option<(std::path::PathBuf, StoreOptions)>, String> {
    let dir = take_flag_value(rest, "--store")?;
    let every = take_flag_value(rest, "--snapshot-every")?;
    let no_sync = match rest.iter().position(|a| a.as_str() == "--no-sync") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    match dir {
        Some(d) => {
            let mut opts = StoreOptions::default();
            if let Some(n) = every {
                opts.snapshot_every = parse_count(&n, "--snapshot-every")?.max(1);
            }
            opts.sync = !no_sync;
            Ok(Some((std::path::PathBuf::from(d), opts)))
        }
        None if every.is_some() || no_sync => {
            Err("--snapshot-every and --no-sync require --store".into())
        }
        None => Ok(None),
    }
}

/// Print a chase outcome: instance to stdout, stats/report to stderr
/// (one JSON object when `--stats --format json`), exit 0 or 3.
fn finish_chase(
    outcome: ChaseOutcome,
    out: &OutputOpts,
    predicted: Option<&Json>,
    store_dir: Option<&Path>,
) -> Result<ExitCode, String> {
    match outcome {
        ChaseOutcome::Complete(res) => {
            if out.stats {
                emit_stderr(out, chase_stats_json(&res.stats, predicted, None), |_| {
                    format!("{}", res.stats)
                });
            }
            println!("{}", render_instance(&res.target));
            Ok(ExitCode::SUCCESS)
        }
        ChaseOutcome::Exhausted(ex) => {
            if out.json {
                emit_stderr(
                    out,
                    chase_stats_json(&ex.stats, predicted, Some(&ex.report)),
                    |_| String::new(),
                );
            } else {
                eprintln!("{}", ex.report);
                eprintln!("the instance below is a valid partial chase result");
                if out.stats {
                    eprint!("{}", ex.stats);
                }
                if let Some(dir) = store_dir {
                    eprintln!("resume with: dexcli resume {}", dir.display());
                }
            }
            println!("{}", render_instance(&ex.partial));
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
    }
}

/// Print a lens-engine forward outcome, persisting the result into the
/// store (snapshot-only — the pipeline is not round-resumable).
fn finish_forward(
    forward: EngineForward,
    out: &OutputOpts,
    predicted: Option<&Json>,
    store: Option<&mut Store>,
) -> Result<ExitCode, String> {
    let persist = |store: Option<&mut Store>, inst: &Instance, complete: bool| {
        if let Some(s) = store {
            s.prepare_resume(&ChaseState {
                instance: inst.clone(),
                round: 0,
                next_null: inst.null_gen().peek_next(),
                complete,
            })
            .map_err(|e| e.to_string())?;
        }
        Ok::<(), String>(())
    };
    match forward {
        EngineForward::Complete { target, stats } => {
            persist(store, &target, true)?;
            if out.stats {
                emit_stderr(out, forward_stats_json(&stats, predicted, None), |_| {
                    format!("{stats}")
                });
            }
            println!("{}", render_instance(&target));
            Ok(ExitCode::SUCCESS)
        }
        EngineForward::Exhausted { partial, report } => {
            persist(store, &partial, false)?;
            if out.json {
                emit_stderr(
                    out,
                    forward_stats_json(&ForwardStats::default(), predicted, Some(&report)),
                    |_| String::new(),
                );
            } else {
                eprintln!("{report}");
                eprintln!("the instance below is a consistent partial forward result");
            }
            println!("{}", render_instance(&partial));
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
    }
}

/// One stderr emission: the JSON object under `--format json`, the
/// text rendering otherwise.
fn emit_stderr(out: &OutputOpts, json: Json, text: impl Fn(()) -> String) {
    if out.json {
        eprintln!("{json}");
    } else {
        eprint!("{}", text(()));
    }
}

fn chase_stats_json(
    stats: &ChaseStats,
    predicted: Option<&Json>,
    report: Option<&ExhaustionReport>,
) -> Json {
    // The versioned wire form pinned by crates/chase/tests/wire_format.rs
    // (`{"v": 1, …}`) — the same bytes `dexd` serves.
    json!({
        "stats": serde_json::to_value(stats).unwrap_or(Json::Null),
        "predicted": predicted.cloned().unwrap_or(Json::Null),
        "exhausted": report.map(report_json).unwrap_or(Json::Null),
    })
}

fn forward_stats_json(
    stats: &ForwardStats,
    predicted: Option<&Json>,
    report: Option<&ExhaustionReport>,
) -> Json {
    let per_relation: Vec<Json> = stats
        .per_relation
        .iter()
        .map(|r| {
            json!({
                "relation": r.relation.as_str(),
                "view_rows": r.view_rows,
                "get_ms": r.get_time.as_secs_f64() * 1e3,
                "put_ms": r.put_time.as_secs_f64() * 1e3,
            })
        })
        .collect();
    json!({
        "stats": json!({
            "per_relation": Json::Array(per_relation),
            "egd_rounds": stats.egd_rounds,
            "egd_merges": stats.egd_merges,
            "egd_ms": stats.egd_time.as_secs_f64() * 1e3,
            "index_builds": stats.index_builds,
            "index_probes": stats.index_probes,
        }),
        "predicted": predicted.cloned().unwrap_or(Json::Null),
        "exhausted": report.map(report_json).unwrap_or(Json::Null),
    })
}

/// Machine-readable exhaustion report in the versioned wire form
/// (`{"v": 1, "reason": …}`; reason tokens are `deadline`, `rounds`,
/// `tuples`, `nulls`, `memory`, `cancelled`) — byte-identical to what
/// `dexd` serves, pinned in `dex-relational`'s governor tests.
fn report_json(r: &ExhaustionReport) -> Json {
    serde_json::to_value(r).unwrap_or(Json::Null)
}

/// `dexcli resume <dir>`: continue a `--store` run from its last
/// committed round (chase mode) or re-run the pipeline (exchange
/// mode). Already-complete stores just print their result.
fn resume(dir: &Path, budget: Budget, out: &OutputOpts) -> Result<ExitCode, String> {
    let mut store = Store::open(dir, StoreOptions::default()).map_err(|e| e.to_string())?;
    let m = parse_mapping(store.mapping_text())
        .map_err(|e| format!("mapping stored in {}: {e}", dir.display()))?;
    let gov = Governor::new(budget);
    match store.mode() {
        StoreMode::Chase => match store.recover().map_err(|e| e.to_string())? {
            Some(r) if r.state.complete => {
                eprintln!(
                    "store already holds a completed chase (round {})",
                    r.state.round
                );
                println!("{}", render_instance(&r.state.instance));
                Ok(ExitCode::SUCCESS)
            }
            Some(r) => {
                eprintln!(
                    "recovered round {} ({} WAL record(s) replayed{}); resuming",
                    r.state.round,
                    r.replayed_records,
                    if r.wal_torn {
                        ", torn tail discarded"
                    } else {
                        ""
                    }
                );
                store.prepare_resume(&r.state).map_err(|e| e.to_string())?;
                let state = ResumeState {
                    target: r.state.instance,
                    next_null: r.state.next_null,
                    rounds: r.state.round,
                };
                let mut sink = StoreSink::new(&mut store);
                let outcome =
                    resume_exchange(&m, state, ChaseOptions::default(), &gov, Some(&mut sink))
                        .map_err(|e| e.to_string())?;
                finish_chase(outcome, out, None, Some(dir))
            }
            None => {
                eprintln!("no checkpoint on disk; starting the chase from the stored source");
                let src = store.source().map_err(|e| e.to_string())?;
                let mut sink = StoreSink::new(&mut store);
                let outcome =
                    exchange_checkpointed(&m, &src, ChaseOptions::default(), &gov, &mut sink)
                        .map_err(|e| e.to_string())?;
                finish_chase(outcome, out, None, Some(dir))
            }
        },
        StoreMode::Exchange => {
            if let Some(r) = store.recover().map_err(|e| e.to_string())? {
                if r.state.complete {
                    eprintln!("store already holds a completed exchange");
                    println!("{}", render_instance(&r.state.instance));
                    return Ok(ExitCode::SUCCESS);
                }
            }
            eprintln!("re-running the lens pipeline from the stored source");
            let src = store.source().map_err(|e| e.to_string())?;
            let engine = build_engine(&m)?;
            let forward = engine
                .forward_governed(&src, None, &gov)
                .map_err(|e| e.to_string())?;
            finish_forward(forward, out, None, Some(&mut store))
        }
    }
}

/// `dexcli fsck <dir> [--repair]`: verify every store file; with
/// `--repair`, truncate a torn WAL back to its valid prefix. Exit 0
/// iff the store is clean (after repair, when requested).
fn fsck_cmd(dir: &Path, repair: bool) -> Result<ExitCode, String> {
    let report = fsck::fsck(dir).map_err(|e| e.to_string())?;
    println!("{report}");
    if report.is_clean() {
        return Ok(ExitCode::SUCCESS);
    }
    if repair {
        for action in fsck::repair(dir).map_err(|e| e.to_string())? {
            eprintln!("repair: {action}");
        }
        let after = fsck::fsck(dir).map_err(|e| e.to_string())?;
        println!("{after}");
        return Ok(if after.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    Ok(ExitCode::FAILURE)
}

/// Remove a bare boolean `--flag` from `rest`, reporting presence.
fn take_flag(rest: &mut Vec<&String>, flag: &str) -> bool {
    match rest.iter().position(|a| a.as_str() == flag) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    }
}

/// `dexcli migrate <store-dir> <new-schema.dex> [--dry-run] [--resume]`:
/// crash-safe live schema migration of a persisted store.
///
/// Diffs the store's materialized schema against the evolved one,
/// compiles the SMO sequence to one migration mapping (`dex-evolution`
/// composition + de-skolemization), admits it through the static cost
/// pass, then runs it as a governed, checkpointed chase into a staging
/// directory — the old store's bytes change only after a checksummed
/// commit marker is durable. Exit codes follow the house contract:
/// 0 committed, 1 usage/IO, 2 refused (ambiguous diff, non-FO
/// composition, DEX502 admission, unfinished store), 3 budget tripped
/// at a durable, resumable boundary, 70 internal panic.
fn migrate_cmd(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: dexcli migrate <store-dir> <new-schema.dex> [--dry-run] [--resume]\n\
                 \x20      [--deny-cost <n>] [--auto-budget] [budget flags] [--threads <n>]\n\
                 \x20      [--snapshot-every <n>] [--no-sync]";
    let mut rest: Vec<&String> = args.iter().collect();
    let budget = extract_budget(&mut rest)?;
    let ctl = extract_cost_controls(&mut rest)?;
    extract_threads(&mut rest)?;
    let dry_run = take_flag(&mut rest, "--dry-run");
    let resume_flag = take_flag(&mut rest, "--resume");
    let every = take_flag_value(&mut rest, "--snapshot-every")?;
    let no_sync = take_flag(&mut rest, "--no-sync");
    reject_unknown_flags(&rest)?;
    let dir = Path::new(rest.first().ok_or(usage)?.as_str());
    let mut opts = StoreOptions::default();
    if let Some(n) = every {
        opts.snapshot_every = parse_count(&n, "--snapshot-every")?.max(1);
    }
    opts.sync = !no_sync;

    if resume_flag {
        match store_migrate::status(dir).map_err(|e| e.to_string())? {
            MigrateStatus::Committed => {
                store_migrate::roll_forward(dir, opts.sync).map_err(|e| e.to_string())?;
                eprintln!("migration was already committed; completed the roll-forward");
                return Ok(ExitCode::SUCCESS);
            }
            MigrateStatus::None => {
                return Err(format!(
                    "no staged migration at {} (nothing to resume)",
                    dir.display()
                ))
            }
            MigrateStatus::InProgress { round, .. } => {
                eprintln!(
                    "resuming staged migration{}",
                    match round {
                        Some(r) => format!(" from round {r}"),
                        None => " (no round committed yet)".to_string(),
                    }
                );
            }
        }
        let mig = Migration::resume(dir, opts).map_err(|e| e.to_string())?;
        return run_migration(mig, dir, budget);
    }

    let schema_path = rest.get(1).ok_or(usage)?;
    if !matches!(
        store_migrate::status(dir).map_err(|e| e.to_string())?,
        MigrateStatus::None
    ) {
        eprintln!(
            "refusing to start: a migration is already staged at {}/migrate — \
             continue it with `dexcli migrate {} --resume`",
            dir.display(),
            dir.display()
        );
        return Ok(ExitCode::from(EXIT_LINT));
    }

    // The old schema and data come from the store's materialized
    // instance, which must be complete — migrating a half-finished
    // chase would silently drop the un-derived remainder.
    let store = Store::open(dir, opts).map_err(|e| e.to_string())?;
    let state = match store.recover().map_err(|e| e.to_string())? {
        Some(r) if r.state.complete => r.state,
        Some(r) => {
            eprintln!(
                "refusing to migrate: the store holds an unfinished run (round {}); \
                 finish it first with `dexcli resume {}`",
                r.state.round,
                dir.display()
            );
            return Ok(ExitCode::from(EXIT_LINT));
        }
        None => {
            eprintln!(
                "refusing to migrate: the store has no materialized instance yet; \
                 run it to completion first (`dexcli resume {}`)",
                dir.display()
            );
            return Ok(ExitCode::from(EXIT_LINT));
        }
    };
    let old_schema = state.instance.schema().clone();

    // The evolved schema: declarations only (conventionally `target`,
    // plus `key`); rules belong in mappings, not schema files.
    let (_, new_m) = load_mapping_text(schema_path)?;
    if !new_m.st_tgds().is_empty() || !new_m.target_tgds().is_empty() {
        eprintln!(
            "refusing to migrate: `{schema_path}` must hold only schema declarations \
             (source/target/key); it contains rules"
        );
        return Ok(ExitCode::from(EXIT_LINT));
    }
    let mut new_schema = new_m.target().clone();
    for rel in new_m.source().relations() {
        new_schema
            .add_relation(rel.clone())
            .map_err(|e| format!("{schema_path}: {e}"))?;
    }

    // Diff old → new and compile the SMO sequence to one migration
    // mapping. Both refuse rather than guess: ambiguous diffs, rename
    // cycles, and non-first-order compositions all exit 2 here, before
    // any byte of the store is touched.
    let old_cat = Catalog::from_schema(&old_schema);
    let new_cat = Catalog::from_schema(&new_schema);
    let smos = match diff(&old_cat, &new_cat) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot migrate: {e}");
            return Ok(ExitCode::from(EXIT_LINT));
        }
    };
    // --dry-run also turns on the chase-agreement self-check: every
    // pairwise composition in the fold is re-verified against the
    // two-step chase (DEX604 on disagreement) — verification belongs
    // in the rehearsal, not on the hot path of the real run.
    let migration =
        match dex::evolution::compile_migration_checked(&old_schema, &new_schema, &smos, dry_run) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot migrate: {e}");
                return Ok(ExitCode::from(EXIT_LINT));
            }
        };

    // Cost admission over the *actual* stored data, same knobs as
    // chase/exchange: --deny-cost refuses (DEX502, exit 2),
    // --auto-budget synthesizes caps from the predicted bounds.
    let prefixed = prefix_instance(&state.instance, 0).map_err(|e| e.to_string())?;
    let (budget, predicted) = match admit(&migration.mapping, &prefixed, &ctl, budget) {
        Ok(adm) => adm,
        Err(code) => return Ok(code),
    };

    if dry_run {
        println!("schema diff ({} operation(s)):", migration.smos.len());
        for s in &migration.smos {
            println!("  {s}");
        }
        println!("\nmigration mapping:");
        print!("{}", render_mapping_dex(&migration.mapping));
        println!("\npredicted cost bounds at the stored instance: {predicted}");
        if let Some(back) = migration.backward() {
            println!("\nbackward (maximum recovery):");
            println!("{back}");
        }
        eprintln!("dry run: nothing written");
        return Ok(ExitCode::SUCCESS);
    }

    drop(store);
    let plan = MigratePlan {
        schema_text: render_schema_dex(&new_schema),
        mapping_text: render_mapping_dex(&migration.mapping),
    };
    eprintln!(
        "migrating {} tuple(s) through {} schema operation(s)",
        state.instance.fact_count(),
        migration.smos.len()
    );
    let mig = Migration::begin(dir, &plan, &prefixed, opts).map_err(|e| e.to_string())?;
    run_migration(mig, dir, budget)
}

/// Run a staged migration to fixpoint (commit + roll-forward) or to a
/// durable budget boundary (exit 3, resumable).
fn run_migration(mut mig: Migration, dir: &Path, budget: Budget) -> Result<ExitCode, String> {
    let gov = Governor::new(budget);
    match mig
        .run(ChaseOptions::default(), &gov)
        .map_err(|e| e.to_string())?
    {
        MigrateRun::Done(state) => {
            mig.finalize().map_err(|e| e.to_string())?;
            eprintln!(
                "migration committed: {} now serves {} tuple(s) under the new schema",
                dir.display(),
                state.instance.fact_count()
            );
            Ok(ExitCode::SUCCESS)
        }
        MigrateRun::Suspended(report) => {
            eprintln!("{report}");
            eprintln!(
                "the staged migration is durable and the old store is untouched; \
                 continue with: dexcli migrate {} --resume",
                dir.display()
            );
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
    }
}

/// `dexcli serve --map name=mapping.dex … [flags]`: run the `dexd`
/// daemon in the foreground until SIGTERM/ctrl-c, then drain
/// gracefully (stop accepting, finish in-flight work under
/// `--drain-deadline`, cancel overruns into 206 partials).
fn serve_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut rest: Vec<&String> = args.iter().collect();
    // The shared budget flags become the *server default* budget every
    // request starts from; request overrides can only tighten it.
    let default_budget = extract_budget(&mut rest)?;
    let mut config = dexd::ServerConfig {
        default_budget,
        ..dexd::ServerConfig::default()
    };
    if let Some(v) = take_flag_value(&mut rest, "--addr")? {
        config.addr = v;
    }
    if let Some(v) = take_flag_value(&mut rest, "--workers")? {
        config.workers = parse_count(&v, "--workers")?.max(1) as usize;
    }
    if let Some(v) = take_flag_value(&mut rest, "--queue")? {
        config.queue_capacity = parse_count(&v, "--queue")?.max(1) as usize;
    }
    if let Some(v) = take_flag_value(&mut rest, "--max-inflight")? {
        config.max_inflight_per_mapping = parse_count(&v, "--max-inflight")?;
    }
    if let Some(v) = take_flag_value(&mut rest, "--deny-cost")? {
        config.deny_cost = Some(parse_count(&v, "--deny-cost")?);
    }
    if let Some(i) = rest.iter().position(|a| a.as_str() == "--no-auto-budget") {
        rest.remove(i);
        config.auto_budget = false;
    }
    if let Some(v) = take_flag_value(&mut rest, "--drain-deadline")? {
        config.drain_deadline =
            dex::relational::budget_args::parse_duration(&v, "--drain-deadline")?;
    }
    if let Some(v) = take_flag_value(&mut rest, "--store-root")? {
        config.store_root = Some(std::path::PathBuf::from(v));
    }
    let mut specs: Vec<(String, std::path::PathBuf)> = Vec::new();
    while let Some(v) = take_flag_value(&mut rest, "--map")? {
        let (name, path) = v
            .split_once('=')
            .ok_or_else(|| format!("--map takes name=mapping.dex, got `{v}`"))?;
        specs.push((name.to_string(), std::path::PathBuf::from(path)));
    }
    reject_unknown_flags(&rest)?;
    // Bare mapping paths serve under their file stem.
    for path in rest {
        let p = std::path::PathBuf::from(path.as_str());
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a mapping name from `{path}`"))?
            .to_string();
        specs.push((name, p));
    }
    if specs.is_empty() {
        return Err("serve needs at least one --map name=mapping.dex".to_string());
    }
    let catalog = dexd::Catalog::load(&specs)?;
    let n = catalog.len();
    let handle = dexd::ServerHandle::spawn(config, catalog).map_err(|e| e.to_string())?;
    eprintln!(
        "dexd: serving {n} mapping(s) on http://{} (ctrl-c to drain)",
        handle.addr()
    );
    shutdown_signal::install();
    while !shutdown_signal::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("dexd: shutdown requested; draining");
    handle.shutdown();
    eprintln!("dexd: drained");
    Ok(ExitCode::SUCCESS)
}

/// SIGTERM/SIGINT notification without a signal-handling dependency:
/// a raw `signal(2)` registration flipping one atomic flag — the only
/// async-signal-safe thing a handler may do here anyway.
#[cfg(unix)]
mod shutdown_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn received() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

/// On non-unix targets `serve` runs until killed externally.
#[cfg(not(unix))]
mod shutdown_signal {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

const HELP: &str = r#"dexcli — bidirectional data exchange from the command line

commands:
  plan     <mapping.dex>                         compile and show the lens plan
  check    <mapping.dex>                         fidelity + termination report
  lint     <mapping.dex>… [--format text|json] [--deny warnings]
                          [--deny-cost <n>] [--cards <spec>] [--fix]
                                                 static analysis (DEX diagnostic codes);
                                                 --fix applies verified machine-applicable
                                                 suggestions in place, one at a time
  lint     --explain DEXnnn                      long-form explanation of one code
  explain  <mapping.dex> [--format tree|json|dot] [--cards <spec>]
                                                 annotated execution plan: premise order,
                                                 index probes, null production, static cost
                                                 bounds, verified rewrites, lens update
                                                 policies, provenance
  optimize <mapping.dex> [--emit out.dex] [--check]
                                                 provably-safe optimizer: every rewrite
                                                 (split / delete / prune) is re-verified by
                                                 the containment checker before it applies;
                                                 non-terminating mappings are refused (exit 2)
  eq       <a.dex> <b.dex> [--format text|json]  decide logical equivalence by chasing
                                                 critical instances; inequivalence prints a
                                                 machine-checkable witness and exits 4
  chase    <mapping.dex> <source.json> [--stats] materialize the universal solution
  exchange <mapping.dex> <source.json> [prev.json] [--stats]  lens-engine forward exchange
  backward <mapping.dex> <target.json> <source.json>  propagate target edits back
  compose  <m1.dex> <m2.dex> [--check]           compose two mappings; --check chases the
                                                 critical instances through both routes and
                                                 raises DEX604 on disagreement
  recover  <mapping.dex>                         print the maximum recovery
  query    <mapping.dex> <source.json> "q(x) :- R(x, y)"
                                                 certain answers over the exchange
  resume   <store-dir>                           continue a crashed/exhausted --store run
  migrate  <store-dir> <new-schema.dex> [--dry-run] [--resume]
                                                 crash-safe live schema migration
  fsck     <store-dir> [--repair]                verify a store; --repair truncates a torn WAL
  serve    --map name=mapping.dex …              multi-tenant HTTP daemon (dexd)

resource budgets (chase, exchange, query, resume):
  --timeout <dur>      wall-clock deadline: 500ms, 2s, 1m (bare number = ms)
  --max-rounds <n>     cap on committed chase rounds
  --max-tuples <n>     cap on derived target tuples
  --max-nulls <n>      cap on invented labeled nulls
  --max-memory <size>  approximate target-size cap: 64k, 10m, 1g (bare = bytes)

cost-based admission control (lint, explain, chase, exchange):
  --cards <spec>       assumed per-relation cardinalities for the static
                       cost bounds: Emp=5000,Dept=20,default=100
                       (lint/explain only; chase/exchange measure the
                       real source instance instead)
  --deny-cost <n>      refuse mappings whose predicted headline bound
                       (max of rounds/firings/tuples/nulls) exceeds n:
                       lint raises DEX502; chase/exchange exit 2 without
                       running — non-terminating mappings (DEX501) are
                       refused at every threshold
  --auto-budget        chase/exchange: synthesize --max-rounds/-tuples/
                       -nulls/-memory caps from the predicted bounds
                       (2x safety headroom); explicit --max-* flags take
                       precedence; unbounded predictions set no caps

parallelism (chase, exchange, query, resume):
  --threads <n>        matcher worker threads (default 1 = sequential;
                       0 = all cores); output is bit-identical to the
                       single-threaded chase at any thread count

crash-safe persistence (chase, exchange):
  --store <dir>          WAL + snapshot every committed round into <dir>
  --snapshot-every <n>   snapshot cadence in rounds (default 64)
  --no-sync              skip fsync (testing only — crashes can lose rounds)

statistics (chase, exchange, resume):
  --stats                counters to stderr after the run
  --format text|json     with --stats: human text (default) or one JSON
                         object ({"stats": …, "exhausted": …|null})

when a budget trips, the partial result (a valid chase prefix) is
printed to stdout, a report goes to stderr, and the exit code is 3;
with --store the partial is durable and `dexcli resume <dir>` continues
it with identical results to an uninterrupted run.

schema migration (migrate):
  dexcli migrate <store-dir> <new-schema.dex> [flags]
    The schema file holds declarations only (target/key lines, no
    rules). The store's current schema is diffed against it; the
    resulting schema-modification operators compile to one migration
    mapping, which runs as a governed, checkpointed chase into
    <store-dir>/migrate/. The live store's bytes change only after a
    checksummed commit marker is durable, so a crash at any instant
    leaves either the old store intact (plus resumable staging) or a
    committed migration that rolls forward idempotently.
    --dry-run            print the diff, compiled mapping, predicted
                         cost bounds, and backward recovery — write nothing
    --resume             continue (or roll forward) a staged migration
    budget / --deny-cost / --auto-budget / --snapshot-every / --no-sync
                         behave exactly as for chase/exchange
    ambiguous diffs, non-first-order compositions, and DEX502 admission
    failures exit 2 before any byte of the store is touched; a budget
    trip exits 3 at a durable boundary (`--resume` continues it).

serving (dexd):
  dexcli serve --map emp=employees.dex [--map …] [mapping.dex …]
    --addr <host:port>       bind address (default 127.0.0.1:0; port printed)
    --workers <n>            worker threads (default 4)
    --queue <n>              accepted-connection queue; full = 429 (default 64)
    --max-inflight <n>       per-mapping in-flight cap; 0 = off (default 8)
    --deny-cost <n>          DEX502 admission ceiling → 422 before chasing
    --no-auto-budget         disable budget synthesis from static bounds
    --drain-deadline <dur>   shutdown drain window (default 5s)
    --store-root <dir>       where {"persist": true} requests write stores
    budget flags (--timeout, --max-*) set the per-request default budget;
    request bodies may tighten it via {"budget": {"timeout": "2s", …}}
  status codes mirror exit codes: 200↔0, 206↔3 (partial + report),
  422↔2 (lint/admission), 429 shed, 500↔70 (panic; mapping quarantined),
  503 draining/quarantined

exit codes:
  0   success
  1   usage or input error
  2   lint found errors (after --deny promotion)
  3   budget exhausted — stdout holds a valid partial result
  4   mappings differ (dexcli eq) — stdout holds the counterexample witness
  70  internal panic caught at the process boundary

mapping files use the dex mapping language:
  source Emp(name);
  target Manager(emp, mgr);
  key Manager(emp);
  Emp(x) -> Manager(x, y);

instance JSON: {"Emp": [["Alice"], ["Bob"]]}"#;

/// Remove `--flag value` from `rest` if present; error if the value is
/// missing.
fn take_flag_value(rest: &mut Vec<&String>, flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a.as_str() == flag) {
        Some(i) => {
            if i + 1 >= rest.len() {
                return Err(format!("{flag} requires a value"));
            }
            let v = rest.remove(i + 1).clone();
            rest.remove(i);
            Ok(Some(v))
        }
        None => Ok(None),
    }
}

/// Extract the shared budget flags (`--timeout`, `--max-rounds`,
/// `--max-tuples`, `--max-nulls`, `--max-memory`) from an argument
/// list, leaving the positional arguments behind. The flag set and the
/// value grammar come from [`BudgetArgs`] — the same parser `dexd`
/// applies to request-body budget overrides, so the two surfaces
/// cannot drift.
fn extract_budget(rest: &mut Vec<&String>) -> Result<Budget, String> {
    let mut args = BudgetArgs::new();
    for key in BudgetArgs::KEYS {
        if let Some(v) = take_flag_value(rest, &format!("--{key}"))? {
            // BudgetArgs errors start with the bare key name; prefix
            // the CLI's flag syntax back on.
            args.set(key, &v).map_err(|e| format!("--{e}"))?;
        }
    }
    Ok(args.budget())
}

/// Safety factor applied to `--auto-budget` caps. The static bounds
/// already over-approximate every governor meter (the cost pass's
/// soundness contract), so any factor ≥ 1 never trips on an admitted
/// mapping; the doubling is headroom against accounting drift.
const AUTO_BUDGET_SAFETY: u64 = 2;

/// Cost-based admission controls shared by `chase` and `exchange`.
struct CostControls {
    auto_budget: bool,
    deny_cost: Option<u64>,
}

/// Extract `--auto-budget` and `--deny-cost <n>` from an argument list.
fn extract_cost_controls(rest: &mut Vec<&String>) -> Result<CostControls, String> {
    let auto_budget = match rest.iter().position(|a| a.as_str() == "--auto-budget") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let deny_cost = match take_flag_value(rest, "--deny-cost")? {
        Some(v) => Some(parse_count(&v, "--deny-cost")?),
        None => None,
    };
    Ok(CostControls {
        auto_budget,
        deny_cost,
    })
}

/// Static-cost admission control for `chase`/`exchange`: evaluate the
/// bounds at the *measured* source statistics, refuse over-threshold
/// mappings (`--deny-cost`, exit 2 like lint), and synthesize budget
/// caps (`--auto-budget`; explicit `--max-*` flags take precedence).
/// Returns the admitted budget plus the predicted bounds as JSON for
/// `--stats` reporting.
fn admit(
    m: &Mapping,
    src: &Instance,
    ctl: &CostControls,
    mut budget: Budget,
) -> Result<(Budget, Json), ExitCode> {
    let stats = SourceStats::measure(src);
    let bounds = chase_bounds(m, &stats);
    if let Some(threshold) = ctl.deny_cost {
        let headline = bounds.headline();
        if headline.exceeds(threshold) {
            eprintln!(
                "DEX502: predicted chase cost {headline} exceeds --deny-cost {threshold}; \
                 refusing to run"
            );
            eprintln!(
                "  bounds at the measured source: rounds <= {}, firings <= {}, \
                 tuples <= {}, nulls <= {}, bytes <= {}",
                bounds.rounds, bounds.firings, bounds.tuples, bounds.nulls, bounds.bytes
            );
            return Err(ExitCode::from(EXIT_LINT));
        }
    }
    if ctl.auto_budget {
        let auto = Budget::from_bounds(&bounds, AUTO_BUDGET_SAFETY);
        budget.max_rounds = budget.max_rounds.or(auto.max_rounds);
        budget.max_tuples = budget.max_tuples.or(auto.max_tuples);
        budget.max_nulls = budget.max_nulls.or(auto.max_nulls);
        budget.max_memory_bytes = budget.max_memory_bytes.or(auto.max_memory_bytes);
    }
    let predicted = serde_json::to_value(&bounds).unwrap_or(Json::Null);
    Ok((budget, predicted))
}

/// `Emp=5000,Dept=20,default=100`: per-relation cardinalities for the
/// static cost bounds, with `default` setting the fallback for
/// unlisted relations.
fn parse_cards(spec: &str) -> Result<SourceStats, String> {
    let bad = |part: &str| {
        format!("--cards takes `Rel=count,…` (optionally `default=count`), got `{part}`")
    };
    let mut stats = SourceStats::uniform(DEFAULT_CARD);
    for part in spec.split(',') {
        let (name, count) = part.split_once('=').ok_or_else(|| bad(part))?;
        let n = count.trim().parse::<u64>().map_err(|_| bad(part))?;
        match name.trim() {
            "default" => stats.default_card = n,
            "" => return Err(bad(part)),
            rel => stats = stats.with_card(rel, n),
        }
    }
    Ok(stats)
}

/// Extract `--threads <n>` and install it as the process-wide default
/// matcher thread count (`ChaseOptions::default().threads`), so every
/// chase started by this invocation — directly or through the lens
/// engine — picks it up. `0` means available parallelism.
fn extract_threads(rest: &mut Vec<&String>) -> Result<(), String> {
    if let Some(v) = take_flag_value(rest, "--threads")? {
        let n = v
            .parse::<usize>()
            .map_err(|_| format!("--threads takes a non-negative integer, got `{v}`"))?;
        dex::chase::set_default_threads(n);
    }
    Ok(())
}

fn load_mapping(path: &str) -> Result<Mapping, String> {
    load_mapping_text(path).map(|(_, m)| m)
}

/// Like [`load_mapping`] but keeps the source text (persisted verbatim
/// into `--store` directories so `dexcli resume` needs no file paths).
fn load_mapping_text(path: &str) -> Result<(String, Mapping), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let m = parse_mapping(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((text, m))
}

fn build_engine(m: &Mapping) -> Result<Engine, String> {
    let template = compile(m).map_err(|e| e.to_string())?;
    Engine::new(template, Environment::new()).map_err(|e| e.to_string())
}

fn check(m: &Mapping) {
    println!("source schema:\n{}", m.source());
    println!("target schema:\n{}", m.target());
    println!("st-tgds: {}", m.st_tgds().len());
    for t in m.st_tgds() {
        println!("  {t}");
    }
    if !m.target_egds().is_empty() {
        println!("target egds: {}", m.target_egds().len());
        for e in m.target_egds() {
            println!("  {e}");
        }
    }
    if !m.target_tgds().is_empty() {
        let wa = dex::chase::is_weakly_acyclic(m.target_tgds());
        println!(
            "target tgds: {} (weakly acyclic: {})",
            m.target_tgds().len(),
            if wa {
                "yes — chase terminates"
            } else {
                "NO — chase may diverge"
            }
        );
    }
    match compile(m) {
        Ok(t) => {
            println!("lens compilation: ok ({} holes)", t.holes.len());
            print!("{}", t.report);
            for h in &t.holes {
                println!("  {h}");
            }
        }
        Err(e) => println!("lens compilation: UNSUPPORTED\n{e}"),
    }
}

fn load_instance(path: &str, schema: &Schema) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json: Json = serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    let obj = json
        .as_object()
        .ok_or_else(|| format!("{path}: expected a JSON object of relations"))?;
    let mut inst = Instance::empty(schema.clone());
    for (rel, rows) in obj {
        let rows = rows
            .as_array()
            .ok_or_else(|| format!("{path}: `{rel}` must be an array of rows"))?;
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("{path}: rows of `{rel}` must be arrays"))?;
            let tuple: Tuple = cells
                .iter()
                .map(json_to_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("{path}: {e}"))?
                .into();
            inst.insert(rel, tuple)
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(inst)
}

fn json_to_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::String(s) => Ok(Value::str(s.clone())),
        Json::Number(n) => n
            .as_i64()
            .map(Value::int)
            .ok_or_else(|| format!("non-integer number {n}")),
        Json::Bool(b) => Ok(Value::bool(*b)),
        Json::Object(o) => {
            if let Some(id) = o.get("null").and_then(Json::as_u64) {
                return Ok(Value::null(id));
            }
            Err(format!("unsupported value {j}"))
        }
        other => Err(format!("unsupported value {other}")),
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Const(dex::relational::Constant::Int(i)) => json!(i),
        Value::Const(dex::relational::Constant::Str(s)) => json!(s),
        Value::Const(dex::relational::Constant::Bool(b)) => json!(b),
        Value::Null(n) => json!({ "null": n.0 }),
        Value::Skolem(f, args) => json!({
            "skolem": f.as_str(),
            "args": args.iter().map(value_to_json).collect::<Vec<_>>(),
        }),
    }
}

fn render_instance(inst: &Instance) -> String {
    let mut obj = Map::new();
    for rel in inst.relations() {
        if rel.is_empty() {
            continue;
        }
        let rows: Vec<Json> = rel
            .iter()
            .map(|t| Json::Array(t.iter().map(value_to_json).collect()))
            .collect();
        obj.insert(rel.name().to_string(), Json::Array(rows));
    }
    serde_json::to_string_pretty(&Json::Object(obj)).expect("serializable")
}
