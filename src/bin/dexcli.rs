//! `dexcli` — command-line front end for the dex engine.
//!
//! ```text
//! dexcli plan     <mapping.dex>                          show the compiled lens plan
//! dexcli check    <mapping.dex>                          parse + fidelity + termination report
//! dexcli chase    <mapping.dex> <source.json> [--stats]  classical chase (universal solution)
//! dexcli exchange <mapping.dex> <source.json> [prev.json] [--stats] lens-engine forward
//! dexcli backward <mapping.dex> <target.json> <source.json> lens-engine backward
//! dexcli compose  <m1.dex> <m2.dex>                      compose mappings (SO-tgd or st-tgds)
//! dexcli recover  <mapping.dex>                          maximum recovery (disjunctive rules)
//! ```
//!
//! Instance JSON format — facts only, schema comes from the mapping:
//!
//! ```json
//! { "Emp": [["Alice"], ["Bob"]], "Dept": [["Alice", 1]] }
//! ```
//!
//! Labeled nulls appear in output as `{"null": n}`; Skolem terms as
//! `{"skolem": "f", "args": [...]}`.

use dex::analyze::{analyze, deny_warnings, has_errors, parse_error_diagnostic, render_all};
use dex::chase::{
    certain_answers_governed, exchange_governed, Budget, ChaseOptions, ChaseOutcome, Governor,
};
use dex::core::{compile, Engine, EngineForward};
use dex::logic::{parse_mapping, parse_mapping_with_spans, Mapping};
use dex::ops::{compose, maximum_recovery};
use dex::relational::{Instance, Schema, Tuple, Value};
use dex::rellens::Environment;
use serde_json::{json, Map, Value as Json};
use std::process::ExitCode;
use std::time::Duration;

/// Exit code when a budget trips: the run is neither a success nor an
/// error — the partial result on stdout is a valid chase prefix.
const EXIT_EXHAUSTED: u8 = 3;
/// Exit code for an internal panic caught at the process boundary
/// (BSD `EX_SOFTWARE`).
const EXIT_PANIC: u8 = 70;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A panic anywhere below is a bug, not a user error: suppress the
    // default hook's backtrace spew and convert the unwind into a
    // distinct exit code so scripts can tell "bad input" from "bug".
    std::panic::set_hook(Box::new(|_| {}));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&args))) {
        Ok(Ok(code)) => code,
        Ok(Err(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("dexcli: internal error (panic)");
            ExitCode::from(EXIT_PANIC)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage =
        "usage: dexcli <plan|check|lint|chase|exchange|backward|compose|recover|query> <args…>\n\
                 run `dexcli help` for details";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        "plan" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let engine = build_engine(&m)?;
            println!("{}", engine.show_plan());
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            check(&m);
            Ok(ExitCode::SUCCESS)
        }
        "lint" => lint(&args[1..]).map(|()| ExitCode::SUCCESS),
        "chase" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let stats = rest.iter().position(|a| a.as_str() == "--stats");
            if let Some(i) = stats {
                rest.remove(i);
            }
            let m = load_mapping(rest.first().ok_or(usage)?)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let gov = Governor::new(budget);
            let outcome = exchange_governed(&m, &src, ChaseOptions::default(), &gov)
                .map_err(|e| e.to_string())?;
            match outcome {
                ChaseOutcome::Complete(res) => {
                    eprintln!(
                        "chased {} source facts; {} nulls invented, {} rule firings",
                        src.fact_count(),
                        res.nulls_created,
                        res.firings
                    );
                    if stats.is_some() {
                        eprint!("{}", res.stats);
                    }
                    println!("{}", render_instance(&res.target));
                    Ok(ExitCode::SUCCESS)
                }
                ChaseOutcome::Exhausted(ex) => {
                    eprintln!("{}", ex.report);
                    eprintln!("the instance below is a valid partial chase result");
                    if stats.is_some() {
                        eprint!("{}", ex.stats);
                    }
                    println!("{}", render_instance(&ex.partial));
                    Ok(ExitCode::from(EXIT_EXHAUSTED))
                }
            }
        }
        "exchange" => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let stats = rest.iter().position(|a| a.as_str() == "--stats");
            if let Some(i) = stats {
                rest.remove(i);
            }
            let m = load_mapping(rest.first().ok_or(usage)?)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let prev = match rest.get(2) {
                Some(p) => Some(load_instance(p, m.target())?),
                None => None,
            };
            let engine = build_engine(&m)?;
            let gov = Governor::new(budget);
            match engine
                .forward_governed(&src, prev.as_ref(), &gov)
                .map_err(|e| e.to_string())?
            {
                EngineForward::Complete { target, stats: st } => {
                    if stats.is_some() {
                        eprint!("{st}");
                    }
                    println!("{}", render_instance(&target));
                    Ok(ExitCode::SUCCESS)
                }
                EngineForward::Exhausted { partial, report } => {
                    eprintln!("{report}");
                    eprintln!("the instance below is a consistent partial forward result");
                    println!("{}", render_instance(&partial));
                    Ok(ExitCode::from(EXIT_EXHAUSTED))
                }
            }
        }
        "backward" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let tgt = load_instance(args.get(2).ok_or(usage)?, m.target())?;
            let src = load_instance(args.get(3).ok_or(usage)?, m.source())?;
            let engine = build_engine(&m)?;
            let out = engine.backward(&tgt, &src).map_err(|e| e.to_string())?;
            println!("{}", render_instance(&out));
            Ok(ExitCode::SUCCESS)
        }
        "compose" => {
            let m1 = load_mapping(args.get(1).ok_or(usage)?)?;
            let m2 = load_mapping(args.get(2).ok_or(usage)?)?;
            let comp = compose(&m1, &m2).map_err(|e| e.to_string())?;
            match &comp.st_tgds {
                Some(tgds) => {
                    eprintln!("composition is first-order ({} st-tgds):", tgds.len());
                    for t in tgds {
                        println!("{t}");
                    }
                }
                None => {
                    eprintln!("composition requires second-order quantification:");
                    println!("{comp}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "query" => {
            // dexcli query <mapping> <source.json> "q(x) :- Manager(x, m)"
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let budget = extract_budget(&mut rest)?;
            let m = load_mapping(rest.first().ok_or(usage)?)?;
            let src = load_instance(rest.get(1).ok_or(usage)?, m.source())?;
            let qtext = rest.get(2).ok_or(usage)?;
            let (head, body) = dex::logic::parse_query(qtext).map_err(|e| e.to_string())?;
            let q =
                dex::chase::ConjunctiveQuery::new(head.iter().map(|n| n.as_str()).collect(), body)
                    .map_err(|e| e.to_string())?;
            q.validate(m.target()).map_err(|e| e.to_string())?;
            let gov = Governor::new(budget);
            let outcome = exchange_governed(&m, &src, ChaseOptions::default(), &gov)
                .map_err(|e| e.to_string())?;
            // Certain-answer evaluation is monotone, so answers computed
            // over a chase prefix are a sound subset of the certain
            // answers — report them, flag the truncation, exit 3.
            let (j, chase_report) = match outcome {
                ChaseOutcome::Complete(res) => (res.target, None),
                ChaseOutcome::Exhausted(ex) => (ex.partial, Some(ex.report)),
            };
            let (answers, eval_report) = certain_answers_governed(&q, &j, &gov);
            let exhausted = chase_report.or(eval_report);
            match &exhausted {
                Some(report) => {
                    eprintln!("{report}");
                    eprintln!(
                        "{} certain answer(s) found before the budget tripped \
                         (a sound subset of the full answer set)",
                        answers.len()
                    );
                }
                None => eprintln!(
                    "{} certain answer(s) over the universal solution",
                    answers.len()
                ),
            }
            let rows: Vec<Json> = answers
                .iter()
                .map(|t| Json::Array(t.iter().map(value_to_json).collect()))
                .collect();
            println!(
                "{}",
                serde_json::to_string_pretty(&Json::Array(rows)).map_err(|e| e.to_string())?
            );
            Ok(if exhausted.is_some() {
                ExitCode::from(EXIT_EXHAUSTED)
            } else {
                ExitCode::SUCCESS
            })
        }
        "recover" => {
            let m = load_mapping(args.get(1).ok_or(usage)?)?;
            let rec = maximum_recovery(&m).map_err(|e| e.to_string())?;
            println!("{rec}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

/// `dexcli lint <files…> [--format text|json] [--deny warnings]`.
///
/// Exit status is non-zero iff any file fails to parse or any
/// diagnostic is an error after `--deny warnings` promotion.
fn lint(args: &[String]) -> Result<(), String> {
    let usage = "usage: dexcli lint <mapping.dex>… [--format text|json] [--deny warnings]";
    let mut files: Vec<&String> = Vec::new();
    let mut format = "text";
    let mut deny = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some(f @ ("text" | "json")) => f,
                    _ => return Err(format!("--format takes `text` or `json`\n{usage}")),
                };
            }
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny = true,
                _ => return Err(format!("--deny takes `warnings`\n{usage}")),
            },
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{usage}"))
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return Err(usage.into());
    }

    let mut failed = false;
    let mut json_report: Vec<Json> = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut diags = match parse_mapping_with_spans(&text) {
            Ok((m, spans)) => analyze(&m, Some(&spans)),
            Err(e) => vec![parse_error_diagnostic(&e)],
        };
        if deny {
            deny_warnings(&mut diags);
        }
        failed |= has_errors(&diags);
        match format {
            "json" => json_report.push(json!({
                "file": path,
                "diagnostics": serde_json::to_value(&diags)
                    .map_err(|e| e.to_string())?,
            })),
            _ => {
                if !diags.is_empty() {
                    print!("{}", render_all(&diags, path, &text));
                }
            }
        }
    }
    if format == "json" {
        println!(
            "{}",
            serde_json::to_string_pretty(&Json::Array(json_report)).map_err(|e| e.to_string())?
        );
    }
    if failed {
        Err("lint found errors".into())
    } else {
        Ok(())
    }
}

const HELP: &str = r#"dexcli — bidirectional data exchange from the command line

commands:
  plan     <mapping.dex>                         compile and show the lens plan
  check    <mapping.dex>                         fidelity + termination report
  lint     <mapping.dex>… [--format text|json] [--deny warnings]
                                                 static analysis (DEX diagnostic codes)
  chase    <mapping.dex> <source.json> [--stats] materialize the universal solution
  exchange <mapping.dex> <source.json> [prev.json] [--stats]  lens-engine forward exchange
  backward <mapping.dex> <target.json> <source.json>  propagate target edits back
  compose  <m1.dex> <m2.dex>                     compose two mappings
  recover  <mapping.dex>                         print the maximum recovery
  query    <mapping.dex> <source.json> "q(x) :- R(x, y)"
                                                 certain answers over the exchange

resource budgets (chase, exchange, query):
  --timeout <dur>      wall-clock deadline: 500ms, 2s, 1m (bare number = ms)
  --max-rounds <n>     cap on committed chase rounds
  --max-tuples <n>     cap on derived target tuples
  --max-nulls <n>      cap on invented labeled nulls
  --max-memory <size>  approximate target-size cap: 64k, 10m, 1g (bare = bytes)

when a budget trips, the partial result (a valid chase prefix) is
printed to stdout, a report goes to stderr, and the exit code is 3.

exit codes: 0 success, 1 error, 3 budget exhausted, 70 internal panic

mapping files use the dex mapping language:
  source Emp(name);
  target Manager(emp, mgr);
  key Manager(emp);
  Emp(x) -> Manager(x, y);

instance JSON: {"Emp": [["Alice"], ["Bob"]]}"#;

/// Remove `--flag value` from `rest` if present; error if the value is
/// missing.
fn take_flag_value(rest: &mut Vec<&String>, flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a.as_str() == flag) {
        Some(i) => {
            if i + 1 >= rest.len() {
                return Err(format!("{flag} requires a value"));
            }
            let v = rest.remove(i + 1).clone();
            rest.remove(i);
            Ok(Some(v))
        }
        None => Ok(None),
    }
}

/// Extract the shared budget flags (`--timeout`, `--max-rounds`,
/// `--max-tuples`, `--max-nulls`, `--max-memory`) from an argument
/// list, leaving the positional arguments behind.
fn extract_budget(rest: &mut Vec<&String>) -> Result<Budget, String> {
    let mut b = Budget::unlimited();
    if let Some(v) = take_flag_value(rest, "--timeout")? {
        b = b.with_deadline(parse_duration(&v)?);
    }
    if let Some(v) = take_flag_value(rest, "--max-rounds")? {
        b = b.with_max_rounds(parse_count(&v, "--max-rounds")?);
    }
    if let Some(v) = take_flag_value(rest, "--max-tuples")? {
        b = b.with_max_tuples(parse_count(&v, "--max-tuples")?);
    }
    if let Some(v) = take_flag_value(rest, "--max-nulls")? {
        b = b.with_max_nulls(parse_count(&v, "--max-nulls")?);
    }
    if let Some(v) = take_flag_value(rest, "--max-memory")? {
        b = b.with_max_memory(parse_size(&v)?);
    }
    Ok(b)
}

fn parse_count(s: &str, flag: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("{flag} takes a non-negative integer, got `{s}`"))
}

/// `500ms`, `2s`, `1m`, or a bare number of milliseconds.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let bad = || format!("--timeout takes a duration like 500ms, 2s or 1m, got `{s}`");
    let (digits, mult_ms) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('m') {
        (d, 60_000)
    } else {
        (s, 1)
    };
    let n = digits.parse::<u64>().map_err(|_| bad())?;
    n.checked_mul(mult_ms)
        .map(Duration::from_millis)
        .ok_or_else(bad)
}

/// `64k`, `10m`, `1g`, or a bare number of bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let bad = || format!("--max-memory takes a size like 64k, 10m or 1g, got `{s}`");
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix('k') {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (lower.as_str(), 1)
    };
    let n = digits.parse::<u64>().map_err(|_| bad())?;
    n.checked_mul(mult).ok_or_else(bad)
}

fn load_mapping(path: &str) -> Result<Mapping, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_mapping(&text).map_err(|e| format!("{path}: {e}"))
}

fn build_engine(m: &Mapping) -> Result<Engine, String> {
    let template = compile(m).map_err(|e| e.to_string())?;
    Engine::new(template, Environment::new()).map_err(|e| e.to_string())
}

fn check(m: &Mapping) {
    println!("source schema:\n{}", m.source());
    println!("target schema:\n{}", m.target());
    println!("st-tgds: {}", m.st_tgds().len());
    for t in m.st_tgds() {
        println!("  {t}");
    }
    if !m.target_egds().is_empty() {
        println!("target egds: {}", m.target_egds().len());
        for e in m.target_egds() {
            println!("  {e}");
        }
    }
    if !m.target_tgds().is_empty() {
        let wa = dex::chase::is_weakly_acyclic(m.target_tgds());
        println!(
            "target tgds: {} (weakly acyclic: {})",
            m.target_tgds().len(),
            if wa {
                "yes — chase terminates"
            } else {
                "NO — chase may diverge"
            }
        );
    }
    match compile(m) {
        Ok(t) => {
            println!("lens compilation: ok ({} holes)", t.holes.len());
            print!("{}", t.report);
            for h in &t.holes {
                println!("  {h}");
            }
        }
        Err(e) => println!("lens compilation: UNSUPPORTED\n{e}"),
    }
}

fn load_instance(path: &str, schema: &Schema) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json: Json = serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    let obj = json
        .as_object()
        .ok_or_else(|| format!("{path}: expected a JSON object of relations"))?;
    let mut inst = Instance::empty(schema.clone());
    for (rel, rows) in obj {
        let rows = rows
            .as_array()
            .ok_or_else(|| format!("{path}: `{rel}` must be an array of rows"))?;
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("{path}: rows of `{rel}` must be arrays"))?;
            let tuple: Tuple = cells
                .iter()
                .map(json_to_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("{path}: {e}"))?
                .into();
            inst.insert(rel, tuple)
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(inst)
}

fn json_to_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::String(s) => Ok(Value::str(s.clone())),
        Json::Number(n) => n
            .as_i64()
            .map(Value::int)
            .ok_or_else(|| format!("non-integer number {n}")),
        Json::Bool(b) => Ok(Value::bool(*b)),
        Json::Object(o) => {
            if let Some(id) = o.get("null").and_then(Json::as_u64) {
                return Ok(Value::null(id));
            }
            Err(format!("unsupported value {j}"))
        }
        other => Err(format!("unsupported value {other}")),
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Const(dex::relational::Constant::Int(i)) => json!(i),
        Value::Const(dex::relational::Constant::Str(s)) => json!(s),
        Value::Const(dex::relational::Constant::Bool(b)) => json!(b),
        Value::Null(n) => json!({ "null": n.0 }),
        Value::Skolem(f, args) => json!({
            "skolem": f.as_str(),
            "args": args.iter().map(value_to_json).collect::<Vec<_>>(),
        }),
    }
}

fn render_instance(inst: &Instance) -> String {
    let mut obj = Map::new();
    for rel in inst.relations() {
        if rel.is_empty() {
            continue;
        }
        let rows: Vec<Json> = rel
            .iter()
            .map(|t| Json::Array(t.iter().map(value_to_json).collect()))
            .collect();
        obj.insert(rel.name().to_string(), Json::Array(rows));
    }
    serde_json::to_string_pretty(&Json::Object(obj)).expect("serializable")
}
