//! `dex` — umbrella crate re-exporting the full bidirectional data-exchange
//! stack: relational substrate, mapping logic, chase engine, mapping
//! operators, lens framework, relational lenses, the st-tgd-to-lens
//! compiler, and schema evolution.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-experiment reproduction index.

pub use dex_analyze as analyze;
pub use dex_chase as chase;
pub use dex_core as core;
pub use dex_evolution as evolution;
pub use dex_lens as lens;
pub use dex_logic as logic;
pub use dex_ops as ops;
pub use dex_relational as relational;
pub use dex_rellens as rellens;
pub use dex_store as store;
