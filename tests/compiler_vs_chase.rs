//! E7 — paper §4: the st-tgd → lens pipeline. The compiled engine's
//! forward direction must agree with the chase (the compiler
//! correctness / completeness artifact), plans must render, and the
//! classifier must be honest about the fragment.

use dex::chase::exchange;
use dex::core::{compile, CoreError, Engine};
use dex::logic::parse_mapping;
use dex::relational::homomorphism::homomorphically_equivalent;
use dex::relational::{tuple, Instance};
use dex::rellens::Environment;
use proptest::prelude::*;

/// Every mapping in the compilable fragment we ship: forward ==
/// chase (up to hom-equivalence) on a non-trivial instance.
#[test]
fn forward_agrees_with_chase_across_fragment() {
    type Facts = Vec<(&'static str, Vec<dex::relational::Tuple>)>;
    let cases: Vec<(&str, Facts)> = vec![
        (
            // Copy (full, GAV).
            r#"
            source A(x, y);
            target B(x, y);
            A(u, v) -> B(u, v);
            "#,
            vec![("A", vec![tuple![1i64, 2i64], tuple![3i64, 4i64]])],
        ),
        (
            // Projection + existential.
            r#"
            source Person1(id, name, age, city);
            target Person2(id, name, salary, zipcode);
            Person1(i, n, a, c) -> Person2(i, n, s, z);
            "#,
            vec![(
                "Person1",
                vec![
                    tuple![1i64, "Alice", 30i64, "Sydney"],
                    tuple![2i64, "Bob", 40i64, "Lima"],
                ],
            )],
        ),
        (
            // Union.
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
            vec![
                ("Father", vec![tuple!["Leslie", "Alice"]]),
                (
                    "Mother",
                    vec![tuple!["Robin", "Sam"], tuple!["Leslie", "Alice"]],
                ),
            ],
        ),
        (
            // Join.
            r#"
            source Student(id, name);
            source Assgn(name, course);
            target Enrollment(id, course);
            Student(x, y) & Assgn(y, w) -> Enrollment(x, w);
            "#,
            vec![
                ("Student", vec![tuple![1i64, "Alice"], tuple![2i64, "Bob"]]),
                (
                    "Assgn",
                    vec![
                        tuple!["Alice", "DB"],
                        tuple!["Alice", "PL"],
                        tuple!["Bob", "DB"],
                    ],
                ),
            ],
        ),
        (
            // Constants + selection + duplicate source variable.
            r#"
            source Manager(emp, mgr);
            target SelfMngr(emp, tag);
            Manager(x, x) -> SelfMngr(x, 'self');
            "#,
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Ted"]],
            )],
        ),
        (
            // Repeated target variable (copy positions).
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, x);
            "#,
            vec![("R", vec![tuple!["u"], tuple!["v"]])],
        ),
        (
            // Multi-atom target (Figure 1 upper).
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
            vec![("Takes", vec![tuple!["Alice", "DB"], tuple!["Bob", "PL"]])],
        ),
    ];
    for (text, facts) in cases {
        let m = parse_mapping(text).unwrap();
        let src = Instance::with_facts(m.source().clone(), facts).unwrap();
        let chase_out = exchange(&m, &src).unwrap().target;
        let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        let lens_out = engine.forward(&src, None).unwrap();
        assert!(
            m.is_solution(&src, &lens_out),
            "not a solution:\n{lens_out}"
        );
        assert!(
            homomorphically_equivalent(&chase_out, &lens_out),
            "mapping:\n{text}\nchase:\n{chase_out}\nlens:\n{lens_out}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized agreement for the union mapping.
    #[test]
    fn forward_agrees_with_chase_random_union(
        fathers in proptest::collection::btree_set((0i64..8, 0i64..8), 0..6),
        mothers in proptest::collection::btree_set((0i64..8, 0i64..8), 0..6),
    ) {
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        ).unwrap();
        let mut src = Instance::empty(m.source().clone());
        for (p, c) in fathers {
            src.insert("Father", tuple![p, c]).unwrap();
        }
        for (p, c) in mothers {
            src.insert("Mother", tuple![p, c]).unwrap();
        }
        let chase_out = exchange(&m, &src).unwrap().target;
        let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        let lens_out = engine.forward(&src, None).unwrap();
        prop_assert_eq!(chase_out, lens_out, "full mapping: outputs equal exactly");
    }

    /// Randomized agreement for the join mapping.
    #[test]
    fn forward_agrees_with_chase_random_join(
        students in proptest::collection::btree_set((0i64..6, 0i64..4), 0..5),
        assgns in proptest::collection::btree_set((0i64..4, 0i64..4), 0..5),
    ) {
        let m = parse_mapping(
            r#"
            source Student(id, name);
            source Assgn(name, course);
            target Enrollment(id, course);
            Student(x, y) & Assgn(y, w) -> Enrollment(x, w);
            "#,
        ).unwrap();
        let mut src = Instance::empty(m.source().clone());
        for (id, n) in students {
            src.insert("Student", tuple![id, format!("n{n}").as_str()]).unwrap();
        }
        for (n, c) in assgns {
            src.insert("Assgn", tuple![format!("n{n}").as_str(), format!("c{c}").as_str()]).unwrap();
        }
        let chase_out = exchange(&m, &src).unwrap().target;
        let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        let lens_out = engine.forward(&src, None).unwrap();
        prop_assert_eq!(chase_out, lens_out);
    }
}

#[test]
fn show_plan_is_complete_and_readable() {
    let m = parse_mapping(
        r#"
        source Student(id, name);
        source Assgn(name, course);
        target Enrollment(id, course);
        Student(x, y) & Assgn(y, w) -> Enrollment(x, w);
        "#,
    )
    .unwrap();
    let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let plan = engine.show_plan();
    for needle in [
        "== mapping plan ==",
        "target Enrollment",
        "Join[delete-both]",
        "Base[Student]",
        "Base[Assgn]",
        "== policy questions ==",
        "== fidelity ==",
        "[exact]",
    ] {
        assert!(plan.contains(needle), "plan missing {needle:?}:\n{plan}");
    }
}

#[test]
fn classifier_reports_approximation_reasons() {
    let m = parse_mapping(
        r#"
        source R(a);
        target S(k, a);
        target T(k);
        R(x) -> S(z, x) & T(z);
        "#,
    )
    .unwrap();
    let t = compile(&m).unwrap();
    assert!(!t.report.all_exact());
    let rendered = t.report.to_string();
    assert!(rendered.contains("[approximate]"), "{rendered}");
    assert!(rendered.contains("`z`"), "{rendered}");
}

#[test]
fn out_of_fragment_mappings_are_refused_not_miscompiled() {
    // Self-join in the premise.
    let text = "source S(a, b);\ntarget T(a, c);\nS(x, y) & S(y, z) -> T(x, z);";
    let m = parse_mapping(text).unwrap();
    match compile(&m) {
        Err(CoreError::Unsupported { reasons }) => {
            assert!(!reasons.is_empty());
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn compiled_get_equals_chase_then_policies_differ_only_in_fills() {
    // With a Const policy instead of Null, forward output differs from
    // the chase exactly on the existential columns.
    use dex::core::HoleBinding;
    use dex::rellens::UpdatePolicy;
    let m = parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap();
    let mut t = compile(&m).unwrap();
    t.bind(0, HoleBinding::Column(UpdatePolicy::Const("TBD".into())))
        .unwrap();
    let engine = Engine::new(t, Environment::new()).unwrap();
    let src =
        Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
    let out = engine.forward(&src, None).unwrap();
    assert!(out.contains("Manager", &tuple!["Alice", "TBD"]));
    // Still a solution (a constant witness satisfies the existential).
    assert!(m.is_solution(&src, &out));
}
