//! E6 — paper §3: the four update policies for a dropped column
//! (null / constant / environment / functional dependency), and the
//! claim that the FD option is the least lossy.

use dex::relational::{tuple, Fd, Instance, Name, RelSchema, Relation, Schema, Value};
use dex::rellens::{Environment, InstanceLens, RelLensExpr, UpdatePolicy};

fn schema() -> Schema {
    Schema::with_relations(vec![RelSchema::untyped(
        "Addr",
        vec!["person", "zip", "city"],
    )
    .unwrap()
    .with_fd(Fd::new(vec!["zip"], vec!["city"]))
    .unwrap()])
    .unwrap()
}

fn db() -> Instance {
    Instance::with_facts(
        schema(),
        vec![(
            "Addr",
            vec![
                tuple!["alice", 2000i64, "Sydney"],
                tuple!["bob", 2000i64, "Sydney"],
                tuple!["carol", 8320000i64, "Santiago"],
            ],
        )],
    )
    .unwrap()
}

fn lens(policy: UpdatePolicy, env: Environment) -> InstanceLens {
    InstanceLens::new(
        RelLensExpr::base("Addr").project(vec!["person", "zip"], vec![("city", policy)]),
        schema(),
        env,
    )
    .unwrap()
}

/// A new row inserted through the view, under each of the paper's four
/// policies.
fn insert_dan(policy: UpdatePolicy, env: Environment) -> Value {
    let l = lens(policy, env);
    let mut view = l.try_get(&db()).unwrap();
    view.insert(tuple!["dan", 2000i64]).unwrap();
    let out = l.try_put(&view, &db()).unwrap();
    let dan = out
        .relation("Addr")
        .unwrap()
        .iter()
        .find(|t| t[0] == Value::str("dan"))
        .unwrap()
        .clone();
    dan[2].clone()
}

#[test]
fn policy_null_always_a_null() {
    let v = insert_dan(UpdatePolicy::Null, Environment::new());
    assert!(v.is_null());
}

#[test]
fn policy_const_always_the_constant() {
    let v = insert_dan(UpdatePolicy::Const("Nowhere".into()), Environment::new());
    assert_eq!(v, Value::str("Nowhere"));
}

#[test]
fn policy_env_inserts_environment_value() {
    let mut env = Environment::new();
    env.insert(Name::new("session_city"), Value::str("Quito"));
    let v = insert_dan(UpdatePolicy::Env(Name::new("session_city")), env);
    assert_eq!(v, Value::str("Quito"));
}

#[test]
fn policy_fd_uses_the_functional_dependency() {
    // “Use a functional dependency c′ → c from another column c′ to
    // determine the value” — dan's zip 2000 pins the city to Sydney.
    let v = insert_dan(UpdatePolicy::fd_or_null(vec!["zip"]), Environment::new());
    assert_eq!(v, Value::str("Sydney"));
}

#[test]
fn policy_fd_falls_back_on_unseen_zip() {
    let l = lens(UpdatePolicy::fd_or_null(vec!["zip"]), Environment::new());
    let mut view = l.try_get(&db()).unwrap();
    view.insert(tuple!["erin", 99999i64]).unwrap();
    let out = l.try_put(&view, &db()).unwrap();
    let erin = out
        .relation("Addr")
        .unwrap()
        .iter()
        .find(|t| t[0] == Value::str("erin"))
        .unwrap()
        .clone();
    assert!(erin[2].is_null());
}

/// Data-preservation score: among the four policies, FD recovers the
/// most ground truth when rows are (wrongly) deleted and re-inserted —
/// the executable form of “the original work … treats the last of
/// those options as the proper one in the sense that it is the least
/// lossy.”
#[test]
fn fd_policy_is_least_lossy() {
    let truth = db();
    // Delete-then-reinsert every row through the view (a worst-case
    // churn that loses the kept-row matching).
    let preservation = |policy: UpdatePolicy| -> usize {
        let l = lens(policy, Environment::new());
        let view = l.try_get(&truth).unwrap();
        // Wipe…
        let empty_view = Relation::empty(l.view_schema().clone());
        let wiped = l.try_put(&empty_view, &truth).unwrap();
        // …then re-insert the same view rows.
        let restored = l.try_put(&view, &wiped).unwrap();
        restored
            .relation("Addr")
            .unwrap()
            .iter()
            .filter(|t| truth.relation("Addr").unwrap().contains(t))
            .count()
    };
    let null_score = preservation(UpdatePolicy::Null);
    let const_score = preservation(UpdatePolicy::Const("Sydney".into()));
    let fd_score = preservation(UpdatePolicy::fd_or_null(vec!["zip"]));
    // Null restores nothing exactly; Const restores only the rows that
    // happened to be in Sydney; FD restores… also nothing here, because
    // wiping removed the rows the FD would consult. The FD consults the
    // *current* source:
    assert_eq!(null_score, 0);
    assert_eq!(const_score, 2, "alice and bob were in Sydney");
    assert_eq!(
        fd_score, 0,
        "FD lookup has nothing left to consult after a full wipe"
    );

    // The realistic churn: one row is deleted and re-added while the
    // others survive — now the FD shines.
    let churn = |policy: UpdatePolicy| -> bool {
        let l = lens(policy, Environment::new());
        let mut view = l.try_get(&truth).unwrap();
        view.remove(&tuple!["bob", 2000i64]);
        let without_bob = l.try_put(&view, &truth).unwrap();
        view.insert(tuple!["bob", 2000i64]).unwrap();
        let back = l.try_put(&view, &without_bob).unwrap();
        back.contains("Addr", &tuple!["bob", 2000i64, "Sydney"])
    };
    assert!(!churn(UpdatePolicy::Null));
    assert!(
        churn(UpdatePolicy::fd_or_null(vec!["zip"])),
        "alice's surviving row pins the city"
    );
}

/// The FD policy respects per-view-row values: two new rows with
/// different zips get different cities.
#[test]
fn fd_policy_is_row_sensitive() {
    let l = lens(UpdatePolicy::fd_or_null(vec!["zip"]), Environment::new());
    let mut view = l.try_get(&db()).unwrap();
    view.insert(tuple!["dan", 2000i64]).unwrap();
    view.insert(tuple!["erin", 8320000i64]).unwrap();
    let out = l.try_put(&view, &db()).unwrap();
    let city_of = |who: &str| {
        out.relation("Addr")
            .unwrap()
            .iter()
            .find(|t| t[0] == Value::str(who))
            .unwrap()[2]
            .clone()
    };
    assert_eq!(city_of("dan"), Value::str("Sydney"));
    assert_eq!(city_of("erin"), Value::str("Santiago"));
}

/// The intro's “as a function of …” policy: a computed fill, bound
/// through the engine's hole machinery.
#[test]
fn compute_policy_through_engine() {
    use dex::core::{compile, Engine, HoleBinding};
    use dex::logic::parse_mapping;
    use dex::relational::Expr;

    let m = parse_mapping(
        r#"
        source Person1(id, name, age, city);
        target Person2(id, name, salary, zipcode);
        Person1(i, n, a, c) -> Person2(i, n, s, z);
        "#,
    )
    .unwrap();
    let mut template = compile(&m).unwrap();
    let salary_hole = template
        .holes
        .iter()
        .find(|h| h.question.contains("salary"))
        .unwrap()
        .id;
    // salary := id * 1000 + 30000 — a function of the row itself.
    template
        .bind(
            salary_hole,
            HoleBinding::Column(UpdatePolicy::Compute(
                Expr::attr("id")
                    .mul(Expr::lit(1000i64))
                    .add(Expr::lit(30_000i64)),
            )),
        )
        .unwrap();
    let engine = Engine::new(template, Environment::new()).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![(
            "Person1",
            vec![
                tuple![1i64, "Alice", 30i64, "Sydney"],
                tuple![7i64, "Bob", 40i64, "Lima"],
            ],
        )],
    )
    .unwrap();
    let tgt = engine.forward(&src, None).unwrap();
    let salary_of = |id: i64| {
        tgt.relation("Person2")
            .unwrap()
            .iter()
            .find(|t| t[0] == Value::int(id))
            .unwrap()[2]
            .clone()
    };
    assert_eq!(salary_of(1), Value::int(31_000));
    assert_eq!(salary_of(7), Value::int(37_000));
    assert!(m.is_solution(&src, &tgt));
}

/// Missing environment values are loud errors, not silent nulls.
#[test]
fn env_policy_missing_value_errors() {
    let l = lens(UpdatePolicy::Env(Name::new("absent")), Environment::new());
    let mut view = l.try_get(&db()).unwrap();
    view.insert(tuple!["dan", 2000i64]).unwrap();
    let err = l.try_put(&view, &db()).unwrap_err();
    assert!(err.to_string().contains("absent"));
}
