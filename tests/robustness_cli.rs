//! Robustness tests for the `dexcli` binary: budget exhaustion exit
//! codes, partial results, and a fuzz harness asserting the process
//! never dies of a panic (exit 70) or a signal on hostile input.

use proptest::prelude::*;
use std::io::Write;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

fn dexcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
}

/// Path of a file shipped with the repository.
fn repo_file(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Write `content` to a fresh temp file (unique per call, so parallel
/// tests and fuzz cases never collide).
fn write_tmp(stem: &str, content: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dexcli-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{stem}-{}-{n}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content).unwrap();
    path
}

// ---------------------------------------------------------------------
// Pinned budget-exhaustion behaviour
// ---------------------------------------------------------------------

/// The repository's canonical non-terminating mapping under a 50 ms
/// deadline: the chase must stop, print a non-empty valid partial
/// instance to stdout, report the trip on stderr, and exit 3.
#[test]
fn non_terminating_chase_under_deadline_yields_partial_and_exit_3() {
    let src = write_tmp("nt-src.json", br#"{"Emp": [["a", "b"]]}"#);
    let out = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/bad_non_terminating.dex"))
        .arg(&src)
        .args(["--timeout", "50ms"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "expected exhaustion exit code");
    let err = String::from_utf8(out.stderr).unwrap();
    // On a fast machine the default 10k-round cap can fire before the
    // 50 ms deadline does; either way the run must stop within the
    // deadline's order of magnitude and exit through `Exhausted`.
    assert!(err.contains("budget exhausted"), "stderr: {err}");
    assert!(
        err.contains("deadline") || err.contains("round limit"),
        "stderr: {err}"
    );
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let succ = json.get("Succ").and_then(|v| v.as_array()).unwrap();
    assert!(!succ.is_empty(), "partial result must be non-empty");
}

#[test]
fn tuple_budget_trips_chase_with_exit_3() {
    let src = write_tmp("nt-src2.json", br#"{"Emp": [["a", "b"]]}"#);
    let out = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/bad_non_terminating.dex"))
        .arg(&src)
        .args(["--max-tuples", "10"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("derived-tuple limit"), "stderr: {err}");
}

#[test]
fn generous_budget_does_not_change_a_terminating_run() {
    let m = write_tmp(
        "emp.dex",
        b"source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);\n",
    );
    let src = write_tmp("emp-src.json", br#"{"Emp": [["Alice"], ["Bob"]]}"#);
    let plain = dexcli().arg("chase").arg(&m).arg(&src).output().unwrap();
    let governed = dexcli()
        .arg("chase")
        .arg(&m)
        .arg(&src)
        .args([
            "--timeout",
            "1m",
            "--max-rounds",
            "1000",
            "--max-memory",
            "1g",
        ])
        .output()
        .unwrap();
    assert!(plain.status.success());
    assert!(governed.status.success());
    assert_eq!(plain.stdout, governed.stdout);
}

#[test]
fn governed_exchange_and_query_accept_budget_flags() {
    let m = write_tmp(
        "emp2.dex",
        b"source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);\n",
    );
    let src = write_tmp("emp2-src.json", br#"{"Emp": [["Alice"]]}"#);
    let ex = dexcli()
        .arg("exchange")
        .arg(&m)
        .arg(&src)
        .args(["--timeout", "1m"])
        .output()
        .unwrap();
    assert!(
        ex.status.success(),
        "{}",
        String::from_utf8_lossy(&ex.stderr)
    );
    let q = dexcli()
        .arg("query")
        .arg(&m)
        .arg(&src)
        .arg("q(x) :- Manager(x, y)")
        .args(["--max-tuples", "1000"])
        .output()
        .unwrap();
    assert!(q.status.success(), "{}", String::from_utf8_lossy(&q.stderr));
    let rows: serde_json::Value =
        serde_json::from_str(&String::from_utf8(q.stdout).unwrap()).unwrap();
    assert_eq!(rows.as_array().unwrap().len(), 1);
}

#[test]
fn malformed_budget_values_are_usage_errors() {
    let src = write_tmp("x.json", b"{}");
    for flags in [
        ["--timeout", "soon"],
        ["--max-tuples", "-3"],
        ["--max-memory", "lots"],
    ] {
        let out = dexcli()
            .arg("chase")
            .arg(repo_file("examples/mappings/employees.dex"))
            .arg(&src)
            .args(flags)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "flags {flags:?}");
    }
}

// ---------------------------------------------------------------------
// The exit-code contract, end to end
// ---------------------------------------------------------------------

/// Every documented exit code, produced by a real invocation:
/// 0 success, 1 usage error, 2 lint deny, 3 budget-exhausted partial,
/// 70 internal panic.
#[test]
fn exit_code_contract_covers_all_documented_codes() {
    let src = write_tmp("ec-src.json", br#"{"Emp": [["Alice", "Bob"]]}"#);

    // 0 — a terminating chase.
    let ok = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/employees.dex"))
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(ok.status.code(), Some(0), "success exits 0");

    // 1 — a usage error (unknown flag).
    let usage = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/employees.dex"))
        .arg(&src)
        .arg("--definitely-not-a-flag")
        .output()
        .unwrap();
    assert_eq!(usage.status.code(), Some(1), "usage errors exit 1");

    // 2 — lint diagnostics deny the mapping.
    let lint = dexcli()
        .arg("lint")
        .arg(repo_file("examples/mappings/bad_clash.dex"))
        .output()
        .unwrap();
    assert_eq!(lint.status.code(), Some(2), "lint deny exits 2");

    // 3 — budget exhaustion with a valid partial result.
    let exhausted = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/bad_non_terminating.dex"))
        .arg(&src)
        .args(["--max-rounds", "3"])
        .output()
        .unwrap();
    assert_eq!(exhausted.status.code(), Some(3), "exhaustion exits 3");

    // 70 — an internal panic (forced through the test hook so the
    // panic→exit-code path itself is what's under test).
    let panicked = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/employees.dex"))
        .arg(&src)
        .env("DEXCLI_TEST_PANIC", "1")
        .output()
        .unwrap();
    assert_eq!(panicked.status.code(), Some(70), "panics exit 70");
}

/// `--stats --format json` emits one machine-readable JSON object on
/// stderr with the documented shape, for both outcomes.
#[test]
fn stats_json_has_the_documented_shape() {
    let src = write_tmp("sj-src.json", br#"{"Emp": [["Alice", "Bob"]]}"#);

    // Complete run: stats present, exhausted is null.
    let ok = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/employees.dex"))
        .arg(&src)
        .args(["--stats", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(ok.status.code(), Some(0));
    let j: serde_json::Value =
        serde_json::from_str(String::from_utf8(ok.stderr).unwrap().trim()).unwrap();
    assert!(j.get("stats").and_then(|s| s.get("rounds")).is_some());
    assert!(matches!(j.get("exhausted"), Some(serde_json::Value::Null)));

    // Exhausted run: the report rides along.
    let ex = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/bad_non_terminating.dex"))
        .arg(&src)
        .args(["--max-rounds", "2", "--stats", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(ex.status.code(), Some(3));
    let j: serde_json::Value =
        serde_json::from_str(String::from_utf8(ex.stderr).unwrap().trim()).unwrap();
    let reason = j
        .get("exhausted")
        .and_then(|e| e.get("reason"))
        .and_then(|r| r.as_str())
        .unwrap();
    assert_eq!(reason, "rounds");
    assert!(j.get("stats").and_then(|s| s.get("rounds")).is_some());

    // --format json without --stats is a usage error.
    let bad = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/employees.dex"))
        .arg(&src)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
}

// ---------------------------------------------------------------------
// Persistence: --store / resume / fsck through the binary
// ---------------------------------------------------------------------

/// Fresh store directory (unique per call).
fn tmp_store(stem: &str) -> std::path::PathBuf {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("dexcli-robustness")
        .join(format!("{stem}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An interrupted store-backed chase, resumed via `dexcli resume`,
/// must print the exact instance of the uninterrupted run — same
/// tuples, same labeled-null numbering.
#[test]
fn resume_after_round_cap_matches_uninterrupted_run() {
    let src = write_tmp("rs-src.json", br#"{"Emp": [["a", "b"]]}"#);
    let mapping = repo_file("examples/mappings/bad_non_terminating.dex");

    let whole = dexcli()
        .arg("chase")
        .arg(&mapping)
        .arg(&src)
        .args(["--max-rounds", "6"])
        .output()
        .unwrap();
    assert_eq!(whole.status.code(), Some(3));

    let store = tmp_store("resume");
    let cut = dexcli()
        .arg("chase")
        .arg(&mapping)
        .arg(&src)
        .args(["--max-rounds", "3", "--no-sync", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        cut.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&cut.stderr)
    );

    let resumed = dexcli()
        .arg("resume")
        .arg(&store)
        .args(["--max-rounds", "6"])
        .output()
        .unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, whole.stdout,
        "resumed instance ≡ uninterrupted instance"
    );
    let err = String::from_utf8(resumed.stderr).unwrap();
    assert!(err.contains("recovered round"), "stderr: {err}");
    let _ = std::fs::remove_dir_all(&store);
}

/// `dexcli fsck` is clean on a healthy store (exit 0), reports a
/// hand-torn WAL (exit 1), and `--repair` truncates the tear so the
/// next fsck passes.
#[test]
fn fsck_detects_and_repairs_a_torn_wal() {
    let src = write_tmp("fk-src.json", br#"{"Emp": [["a", "b"]]}"#);
    let store = tmp_store("fsck");
    let run = dexcli()
        .arg("chase")
        .arg(repo_file("examples/mappings/bad_non_terminating.dex"))
        .arg(&src)
        .args(["--max-rounds", "3", "--no-sync", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(run.status.code(), Some(3));

    let clean = dexcli().arg("fsck").arg(&store).output().unwrap();
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Tear the WAL mid-record, as a crashed append would.
    let wal = store.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 40, "fixture WAL holds records");
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    let torn = dexcli().arg("fsck").arg(&store).output().unwrap();
    assert_eq!(torn.status.code(), Some(1), "torn store fails fsck");
    let report = String::from_utf8(torn.stdout).unwrap();
    assert!(report.to_lowercase().contains("torn"), "report: {report}");

    let repaired = dexcli()
        .arg("fsck")
        .arg(&store)
        .arg("--repair")
        .output()
        .unwrap();
    assert_eq!(
        repaired.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&repaired.stderr)
    );
    let again = dexcli().arg("fsck").arg(&store).output().unwrap();
    assert_eq!(again.status.code(), Some(0), "repaired store passes fsck");

    // The repaired store still resumes.
    let resumed = dexcli()
        .arg("resume")
        .arg(&store)
        .args(["--max-rounds", "5"])
        .output()
        .unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let _ = std::fs::remove_dir_all(&store);
}

// ---------------------------------------------------------------------
// Fuzz: lint and parse never panic the process
// ---------------------------------------------------------------------

/// Run `dexcli lint` on `bytes`; the process must terminate normally
/// (no signal) and never with the internal-panic code 70. Exit 0
/// (clean), 1 (usage/IO error), and 2 (parse or lint diagnostics)
/// are all fine.
fn assert_lint_does_not_panic(bytes: &[u8]) {
    let path = write_tmp("fuzz.dex", bytes);
    let out = dexcli().arg("lint").arg(&path).output().unwrap();
    let code = out.status.code();
    assert!(
        matches!(code, Some(0..=2)),
        "lint on {bytes:?} exited with {code:?}; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

const SEED_MAPPING: &str = "\
source Takes(name, course);\n\
target Student(id, name);\n\
key Student(id);\n\
Takes(x, y) -> Student(z, x);\n";

proptest! {
    // Each case spawns a process; keep the count modest for CI.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary printable garbage.
    #[test]
    fn lint_survives_garbage(s in "\\PC{0,120}") {
        assert_lint_does_not_panic(s.as_bytes());
    }

    /// Near-miss `.dex`: one corruption of a valid mapping file.
    #[test]
    fn lint_survives_near_miss_dex(pos in 0usize..120, op in 0u8..4, ch in "\\PC") {
        let base = SEED_MAPPING;
        let mut at = pos.min(base.len());
        while !base.is_char_boundary(at) {
            at -= 1;
        }
        let (head, tail) = base.split_at(at);
        let mutated = match op {
            0 => format!("{head}{}", tail.chars().skip(1).collect::<String>()),
            1 => format!("{head}{ch}{tail}"),
            2 => format!("{head}{ch}{}", tail.chars().skip(1).collect::<String>()),
            _ => head.to_string(),
        };
        assert_lint_does_not_panic(mutated.as_bytes());
    }

    /// Raw non-UTF-8 bytes (the file reader must reject, not panic).
    #[test]
    fn lint_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        assert_lint_does_not_panic(&bytes);
    }
}
