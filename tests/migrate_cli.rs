//! End-to-end tests for `dexcli migrate`: the crash-safe live schema
//! migration front end. These exercise the full pipeline — catalog
//! diff, SMO compilation, cost admission, staged chase, commit,
//! roll-forward — through the binary, pinning the exit-code contract
//! (0 committed, 1 usage, 2 refused-before-touching-data, 3 resumable
//! budget trip).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

fn dexcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
}

static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory unique to this call.
fn scratch(stem: &str) -> PathBuf {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("dexcli-migrate-{stem}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_file(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const OLD_MAPPING: &str = "source Emp(name, dept);\n\
                           target Staff(name, dept);\n\
                           Emp(n, d) -> Staff(n, d);\n";
const SOURCE_JSON: &str = r#"{"Emp": [["alice", "sales"], ["bob", "eng"]]}"#;

/// Build a completed, persisted exchange store under `dir`/store.
fn build_store(dir: &Path) -> PathBuf {
    let mapping = write_file(dir, "old.dex", OLD_MAPPING);
    let source = write_file(dir, "source.json", SOURCE_JSON);
    let store = dir.join("store");
    let out = dexcli()
        .arg("exchange")
        .arg(&mapping)
        .arg(&source)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "store build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    store
}

#[test]
fn migrate_end_to_end_add_column_and_table() {
    let dir = scratch("e2e");
    let store = build_store(&dir);
    let schema = write_file(
        &dir,
        "new.dex",
        "target Staff(name, dept, office);\ntarget Audit(name);\n",
    );

    // Dry run: prints the diff, the compiled mapping, and the
    // predicted bounds — and writes nothing.
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .arg("--dry-run")
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stdout.contains("ADD COLUMN Staff.office"), "{stdout}");
    assert!(stdout.contains("CREATE TABLE Audit"), "{stdout}");
    assert!(stdout.contains("migration mapping:"), "{stdout}");
    assert!(stdout.contains("predicted cost bounds"), "{stdout}");
    assert!(stderr.contains("nothing written"), "{stderr}");
    assert!(
        !store.join("migrate").exists(),
        "--dry-run must not create staging"
    );

    // The real thing.
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("migration committed"), "{stderr}");
    assert!(
        !store.join("migrate").exists(),
        "staging must be gone after commit"
    );

    // The store is clean and serves the migrated instance: old tuples
    // widened with a labeled null for the new column.
    let out = dexcli().arg("fsck").arg(&store).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout).unwrap().contains("clean"));

    let out = dexcli().arg("resume").arg(&store).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("alice"), "{stdout}");
    assert!(stdout.contains("sales"), "{stdout}");
    assert!(stdout.contains("null"), "{stdout}");

    // Migrating to the schema the store already has is a no-op diff
    // and commits trivially.
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn migrate_refuses_rules_in_schema_file() {
    let dir = scratch("rules");
    let store = build_store(&dir);
    let schema = write_file(
        &dir,
        "new.dex",
        "source Emp(name);\ntarget Staff(name);\nEmp(n) -> Staff(n);\n",
    );
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("contains rules"), "{stderr}");
    assert!(!store.join("migrate").exists());
}

#[test]
fn migrate_refuses_ambiguous_diff_with_exit_2() {
    let dir = scratch("ambig");
    let store = build_store(&dir);
    // Staff could be a rename of either same-shape table: refused,
    // nothing staged.
    let schema = write_file(
        &dir,
        "new.dex",
        "target A(name, dept);\ntarget B(name, dept);\n",
    );
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot migrate"), "{stderr}");
    assert!(!store.join("migrate").exists());
}

#[test]
fn migrate_deny_cost_refuses_with_exit_2() {
    let dir = scratch("deny");
    let store = build_store(&dir);
    let schema = write_file(&dir, "new.dex", "target Staff(name, dept, office);\n");
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .args(["--deny-cost", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("DEX502"), "{stderr}");
    assert!(!store.join("migrate").exists());
}

#[test]
fn migrate_resume_with_nothing_staged_is_a_usage_error() {
    let dir = scratch("noresume");
    let store = build_store(&dir);
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nothing to resume"), "{stderr}");
}

#[test]
fn migrate_refuses_unfinished_store() {
    let dir = scratch("unfinished");
    // A store whose chase tripped its budget: migrating it would drop
    // the un-derived remainder, so migrate refuses with exit 2.
    let mapping = write_file(
        &dir,
        "nt.dex",
        "source Emp(a, b);\ntarget Succ(x, y);\n\
         Emp(a, b) -> Succ(a, b);\nSucc(x, y) -> Succ(y, z);\n",
    );
    let source = write_file(&dir, "source.json", r#"{"Emp": [["a", "b"]]}"#);
    let store = dir.join("store");
    let out = dexcli()
        .arg("chase")
        .arg(&mapping)
        .arg(&source)
        .args(["--max-rounds", "2"])
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let schema = write_file(&dir, "new.dex", "target Succ(x, y, w);\n");
    let out = dexcli()
        .arg("migrate")
        .arg(&store)
        .arg(&schema)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unfinished run"), "{stderr}");
    assert!(!store.join("migrate").exists());
}

#[test]
fn migrate_missing_args_is_usage_error() {
    let out = dexcli().arg("migrate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let dir = scratch("usage");
    let store = build_store(&dir);
    let out = dexcli().arg("migrate").arg(&store).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "schema arg required without --resume"
    );
}

/// Recursively copy a directory tree (the committed fixture must stay
/// torn, so every assertion runs against a scratch copy).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// The committed torn-migration fixture: a migration that crashed
/// after the COMMIT marker became durable but before the staged files
/// were renamed into place (see crates/store/examples/
/// gen_torn_migrate.rs). fsck must flag it, and either `fsck --repair`
/// or `migrate --resume` must finish the idempotent roll-forward.
#[test]
fn torn_migrate_fixture_is_flagged_and_rolls_forward() {
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/store_fixtures/torn_migrate");
    let dir = scratch("torn-fixture");

    // Path 1: fsck flags the torn window, --repair rolls forward.
    let repair = dir.join("repair");
    copy_dir(&fixture, &repair);
    let out = dexcli().arg("fsck").arg(&repair).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "committed migration fails fsck");
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(
        report.contains("committed migration awaits roll-forward"),
        "{report}"
    );
    let out = dexcli()
        .arg("fsck")
        .arg(&repair)
        .arg("--repair")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = dexcli().arg("fsck").arg(&repair).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "repaired store passes fsck");

    // Path 2: `migrate --resume` does the same roll-forward, and the
    // store then serves the migrated schema.
    let resume = dir.join("resume");
    copy_dir(&fixture, &resume);
    let out = dexcli()
        .arg("migrate")
        .arg(&resume)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!resume.join("migrate").exists(), "staging cleared");
    let out = dexcli().arg("resume").arg(&resume).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["ada", "bob", "none"] {
        assert!(stdout.contains(needle), "{stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
