//! E1 — paper §2 Example 1: the Emp → Manager exchange.
//!
//! Verifies every claim the paper makes about the example: J1 and J2
//! are solutions, J* (labeled nulls) is a solution, J* is *preferred*
//! because it is most general (maps homomorphically into every
//! solution), and the chase materializes exactly such a J*.

use dex::chase::{exchange, exchange_with, ChaseOptions, ChaseVariant};
use dex::logic::parse_mapping;
use dex::relational::homomorphism::{homomorphically_equivalent, is_homomorphic_to};
use dex::relational::{tuple, Instance, Tuple, Value};

fn mapping() -> dex::logic::Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap()
}

fn source() -> Instance {
    Instance::with_facts(
        mapping().source().clone(),
        vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
    )
    .unwrap()
}

fn j1() -> Instance {
    Instance::with_facts(
        mapping().target().clone(),
        vec![(
            "Manager",
            vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
        )],
    )
    .unwrap()
}

fn j2() -> Instance {
    Instance::with_facts(
        mapping().target().clone(),
        vec![(
            "Manager",
            vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]],
        )],
    )
    .unwrap()
}

fn j_star() -> Instance {
    Instance::with_facts(
        mapping().target().clone(),
        vec![(
            "Manager",
            vec![
                Tuple::new(vec![Value::str("Alice"), Value::null(1)]),
                Tuple::new(vec![Value::str("Bob"), Value::null(2)]),
            ],
        )],
    )
    .unwrap()
}

#[test]
fn paper_solutions_are_solutions() {
    let m = mapping();
    let i = source();
    assert!(m.is_solution(&i, &j1()));
    assert!(m.is_solution(&i, &j2()));
    assert!(m.is_solution(&i, &j_star()));
}

#[test]
fn non_solutions_rejected() {
    let m = mapping();
    let i = source();
    // Bob has no manager.
    let partial = Instance::with_facts(
        m.target().clone(),
        vec![("Manager", vec![tuple!["Alice", "Ted"]])],
    )
    .unwrap();
    assert!(!m.is_solution(&i, &partial));
    assert!(!m.is_solution(&i, &Instance::empty(m.target().clone())));
}

#[test]
fn j_star_is_most_general() {
    // “J* is considered as the preferred solution for the exchange as
    // it is the most general among all the possible solutions.”
    assert!(is_homomorphic_to(&j_star(), &j1()));
    assert!(is_homomorphic_to(&j_star(), &j2()));
    // The ground solutions do not map back (constants are rigid).
    assert!(!is_homomorphic_to(&j1(), &j_star()));
    assert!(!is_homomorphic_to(&j2(), &j_star()));
    // And they are mutually incomparable.
    assert!(!is_homomorphic_to(&j1(), &j2()));
    assert!(!is_homomorphic_to(&j2(), &j1()));
}

#[test]
fn chase_materializes_j_star_up_to_renaming() {
    let res = exchange(&mapping(), &source()).unwrap();
    assert_eq!(res.target.fact_count(), 2);
    assert_eq!(res.nulls_created, 2);
    assert!(homomorphically_equivalent(&res.target, &j_star()));
    // Distinct employees get distinct nulls (no accidental sharing).
    let rel = res.target.relation("Manager").unwrap();
    let mgrs: Vec<Value> = rel.iter().map(|t| t[1].clone()).collect();
    assert_ne!(mgrs[0], mgrs[1]);
}

#[test]
fn standard_and_oblivious_chase_agree_semantically() {
    let std = exchange_with(&mapping(), &source(), ChaseOptions::default()).unwrap();
    let obl = exchange_with(
        &mapping(),
        &source(),
        ChaseOptions {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(homomorphically_equivalent(&std.target, &obl.target));
}

#[test]
fn exchange_scales_linearly_in_facts() {
    // Not a benchmark — a correctness check at a non-toy size.
    let m = mapping();
    let names: Vec<String> = (0..500).map(|i| format!("emp{i}")).collect();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("Emp", names.iter().map(|n| tuple![n.as_str()]).collect())],
    )
    .unwrap();
    let res = exchange(&m, &src).unwrap();
    assert_eq!(res.target.fact_count(), 500);
    assert_eq!(res.nulls_created, 500);
    assert!(m.is_solution(&src, &res.target));
}
