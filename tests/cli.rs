//! End-to-end tests of the `dexcli` binary.

use std::io::Write;
use std::process::Command;

fn dexcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dexcli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn emp_mapping_file() -> std::path::PathBuf {
    write_tmp(
        "emp.dex",
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
}

#[test]
fn help_prints_usage() {
    let out = dexcli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("exchange"));
    assert!(text.contains("mapping files"));
}

#[test]
fn unknown_command_fails() {
    let out = dexcli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn plan_shows_holes() {
    let m = emp_mapping_file();
    let out = dexcli().arg("plan").arg(&m).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("== mapping plan =="), "{text}");
    assert!(text.contains("Manager.mgr"), "{text}");
}

#[test]
fn chase_and_exchange_agree_on_shape() {
    let m = emp_mapping_file();
    let src = write_tmp("src.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    for cmd in ["chase", "exchange"] {
        let out = dexcli().arg(cmd).arg(&m).arg(&src).output().unwrap();
        assert!(out.status.success(), "{cmd} failed");
        let text = String::from_utf8(out.stdout).unwrap();
        let json: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rows = json["Manager"].as_array().unwrap();
        assert_eq!(rows.len(), 2, "{cmd}: {text}");
        for row in rows {
            assert!(row[1].get("null").is_some(), "{cmd}: manager is a null");
        }
    }
}

#[test]
fn backward_propagates_edit() {
    let m = emp_mapping_file();
    let src = write_tmp("src2.json", r#"{"Emp": [["Alice"]]}"#);
    let tgt = write_tmp(
        "tgt2.json",
        r#"{"Manager": [["Alice", {"null": 0}], ["Carol", "Ted"]]}"#,
    );
    let out = dexcli()
        .arg("backward")
        .arg(&m)
        .arg(&tgt)
        .arg(&src)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let json: serde_json::Value = serde_json::from_str(&text).unwrap();
    let names: Vec<&str> = json["Emp"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect();
    assert_eq!(names, ["Alice", "Carol"]);
}

#[test]
fn compose_prints_second_order_result() {
    let m1 = emp_mapping_file();
    let m2 = write_tmp(
        "m2.dex",
        r#"
        source Manager(emp, mgr);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Manager(x, y) -> Boss(x, y);
        Manager(x, x) -> SelfMngr(x);
        "#,
    );
    let out = dexcli().arg("compose").arg(&m1).arg(&m2).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("∃f"), "{text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("second-order"), "{err}");
}

#[test]
fn recover_prints_disjunction() {
    let m = write_tmp(
        "parents.dex",
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    );
    let out = dexcli().arg("recover").arg(&m).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Father(v0, v1) ∨ Mother(v0, v1)"), "{text}");
}

#[test]
fn query_certain_answers() {
    let m = emp_mapping_file();
    let src = write_tmp("srcq.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    let out = dexcli()
        .arg("query")
        .arg(&m)
        .arg(&src)
        .arg("q(e) :- Manager(e, m)")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let names: Vec<&str> = json
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect();
    assert_eq!(names, ["Alice", "Bob"]);
    // Managers are nulls: no certain (e, m) pairs.
    let out2 = dexcli()
        .arg("query")
        .arg(&m)
        .arg(&src)
        .arg("q(e, m) :- Manager(e, m)")
        .output()
        .unwrap();
    assert!(out2.status.success());
    let json2: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out2.stdout).unwrap()).unwrap();
    assert!(json2.as_array().unwrap().is_empty());
}

#[test]
fn deny_cost_refuses_expensive_and_non_terminating_runs() {
    // A mapping under threshold runs; over threshold is refused with
    // exit 2 (like lint) before any chase work happens.
    let m = emp_mapping_file();
    let src = write_tmp("cost_src.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    for cmd in ["chase", "exchange"] {
        let ok = dexcli()
            .args([cmd, m.to_str().unwrap(), src.to_str().unwrap()])
            .args(["--deny-cost", "100"])
            .output()
            .unwrap();
        assert_eq!(ok.status.code(), Some(0), "{cmd} under threshold");
        let refused = dexcli()
            .args([cmd, m.to_str().unwrap(), src.to_str().unwrap()])
            .args(["--deny-cost", "1"])
            .output()
            .unwrap();
        assert_eq!(refused.status.code(), Some(2), "{cmd} over threshold");
        let err = String::from_utf8(refused.stderr).unwrap();
        assert!(err.contains("DEX502"), "{cmd}: {err}");
        assert!(
            String::from_utf8(refused.stdout).unwrap().is_empty(),
            "{cmd}: refusal must not print a partial instance"
        );
    }
    // Non-jointly-acyclic mappings predict unbounded cost and are
    // refused at *any* threshold.
    let bad = write_tmp(
        "cost_bad.dex",
        "source Emp(name, mgr);\ntarget Succ(emp, mgr);\n\
         Emp(x, y) -> Succ(x, y);\nSucc(x, y) -> Succ(y, z);",
    );
    let bad_src = write_tmp("cost_bad_src.json", r#"{"Emp": [["a", "b"]]}"#);
    let out = dexcli()
        .args(["chase", bad.to_str().unwrap(), bad_src.to_str().unwrap()])
        .args(["--deny-cost", &u64::MAX.to_string()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unbounded"), "{err}");
}

#[test]
fn auto_budget_synthesized_caps_never_trip() {
    // --auto-budget turns the predicted bounds into governor caps; on
    // an admitted (weakly acyclic) mapping they must never trip, so the
    // output matches the unbudgeted run exactly.
    let m = emp_mapping_file();
    let src = write_tmp("auto_src.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    for cmd in ["chase", "exchange"] {
        let plain = dexcli()
            .args([cmd, m.to_str().unwrap(), src.to_str().unwrap()])
            .output()
            .unwrap();
        let auto = dexcli()
            .args([cmd, m.to_str().unwrap(), src.to_str().unwrap()])
            .arg("--auto-budget")
            .output()
            .unwrap();
        assert_eq!(auto.status.code(), Some(0), "{cmd} with --auto-budget");
        assert_eq!(plain.stdout, auto.stdout, "{cmd}: budget changed output");
    }
    // Explicit caps still take precedence over synthesized ones: a
    // 0-null cap trips on this null-inventing mapping even with
    // --auto-budget supplying a laxer one.
    let out = dexcli()
        .args(["chase", m.to_str().unwrap(), src.to_str().unwrap()])
        .args(["--auto-budget", "--max-nulls", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "explicit cap must win");
}

#[test]
fn exchange_stats_json_reports_predicted_bounds() {
    let m = emp_mapping_file();
    let src = write_tmp("pred_src.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    for cmd in ["chase", "exchange"] {
        let out = dexcli()
            .args([cmd, m.to_str().unwrap(), src.to_str().unwrap()])
            .args(["--stats", "--format", "json"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{cmd}");
        let stats: serde_json::Value =
            serde_json::from_str(String::from_utf8(out.stderr).unwrap().trim()).unwrap();
        let p = &stats["predicted"];
        // Two source tuples, one null-inventing st-tgd: 2 nulls and 2
        // tuples exactly; the firing bound also covers potential egd
        // merges, so it is ≥ the 2 real firings.
        assert_eq!(p["nulls"].as_u64(), Some(2), "{cmd}: {stats}");
        assert_eq!(p["tuples"].as_u64(), Some(2), "{cmd}: {stats}");
        assert!(p["firings"].as_u64() >= Some(2), "{cmd}: {stats}");
        assert!(p["bytes"].as_u64().is_some(), "{cmd}: {stats}");
    }
}

#[test]
fn bad_instance_reports_error() {
    let m = emp_mapping_file();
    let bad = write_tmp("bad.json", r#"{"Nope": [["x"]]}"#);
    let out = dexcli().arg("chase").arg(&m).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown relation"), "{err}");
}
