//! End-to-end tests of the `dexcli` binary.

use std::io::Write;
use std::process::Command;

fn dexcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dexcli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn emp_mapping_file() -> std::path::PathBuf {
    write_tmp(
        "emp.dex",
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
}

#[test]
fn help_prints_usage() {
    let out = dexcli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("exchange"));
    assert!(text.contains("mapping files"));
}

#[test]
fn unknown_command_fails() {
    let out = dexcli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn plan_shows_holes() {
    let m = emp_mapping_file();
    let out = dexcli().arg("plan").arg(&m).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("== mapping plan =="), "{text}");
    assert!(text.contains("Manager.mgr"), "{text}");
}

#[test]
fn chase_and_exchange_agree_on_shape() {
    let m = emp_mapping_file();
    let src = write_tmp("src.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    for cmd in ["chase", "exchange"] {
        let out = dexcli().arg(cmd).arg(&m).arg(&src).output().unwrap();
        assert!(out.status.success(), "{cmd} failed");
        let text = String::from_utf8(out.stdout).unwrap();
        let json: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rows = json["Manager"].as_array().unwrap();
        assert_eq!(rows.len(), 2, "{cmd}: {text}");
        for row in rows {
            assert!(row[1].get("null").is_some(), "{cmd}: manager is a null");
        }
    }
}

#[test]
fn backward_propagates_edit() {
    let m = emp_mapping_file();
    let src = write_tmp("src2.json", r#"{"Emp": [["Alice"]]}"#);
    let tgt = write_tmp(
        "tgt2.json",
        r#"{"Manager": [["Alice", {"null": 0}], ["Carol", "Ted"]]}"#,
    );
    let out = dexcli()
        .arg("backward")
        .arg(&m)
        .arg(&tgt)
        .arg(&src)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let json: serde_json::Value = serde_json::from_str(&text).unwrap();
    let names: Vec<&str> = json["Emp"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect();
    assert_eq!(names, ["Alice", "Carol"]);
}

#[test]
fn compose_prints_second_order_result() {
    let m1 = emp_mapping_file();
    let m2 = write_tmp(
        "m2.dex",
        r#"
        source Manager(emp, mgr);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Manager(x, y) -> Boss(x, y);
        Manager(x, x) -> SelfMngr(x);
        "#,
    );
    let out = dexcli().arg("compose").arg(&m1).arg(&m2).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("∃f"), "{text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("second-order"), "{err}");
}

#[test]
fn recover_prints_disjunction() {
    let m = write_tmp(
        "parents.dex",
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    );
    let out = dexcli().arg("recover").arg(&m).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Father(v0, v1) ∨ Mother(v0, v1)"), "{text}");
}

#[test]
fn query_certain_answers() {
    let m = emp_mapping_file();
    let src = write_tmp("srcq.json", r#"{"Emp": [["Alice"], ["Bob"]]}"#);
    let out = dexcli()
        .arg("query")
        .arg(&m)
        .arg(&src)
        .arg("q(e) :- Manager(e, m)")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let names: Vec<&str> = json
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect();
    assert_eq!(names, ["Alice", "Bob"]);
    // Managers are nulls: no certain (e, m) pairs.
    let out2 = dexcli()
        .arg("query")
        .arg(&m)
        .arg(&src)
        .arg("q(e, m) :- Manager(e, m)")
        .output()
        .unwrap();
    assert!(out2.status.success());
    let json2: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out2.stdout).unwrap()).unwrap();
    assert!(json2.as_array().unwrap().is_empty());
}

#[test]
fn bad_instance_reports_error() {
    let m = emp_mapping_file();
    let bad = write_tmp("bad.json", r#"{"Nope": [["x"]]}"#);
    let out = dexcli().arg("chase").arg(&m).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown relation"), "{err}");
}
