//! Golden-file tests pinning the machine-readable CLI surfaces:
//! `dexcli lint --format json` and `dexcli explain --format json`
//! over the whole fixture corpus, byte for byte.
//!
//! The JSON schemas are an API — downstream tooling parses them — so
//! any change must show up in review as a golden diff. Regenerate
//! deliberately with `BLESS=1 cargo test --test golden_cli`.
//!
//! Commands run with the workspace root as the working directory and
//! relative fixture paths, so goldens carry no machine-specific paths.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Every fixture, with the exit code each subcommand must produce.
/// Lint fails (exit 2) on fixtures with errors; explain only fails
/// when the file does not parse at all.
const FIXTURES: &[(&str, i32, i32)] = &[
    // (name, lint exit, explain exit)
    ("approx_ids", 0, 0),
    ("bad_clash", 2, 0),
    ("bad_non_terminating", 2, 0),
    ("bad_redundant", 0, 0),
    ("bad_syntax", 2, 2),
    ("bad_uncompilable", 0, 0),
    ("bad_unused", 0, 0),
    ("employees", 0, 0),
    ("eq_a", 0, 0),
    ("eq_b", 0, 0),
    ("eq_c", 0, 0),
    ("evolution", 0, 0),
    ("ja_terminating", 0, 0),
    ("redundant_premise", 0, 0),
    ("redundant_subsumed", 0, 0),
    ("university", 0, 0),
];

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run(subcommand: &str, fixture: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
        .current_dir(root())
        .arg(subcommand)
        .arg("--format")
        .arg("json")
        .arg(format!("examples/mappings/{fixture}.dex"))
        .output()
        .unwrap()
}

/// Compare stdout to the golden file, or rewrite the golden when the
/// `BLESS` environment variable is set.
fn check_golden(subcommand: &str, fixture: &str, expect_exit: i32) {
    let out = run(subcommand, fixture);
    assert_eq!(
        out.status.code(),
        Some(expect_exit),
        "{subcommand} {fixture}: unexpected exit\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let got = String::from_utf8(out.stdout).unwrap();
    let path = root().join(format!("tests/goldens/{subcommand}/{fixture}.json"));
    if std::env::var_os("BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `BLESS=1 cargo test --test golden_cli`",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "{subcommand} {fixture}: output drifted from {}; if intentional, \
         re-bless with `BLESS=1 cargo test --test golden_cli` and review the diff",
        path.display()
    );
}

#[test]
fn lint_json_matches_goldens() {
    for (fixture, lint_exit, _) in FIXTURES {
        check_golden("lint", fixture, *lint_exit);
    }
}

#[test]
fn explain_json_matches_goldens() {
    for (fixture, _, explain_exit) in FIXTURES {
        check_golden("explain", fixture, *explain_exit);
    }
}

/// `exchange --stats --format json` carries the statically predicted
/// chase bounds next to the measured counters. The actuals include
/// wall-clock timings, so only the `predicted` sub-object — a pure
/// function of mapping and source — is golden-pinned.
#[test]
fn exchange_predicted_bounds_match_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_dexcli"))
        .current_dir(root())
        .args([
            "exchange",
            "examples/mappings/employees.dex",
            "examples/instances/employees_small.json",
            "--stats",
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats: serde_json::Value =
        serde_json::from_str(String::from_utf8(out.stderr).unwrap().trim()).unwrap();
    let predicted = &stats["predicted"];
    assert!(
        predicted.as_object().is_some(),
        "missing predicted bounds: {stats}"
    );
    let got = format!("{}\n", serde_json::to_string_pretty(predicted).unwrap());
    let path = root().join("tests/goldens/exchange/employees_predicted.json");
    if std::env::var_os("BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `BLESS=1 cargo test --test golden_cli`",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "predicted bounds drifted; if intentional, re-bless with \
         `BLESS=1 cargo test --test golden_cli` and review the diff"
    );
}

/// Output is byte-identical across runs — diagnostics are sorted by
/// (file, span, code) and the JSON maps are BTreeMap-backed, so there
/// is no iteration-order or hash-seed dependence to leak through.
#[test]
fn json_output_is_deterministic() {
    for (fixture, _, _) in FIXTURES {
        for subcommand in ["lint", "explain"] {
            let a = run(subcommand, fixture);
            let b = run(subcommand, fixture);
            assert_eq!(
                a.stdout, b.stdout,
                "{subcommand} {fixture}: two runs disagreed"
            );
        }
    }
}
