//! E10 — paper §2 (the “preferred solution”): core computation.
//! J* is its own core; redundancy-producing mappings get minimized;
//! cores stay homomorphically equivalent to their inputs.

use dex::chase::{core_of, exchange, exchange_with, ChaseOptions, ChaseVariant};
use dex::logic::parse_mapping;
use dex::relational::homomorphism::homomorphically_equivalent;
use dex::relational::{tuple, Instance, Tuple, Value};
use proptest::prelude::*;

#[test]
fn example1_chase_result_is_core() {
    let m = parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
    )
    .unwrap();
    let j = exchange(&m, &src).unwrap().target;
    assert_eq!(core_of(&j), j);
}

#[test]
fn oblivious_redundancy_folds_away() {
    // Two tgds produce the same shape of fact; the oblivious chase
    // fires both, the core removes the duplicate block.
    let m = parse_mapping(
        r#"
        source E1(name);
        source E2(name);
        target T(name, info);
        E1(x) -> T(x, y);
        E2(x) -> T(x, y);
        "#,
    )
    .unwrap();
    let mut src = Instance::empty(m.source().clone());
    src.insert("E1", tuple!["a"]).unwrap();
    src.insert("E2", tuple!["a"]).unwrap();
    let obl = exchange_with(
        &m,
        &src,
        ChaseOptions {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(obl.target.fact_count(), 2, "oblivious chase is redundant");
    let c = core_of(&obl.target);
    assert_eq!(c.fact_count(), 1, "core folds the duplicate null block");
    assert!(homomorphically_equivalent(&c, &obl.target));
}

#[test]
fn ground_facts_dominate_null_facts() {
    // A mapping that produces both a ground fact and a null-padded
    // version of it.
    let m = parse_mapping(
        r#"
        source Pair(a, b);
        source Single(a);
        target Out(a, b);
        Pair(x, y) -> Out(x, y);
        Single(x) -> Out(x, y);
        "#,
    )
    .unwrap();
    let mut src = Instance::empty(m.source().clone());
    src.insert("Pair", tuple!["k", "v"]).unwrap();
    src.insert("Single", tuple!["k"]).unwrap();
    let obl = exchange_with(
        &m,
        &src,
        ChaseOptions {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(obl.target.fact_count(), 2);
    let c = core_of(&obl.target);
    assert_eq!(c.fact_count(), 1);
    assert!(c.contains("Out", &tuple!["k", "v"]));
}

#[test]
fn core_of_chains_preserves_reachability_structure() {
    // Chain facts over nulls that cannot fold (each null carries
    // distinct constants around it).
    let m = parse_mapping(
        r#"
        source E(a, b);
        target P(a, mid);
        target Q(mid, b);
        E(x, y) -> P(x, z) & Q(z, y);
        "#,
    )
    .unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("E", vec![tuple!["s", "t"], tuple!["u", "v"]])],
    )
    .unwrap();
    let j = exchange(&m, &src).unwrap().target;
    assert_eq!(j.fact_count(), 4);
    let c = core_of(&j);
    assert_eq!(c.fact_count(), 4, "nothing folds: constants differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core is idempotent and homomorphically equivalent to the input,
    /// over randomized instances mixing constants and nulls.
    #[test]
    fn core_idempotent_and_equivalent(
        rows in proptest::collection::btree_set((0u8..4, 0u8..6), 1..8)
    ) {
        let schema = dex::relational::Schema::with_relations(vec![
            dex::relational::RelSchema::untyped("R", vec!["a", "b"]).unwrap()
        ]).unwrap();
        let mut inst = Instance::empty(schema);
        for (a, b) in rows {
            // Even b: constant; odd b: null id b.
            let bval = if b % 2 == 0 {
                Value::str(format!("c{b}"))
            } else {
                Value::null(b as u64)
            };
            inst.insert("R", Tuple::new(vec![Value::str(format!("k{a}")), bval])).unwrap();
        }
        let c = core_of(&inst);
        prop_assert!(homomorphically_equivalent(&c, &inst));
        prop_assert_eq!(core_of(&c), c.clone(), "idempotent");
        prop_assert!(c.fact_count() <= inst.fact_count());
    }
}

#[test]
fn null_density_controls_folding() {
    // The E10 bench's shape in miniature: hub facts with k null spokes
    // plus one ground spoke fold to a single fact; with no ground spoke
    // they fold to one null spoke.
    let schema =
        dex::relational::Schema::with_relations(vec![dex::relational::RelSchema::untyped(
            "R",
            vec!["a", "b"],
        )
        .unwrap()])
        .unwrap();
    for k in [1u64, 3, 6] {
        let mut with_ground = Instance::empty(schema.clone());
        let mut nulls_only = Instance::empty(schema.clone());
        for i in 0..k {
            let t = Tuple::new(vec![Value::str("hub"), Value::null(i)]);
            with_ground.insert("R", t.clone()).unwrap();
            nulls_only.insert("R", t).unwrap();
        }
        with_ground.insert("R", tuple!["hub", "spoke"]).unwrap();
        assert_eq!(core_of(&with_ground).fact_count(), 1);
        assert_eq!(core_of(&nulls_only).fact_count(), 1);
        assert!(core_of(&nulls_only).nulls().len() == 1);
    }
}
