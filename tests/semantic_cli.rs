//! End-to-end contract for the semantic subcommands: `dexcli eq`,
//! `dexcli optimize`, `dexcli lint --fix`, and `dexcli compose
//! --check` — exit codes, witnesses, and the fix-until-fixpoint loop,
//! driven through the real binary like a user would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn dexcli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
        .current_dir(root())
        .args(args)
        .output()
        .unwrap()
}

fn fixture(name: &str) -> String {
    format!("examples/mappings/{name}.dex")
}

#[test]
fn eq_equivalent_pair_exits_zero() {
    let out = dexcli(&["eq", &fixture("eq_a"), &fixture("eq_b")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("equivalent"), "{err}");
}

#[test]
fn eq_mapping_equals_itself() {
    for name in ["eq_a", "eq_b", "eq_c", "employees", "university"] {
        let out = dexcli(&["eq", &fixture(name), &fixture(name)]);
        assert_eq!(out.status.code(), Some(0), "{name}: {out:?}");
    }
}

#[test]
fn eq_inequivalent_pair_exits_four_with_witness() {
    let out = dexcli(&["eq", &fixture("eq_a"), &fixture("eq_c")]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The witness is machine-checkable JSON naming the violated
    // dependency and carrying both instances.
    assert!(stdout.contains("\"dependency\""), "{stdout}");
    assert!(stdout.contains("\"source\""), "{stdout}");
    assert!(stdout.contains("\"target\""), "{stdout}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("witness re-verified"), "{err}");
    assert!(err.contains("mappings differ"), "{err}");
}

#[test]
fn eq_json_format_reports_both_directions() {
    let out = dexcli(&["eq", &fixture("eq_a"), &fixture("eq_c"), "--format", "json"]);
    assert_eq!(out.status.code(), Some(4));
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v.get("equivalent").and_then(|b| b.as_bool()), Some(false));
    for dir in ["forward", "backward"] {
        let d = v.get(dir).unwrap();
        assert_eq!(
            d.get("verdict").and_then(|s| s.as_str()),
            Some("fails"),
            "{dir}"
        );
        assert!(d.get("witness").is_some(), "{dir} carries its witness");
    }
}

#[test]
fn eq_non_terminating_input_is_undecided_exit_two() {
    let out = dexcli(&[
        "eq",
        &fixture("bad_non_terminating"),
        &fixture("bad_non_terminating"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("undecided"), "{err}");
}

#[test]
fn optimize_emits_a_smaller_equivalent_mapping() {
    let out = dexcli(&["optimize", &fixture("redundant_subsumed")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The deleted rule's conclusion pair never reappears.
    assert!(!stdout.contains("Works(n, d) & Managed(n, m)"), "{stdout}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("verified"), "{err}");
    // The optimizer's stdout is itself a valid mapping, equivalent to
    // the original — check through `eq` like a skeptical user would.
    let tmp = std::env::temp_dir().join("dexcli_optimize_roundtrip.dex");
    std::fs::write(&tmp, stdout.as_bytes()).unwrap();
    let eq = dexcli(&["eq", &fixture("redundant_subsumed"), tmp.to_str().unwrap()]);
    assert_eq!(eq.status.code(), Some(0), "{eq:?}");
}

#[test]
fn optimize_check_reports_without_emitting() {
    let out = dexcli(&["optimize", &fixture("redundant_subsumed"), "--check"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty(), "--check prints no mapping");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("3 verified rewrites"), "{err}");
}

#[test]
fn optimize_refuses_non_terminating_mappings() {
    let out = dexcli(&["optimize", &fixture("bad_non_terminating")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("refused"), "{err}");
    assert!(out.stdout.is_empty(), "no unproven mapping on stdout");
}

#[test]
fn optimize_on_minimal_mapping_is_identity() {
    let out = dexcli(&["optimize", &fixture("employees")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("already minimal"), "{err}");
}

#[test]
fn lint_fix_applies_rewrites_and_reaches_a_fixpoint() {
    let dir = std::env::temp_dir().join("dexcli_lint_fix_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("subsumed.dex");
    std::fs::write(
        &path,
        std::fs::read_to_string(root().join(fixture("redundant_subsumed"))).unwrap(),
    )
    .unwrap();
    let p = path.to_str().unwrap();

    let first = dexcli(&["lint", "--fix", p]);
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    let fixed = std::fs::read_to_string(&path).unwrap();
    assert_ne!(
        fixed,
        std::fs::read_to_string(root().join(fixture("redundant_subsumed"))).unwrap(),
        "--fix must change the file"
    );

    // The fixed file still means the same thing.
    let eq = dexcli(&["eq", &fixture("redundant_subsumed"), p]);
    assert_eq!(eq.status.code(), Some(0), "fix preserved semantics: {eq:?}");

    // Idempotence: a second --fix run is a byte-for-byte no-op.
    let second = dexcli(&["lint", "--fix", p]);
    assert_eq!(second.status.code(), Some(0));
    assert_eq!(std::fs::read_to_string(&path).unwrap(), fixed);
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(
        !err.contains("applied"),
        "second run applies nothing: {err}"
    );
}

#[test]
fn compose_check_passes_on_a_faithful_composition() {
    let dir = std::env::temp_dir().join("dexcli_compose_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("c1.dex");
    let c2 = dir.join("c2.dex");
    std::fs::write(
        &c1,
        "source Emp(name, dept);\ntarget Mid(name, dept);\nEmp(x, d) -> Mid(x, d);\n",
    )
    .unwrap();
    std::fs::write(
        &c2,
        "source Mid(name, dept);\ntarget Out(name);\nMid(x, d) -> Out(x);\n",
    )
    .unwrap();
    let out = dexcli(&[
        "compose",
        c1.to_str().unwrap(),
        c2.to_str().unwrap(),
        "--check",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("agrees with the two-step chase"), "{err}");
}

#[test]
fn compose_check_skips_second_order_compositions() {
    let dir = std::env::temp_dir().join("dexcli_compose_so_test");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("so1.dex");
    let c2 = dir.join("so2.dex");
    std::fs::write(
        &c1,
        "source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);\n",
    )
    .unwrap();
    std::fs::write(
        &c2,
        "source Manager(emp, mgr);\ntarget SelfMngr(emp);\nManager(x, x) -> SelfMngr(x);\n",
    )
    .unwrap();
    let out = dexcli(&[
        "compose",
        c1.to_str().unwrap(),
        c2.to_str().unwrap(),
        "--check",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "refusal to certify is not failure"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outside the decidable fragment"), "{err}");
}
