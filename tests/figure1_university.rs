//! E2 — paper §2 Figure 1: the visual correspondence diagram over the
//! university schemas, compiled to the two st-tgds printed in the
//! paper, then executed.

use dex::chase::{certain_answers, exchange, ConjunctiveQuery};
use dex::logic::{Atom, CorrespondenceGroup, CorrespondenceSet, Mapping};
use dex::relational::{tuple, Instance, RelSchema, Schema};

fn schemas() -> (Schema, Schema) {
    let source = Schema::with_relations(vec![
        RelSchema::untyped("Takes", vec!["name", "course"]).unwrap(),
        RelSchema::untyped("SrcStudent", vec!["id", "name"]).unwrap(),
        RelSchema::untyped("SrcAssgn", vec!["name", "course"]).unwrap(),
    ])
    .unwrap();
    let target = Schema::with_relations(vec![
        RelSchema::untyped("Student", vec!["id", "name"]).unwrap(),
        RelSchema::untyped("Assgn", vec!["name", "course"]).unwrap(),
        RelSchema::untyped("Enrollment", vec!["id", "course"]).unwrap(),
    ])
    .unwrap();
    (source, target)
}

fn figure1() -> CorrespondenceSet {
    CorrespondenceSet::new(vec![
        // Upper part: Takes → Student ∧ Assgn.
        CorrespondenceGroup::new(vec!["Takes"], vec!["Student", "Assgn"])
            .arrow(("Takes", "name"), ("Student", "name"))
            .arrow(("Takes", "name"), ("Assgn", "name"))
            .arrow(("Takes", "course"), ("Assgn", "course")),
        // Lower part: Student ⋈ Assgn → Enrollment.
        CorrespondenceGroup::new(vec!["SrcStudent", "SrcAssgn"], vec!["Enrollment"])
            .join_source(("SrcStudent", "name"), ("SrcAssgn", "name"))
            .arrow(("SrcStudent", "id"), ("Enrollment", "id"))
            .arrow(("SrcAssgn", "course"), ("Enrollment", "course")),
    ])
}

#[test]
fn diagram_compiles_to_paper_tgds() {
    let (source, target) = schemas();
    let tgds = figure1().compile(&source, &target).unwrap();
    assert_eq!(tgds.len(), 2);
    assert_eq!(
        tgds[0].to_string(),
        "∀x,y (Takes(x, y) → ∃z Student(z, x) ∧ Assgn(x, y))"
    );
    assert_eq!(
        tgds[1].to_string(),
        "∀x,y,w (SrcStudent(x, y) ∧ SrcAssgn(y, w) → Enrollment(x, w))"
    );
}

#[test]
fn exchange_through_figure1() {
    let (source, target) = schemas();
    let tgds = figure1().compile(&source, &target).unwrap();
    let mapping = Mapping::new(source, target, tgds).unwrap();
    let src = Instance::with_facts(
        mapping.source().clone(),
        vec![
            ("Takes", vec![tuple!["Alice", "DB"], tuple!["Bob", "PL"]]),
            (
                "SrcStudent",
                vec![tuple![7i64, "Carol"], tuple![8i64, "Dan"]],
            ),
            (
                "SrcAssgn",
                vec![tuple!["Carol", "Math"], tuple!["Dan", "Art"]],
            ),
        ],
    )
    .unwrap();
    let res = exchange(&mapping, &src).unwrap();
    let j = &res.target;
    assert!(mapping.is_solution(&src, j));

    // Upper tgd: Assgn facts ground, Student ids are nulls.
    assert!(j.contains("Assgn", &tuple!["Alice", "DB"]));
    assert!(j.contains("Assgn", &tuple!["Bob", "PL"]));
    assert_eq!(j.relation("Student").unwrap().len(), 2);
    for t in j.relation("Student").unwrap().iter() {
        assert!(t[0].is_null(), "student ids are invented");
        assert!(t[1].is_const());
    }

    // Lower tgd: Enrollment is fully determined by the join.
    assert!(j.contains("Enrollment", &tuple![7i64, "Math"]));
    assert!(j.contains("Enrollment", &tuple![8i64, "Art"]));
    assert_eq!(j.relation("Enrollment").unwrap().len(), 2);
}

#[test]
fn certain_answers_over_figure1() {
    let (source, target) = schemas();
    let tgds = figure1().compile(&source, &target).unwrap();
    let mapping = Mapping::new(source, target, tgds).unwrap();
    let src = Instance::with_facts(
        mapping.source().clone(),
        vec![("Takes", vec![tuple!["Alice", "DB"]])],
    )
    .unwrap();
    let j = exchange(&mapping, &src).unwrap().target;

    // “Which students exist?” has no certain answers by id (all ids
    // are nulls), but by name it does.
    let by_id = ConjunctiveQuery::new(vec!["i"], vec![Atom::vars("Student", &["i", "n"])]).unwrap();
    assert!(certain_answers(&by_id, &j).is_empty());
    let by_name =
        ConjunctiveQuery::new(vec!["n"], vec![Atom::vars("Student", &["i", "n"])]).unwrap();
    let ans = certain_answers(&by_name, &j);
    assert_eq!(ans.len(), 1);
    assert!(ans.contains(&tuple!["Alice"]));
}

#[test]
fn join_lines_change_the_compiled_join() {
    // Without the join line the lower diagram would produce a cartesian
    // product — the tgds genuinely differ.
    let (source, target) = schemas();
    let no_join = CorrespondenceGroup::new(vec!["SrcStudent", "SrcAssgn"], vec!["Enrollment"])
        .arrow(("SrcStudent", "id"), ("Enrollment", "id"))
        .arrow(("SrcAssgn", "course"), ("Enrollment", "course"))
        .compile(&source, &target)
        .unwrap();
    let with_join = figure1().groups[1].compile(&source, &target).unwrap();
    assert_ne!(no_join, with_join);
    // The unjoined variant has 4 distinct variables on the left.
    assert_eq!(no_join.lhs_vars().len(), 4);
    assert_eq!(with_join.lhs_vars().len(), 3);
}
