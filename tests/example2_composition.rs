//! E3 — paper §2 Example 2: composing Emp→Manager with
//! Manager→Boss/SelfMngr requires second-order tgds.

use dex::chase::{exchange, so_exchange};
use dex::logic::{parse_mapping, Mapping};
use dex::ops::compose;
use dex::relational::homomorphism::homomorphically_equivalent;
use dex::relational::{tuple, Instance};

fn m12() -> Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap()
}

fn m23() -> Mapping {
    parse_mapping(
        r#"
        source Manager(emp, mgr);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Manager(x, y) -> Boss(x, y);
        Manager(x, x) -> SelfMngr(x);
        "#,
    )
    .unwrap()
}

/// The composition is the exact SO-tgd the paper prints, with the
/// second-order `∃f` and the left-hand equality.
#[test]
fn composition_is_the_papers_sotgd() {
    let comp = compose(&m12(), &m23()).unwrap();
    assert_eq!(
        comp.to_string(),
        "∃f [ ∀x (Emp(x) → Boss(x, f(x))) ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]"
    );
    assert!(comp.st_tgds.is_none(), "provably not first-order here");
}

/// “This sentence essentially states that there exists a function f(·)
/// that assigns a manager/boss to every employee, and moreover, if the
/// manager/boss assigned to an employee e equals f(e), then e should
/// be in the table SelfMngr.” — checked semantically on instances.
#[test]
fn composition_semantics_on_instances() {
    let comp = compose(&m12(), &m23()).unwrap();
    let src = Instance::with_facts(
        m12().source().clone(),
        vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
    )
    .unwrap();
    let c_schema = m23().target().clone();

    // Distinct bosses: no SelfMngr needed.
    let plain = Instance::with_facts(
        c_schema.clone(),
        vec![("Boss", vec![tuple!["Alice", "Ted"], tuple!["Bob", "Ted"]])],
    )
    .unwrap();
    assert!(comp.sotgd.satisfied_by_bounded(&src, &plain));

    // Alice bosses herself: SelfMngr(Alice) becomes mandatory.
    let self_boss_missing = Instance::with_facts(
        c_schema.clone(),
        vec![("Boss", vec![tuple!["Alice", "Alice"], tuple!["Bob", "Ted"]])],
    )
    .unwrap();
    assert!(!comp.sotgd.satisfied_by_bounded(&src, &self_boss_missing));

    let self_boss_present = Instance::with_facts(
        c_schema,
        vec![
            ("Boss", vec![tuple!["Alice", "Alice"], tuple!["Bob", "Ted"]]),
            ("SelfMngr", vec![tuple!["Alice"]]),
        ],
    )
    .unwrap();
    assert!(comp.sotgd.satisfied_by_bounded(&src, &self_boss_present));
}

/// Executing the composition in one step agrees with executing the two
/// mappings in sequence.
#[test]
fn one_step_equals_two_step() {
    let comp = compose(&m12(), &m23()).unwrap();
    for n in [1usize, 3, 10] {
        let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let src = Instance::with_facts(
            m12().source().clone(),
            vec![("Emp", names.iter().map(|s| tuple![s.as_str()]).collect())],
        )
        .unwrap();
        let two_step = {
            let j = exchange(&m12(), &src).unwrap().target;
            exchange(&m23(), &j).unwrap().target
        };
        let one_step = so_exchange(&comp.sotgd, m23().target(), &src).unwrap();
        assert!(
            homomorphically_equivalent(&two_step, &one_step),
            "n={n}: two-step and one-step disagree"
        );
    }
}

/// Full st-tgds are closed under composition; long chains stay
/// first-order and behave like iterated chasing.
#[test]
fn full_chain_closure() {
    let hops = [("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")];
    let mappings: Vec<Mapping> = hops
        .iter()
        .map(|(s, t)| {
            parse_mapping(&format!(
                "source {s}(v);\ntarget {t}(v);\n{s}(x) -> {t}(x);"
            ))
            .unwrap()
        })
        .collect();
    let mut acc = mappings[0].clone();
    for next in &mappings[1..] {
        acc = compose(&acc, next)
            .unwrap()
            .into_mapping()
            .expect("full tgds stay first-order under composition");
    }
    let src = Instance::with_facts(
        acc.source().clone(),
        vec![("A", vec![tuple!["v1"], tuple!["v2"]])],
    )
    .unwrap();
    let out = exchange(&acc, &src).unwrap().target;
    assert_eq!(out.relation("E").unwrap().len(), 2);
}

/// The classical counterexample direction: the composition of the two
/// mappings cannot be captured by the naive syntactic splice
/// (Emp(x) → Boss(x, y) alone misses the SelfMngr constraint).
#[test]
fn naive_first_order_splice_is_wrong() {
    let naive = parse_mapping(
        r#"
        source Emp(name);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Emp(x) -> Boss(x, y);
        "#,
    )
    .unwrap();
    let comp = compose(&m12(), &m23()).unwrap();
    let src =
        Instance::with_facts(m12().source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
    // The witnessing pair: Boss(Alice, Alice) without SelfMngr.
    let k = Instance::with_facts(
        m23().target().clone(),
        vec![("Boss", vec![tuple!["Alice", "Alice"]])],
    )
    .unwrap();
    assert!(naive.is_solution(&src, &k), "naive splice accepts the pair");
    assert!(
        !comp.sotgd.satisfied_by_bounded(&src, &k),
        "true composition rejects it"
    );
}
