//! End-to-end tests of `dexcli lint`: exit codes, `--deny warnings`
//! promotion, and the machine-readable `--format json` output.

use std::path::PathBuf;
use std::process::Command;

fn dexcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dexcli"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/mappings")
        .join(name)
}

#[test]
fn non_terminating_fixture_fails_with_dex001() {
    let out = dexcli()
        .arg("lint")
        .arg(fixture("bad_non_terminating.dex"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[DEX001]"), "{text}");
    assert!(text.contains("Succ.1 —∃→ Succ.1"), "{text}");
    // The caret block points at the offending target tgd.
    assert!(text.contains("bad_non_terminating.dex:7:1"), "{text}");
    assert!(text.contains("Succ(x, y) -> Succ(y, z);"), "{text}");
}

#[test]
fn clean_fixtures_pass_even_under_deny_warnings() {
    for name in [
        "employees.dex",
        "university.dex",
        "evolution.dex",
        "approx_ids.dex",
    ] {
        let out = dexcli()
            .arg("lint")
            .arg("--deny")
            .arg("warnings")
            .arg(fixture(name))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn deny_warnings_promotes_hygiene_warnings_to_failure() {
    let plain = dexcli()
        .arg("lint")
        .arg(fixture("bad_unused.dex"))
        .output()
        .unwrap();
    assert!(plain.status.success(), "warnings alone must not fail");

    let denied = dexcli()
        .arg("lint")
        .arg("--deny")
        .arg("warnings")
        .arg(fixture("bad_unused.dex"))
        .output()
        .unwrap();
    assert!(!denied.status.success());
    let text = String::from_utf8(denied.stdout).unwrap();
    assert!(text.contains("error[DEX101]"), "{text}");
    assert!(text.contains("error[DEX102]"), "{text}");
}

#[test]
fn parse_error_reports_dex000_and_fails() {
    let out = dexcli()
        .arg("lint")
        .arg(fixture("bad_syntax.dex"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[DEX000]"), "{text}");
    assert!(text.contains("bad_syntax.dex:5:1"), "{text}");
}

#[test]
fn json_output_round_trips_through_serde() {
    let out = dexcli()
        .arg("lint")
        .arg("--format")
        .arg("json")
        .arg(fixture("bad_non_terminating.dex"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let files = parsed.as_array().unwrap();
    assert_eq!(files.len(), 1);
    let diags = files[0]["diagnostics"].as_array().unwrap();
    assert!(!diags.is_empty());

    // Every diagnostic round-trips through the typed model: CLI JSON →
    // Diagnostic → JSON → Diagnostic, landing on an equal value.
    for d in diags {
        let typed: dex::analyze::Diagnostic = serde_json::from_value(d.clone()).unwrap();
        let json = serde_json::to_string(&typed).unwrap();
        let back: dex::analyze::Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(typed, back);
    }
    assert!(diags.iter().any(|d| {
        d["code"].as_str() == Some("Dex001") && d["severity"].as_str() == Some("Error")
    }));
}

#[test]
fn multiple_files_lint_in_one_invocation() {
    let out = dexcli()
        .arg("lint")
        .arg(fixture("employees.dex"))
        .arg(fixture("bad_clash.dex"))
        .output()
        .unwrap();
    // One clean file does not mask the other's error.
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[DEX104]"), "{text}");
}

#[test]
fn non_terminating_fixture_also_warns_dex501() {
    let out = dexcli()
        .arg("lint")
        .arg(fixture("bad_non_terminating.dex"))
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[DEX501]"), "{text}");
    assert!(text.contains("no budget can be synthesized"), "{text}");
}

#[test]
fn deny_cost_raises_dex502_and_cards_parameterize_it() {
    // employees.dex joins Emp and Dept: 10^6 firings at the default
    // uniform cardinality of 1000 — over a threshold of 100.
    let over = dexcli()
        .arg("lint")
        .args(["--deny-cost", "100"])
        .arg(fixture("employees.dex"))
        .output()
        .unwrap();
    assert_eq!(over.status.code(), Some(2));
    let text = String::from_utf8(over.stdout).unwrap();
    assert!(text.contains("error[DEX502]"), "{text}");

    // With honest small cardinalities the same threshold admits it.
    let under = dexcli()
        .arg("lint")
        .args(["--deny-cost", "100", "--cards", "Emp=5,Dept=2,default=0"])
        .arg(fixture("employees.dex"))
        .output()
        .unwrap();
    assert_eq!(
        under.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&under.stdout)
    );
}

#[test]
fn bad_cards_spec_is_a_usage_error() {
    let out = dexcli()
        .arg("lint")
        .args(["--cards", "Emp=banana"])
        .arg(fixture("employees.dex"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--cards"), "{err}");
}
