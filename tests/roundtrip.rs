//! E8 — paper intro: “With networked and cloud-enabled applications,
//! one wants such transformations to be bidirectional to enable
//! updates to propagate between instances.” Round-trip fidelity of the
//! engine across edit batches, policies, and the edit-session wrapper.

use dex::core::{compile, Engine};
use dex::lens::edit::{Delta, EditSession};
use dex::logic::parse_mapping;
use dex::relational::{tuple, Instance, Name, Value};
use dex::rellens::Environment;
use proptest::prelude::*;

fn mapping() -> dex::logic::Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap()
}

fn engine() -> Engine {
    Engine::new(compile(&mapping()).unwrap(), Environment::new()).unwrap()
}

fn src_of(names: &[&str]) -> Instance {
    Instance::with_facts(
        mapping().source().clone(),
        vec![("Emp", names.iter().map(|n| tuple![*n]).collect())],
    )
    .unwrap()
}

#[test]
fn target_deletion_reaches_source() {
    let e = engine();
    let src = src_of(&["Alice", "Bob", "Carol"]);
    let tgt = e.forward(&src, None).unwrap();
    let mut edited = tgt.clone();
    let bob = edited
        .relation("Manager")
        .unwrap()
        .iter()
        .find(|t| t[0] == Value::str("Bob"))
        .unwrap()
        .clone();
    edited.remove("Manager", &bob).unwrap();
    let src2 = e.backward(&edited, &src).unwrap();
    assert_eq!(src2.fact_count(), 2);
    assert!(!src2.contains("Emp", &tuple!["Bob"]));
}

#[test]
fn target_insertion_reaches_source() {
    let e = engine();
    let src = src_of(&["Alice"]);
    let tgt = e.forward(&src, None).unwrap();
    let mut edited = tgt.clone();
    edited.insert("Manager", tuple!["Dana", "Erin"]).unwrap();
    let src2 = e.backward(&edited, &src).unwrap();
    assert!(src2.contains("Emp", &tuple!["Dana"]));
}

#[test]
fn source_private_rows_survive_partial_target_views() {
    // A mapping that only exports part of the source; rows invisible
    // to the target must never be deleted by a backward pass.
    let m = parse_mapping(
        r#"
        source Person(id, name, age);
        target Names(name);
        Person(i, n, a) -> Names(n);
        "#,
    )
    .unwrap();
    let e = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![(
            "Person",
            vec![tuple![1i64, "Alice", 30i64], tuple![2i64, "Bob", 40i64]],
        )],
    )
    .unwrap();
    let tgt = e.forward(&src, None).unwrap();
    // No edit at all: backward is the identity.
    let src2 = e.backward(&tgt, &src).unwrap();
    assert_eq!(src2, src, "null edit, null effect");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip with random edit batches: forward, apply a batch of
    /// inserts/deletes to the target, backward, forward again — the
    /// final target contains exactly the edited employee set.
    #[test]
    fn edit_batches_round_trip(
        initial in proptest::collection::btree_set(0u8..12, 1..6),
        deletions in proptest::collection::btree_set(0u8..12, 0..4),
        insertions in proptest::collection::btree_set(12u8..20, 0..4),
    ) {
        let e = engine();
        let names: Vec<String> = initial.iter().map(|i| format!("e{i}")).collect();
        let src = Instance::with_facts(
            mapping().source().clone(),
            vec![("Emp", names.iter().map(|n| tuple![n.as_str()]).collect())],
        ).unwrap();
        let tgt = e.forward(&src, None).unwrap();

        let mut edited = tgt.clone();
        for d in &deletions {
            let name = format!("e{d}");
            let row = edited.relation("Manager").unwrap().iter()
                .find(|t| t[0] == Value::str(name.as_str()));
            if let Some(row) = row {
                edited.remove("Manager", &row).unwrap();
            }
        }
        for i in &insertions {
            edited.insert("Manager", tuple![format!("e{i}").as_str(), "boss"]).unwrap();
        }

        let src2 = e.backward(&edited, &src).unwrap();
        let expected: std::collections::BTreeSet<String> = initial.iter()
            .filter(|i| !deletions.contains(i))
            .chain(insertions.iter())
            .map(|i| format!("e{i}"))
            .collect();
        let actual: std::collections::BTreeSet<String> = src2
            .relation("Emp").unwrap().iter()
            .map(|t| t[0].as_str().unwrap().to_string())
            .collect();
        prop_assert_eq!(&actual, &expected);

        // Forward again: a valid solution over the edited source.
        let tgt2 = e.forward(&src2, Some(&edited)).unwrap();
        prop_assert!(mapping().is_solution(&src2, &tgt2));
        // Manager assignments made on the target side survive.
        for i in &insertions {
            let row = tuple![format!("e{i}").as_str(), "boss"];
            let present = tgt2.contains("Manager", &row);
            prop_assert!(present, "missing manager row {:?}", row);
        }
    }
}

#[test]
fn edit_session_over_engine_sym() {
    let e = engine();
    let src = src_of(&["Alice", "Bob"]);
    let mut session = EditSession::start_from_left(e.sym(), src);
    assert_eq!(session.right().fact_count(), 2);

    // Delete Alice on the left; the induced right delta names her row.
    let d = Delta {
        inserts: vec![],
        deletes: vec![(Name::new("Emp"), tuple!["Alice"])],
    };
    let induced = session.edit_left(&d).unwrap();
    assert_eq!(induced.deletes.len(), 1);
    assert_eq!(session.right().fact_count(), 1);

    // Insert Carol on the right; the induced left delta names her.
    let d2 = Delta {
        inserts: vec![(Name::new("Manager"), tuple!["Carol", "Ted"])],
        deletes: vec![],
    };
    let induced2 = session.edit_right(&d2).unwrap();
    assert!(induced2
        .inserts
        .iter()
        .any(|(r, t)| r == "Emp" && t == &tuple!["Carol"]));
    assert!(session.left().contains("Emp", &tuple!["Carol"]));
}

#[test]
fn backward_through_union_respects_routing_policy() {
    use dex::core::HoleBinding;
    use dex::rellens::UnionPolicy;

    let m = parse_mapping(
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    )
    .unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![
            ("Father", vec![tuple!["Leslie", "Alice"]]),
            ("Mother", vec![tuple!["Robin", "Sam"]]),
        ],
    )
    .unwrap();

    // Default routing: inserts land on the left branch (Father).
    let e = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let tgt = e.forward(&src, None).unwrap();
    let mut edited = tgt.clone();
    edited.insert("Parent", tuple!["Pat", "Kim"]).unwrap();
    // And delete a Mother-provenance row.
    edited.remove("Parent", &tuple!["Robin", "Sam"]).unwrap();
    let src2 = e.backward(&edited, &src).unwrap();
    assert!(src2.contains("Father", &tuple!["Pat", "Kim"]));
    assert!(!src2.contains("Mother", &tuple!["Pat", "Kim"]));
    assert!(
        !src2.contains("Mother", &tuple!["Robin", "Sam"]),
        "delete reached Mother"
    );
    assert!(
        src2.contains("Father", &tuple!["Leslie", "Alice"]),
        "untouched row survives"
    );

    // Re-bind the union hole: inserts now land on Mother.
    let mut t2 = compile(&m).unwrap();
    let union_hole = t2
        .holes
        .iter()
        .find(|h| matches!(h.site, dex::core::HoleSite::Union { .. }))
        .unwrap()
        .id;
    t2.bind(union_hole, HoleBinding::Union(UnionPolicy::InsertRight))
        .unwrap();
    let e2 = Engine::new(t2, Environment::new()).unwrap();
    let src3 = e2.backward(&edited, &src).unwrap();
    assert!(src3.contains("Mother", &tuple!["Pat", "Kim"]));
    assert!(!src3.contains("Father", &tuple!["Pat", "Kim"]));
}

#[test]
fn idempotent_backward_after_forward() {
    // backward ∘ forward with no edits = identity on the source, for
    // every mapping in the exact fragment exercised here.
    for text in [
        r#"source A(x, y); target B(x, y); A(u, v) -> B(u, v);"#,
        r#"source Father(p, c); source Mother(p, c); target Parent(p, c);
           Father(x, y) -> Parent(x, y); Mother(x, y) -> Parent(x, y);"#,
        r#"source Person1(id, name, age, city); target Person2(id, name, salary, zipcode);
           Person1(i, n, a, c) -> Person2(i, n, s, z);"#,
    ] {
        let m = parse_mapping(text).unwrap();
        let e = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        let mut src = Instance::empty(m.source().clone());
        // Populate each source relation with a couple of rows.
        for rel in m.source().relations() {
            for k in 0..2i64 {
                let vals: Vec<Value> = (0..rel.arity())
                    .map(|i| Value::str(format!("v{k}_{i}")))
                    .collect();
                src.insert(rel.name().as_str(), dex::relational::Tuple::new(vals))
                    .unwrap();
            }
        }
        let tgt = e.forward(&src, None).unwrap();
        let src2 = e.backward(&tgt, &src).unwrap();
        assert_eq!(src2, src, "mapping: {text}");
    }
}
