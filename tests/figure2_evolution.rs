//! E9 — paper Figure 2 + §4: the schema evolution problem, solved both
//! ways — (a) invert the evolution lenses and prepend them to the
//! mapping, (b) propagate the SMOs through the st-tgds — and shown
//! equivalent on the shared fragment.

use dex::core::{compile, Engine};
use dex::evolution::{propagate_all, ColumnDefault, EvolutionLens, Smo};
use dex::lens::symmetric::{invert, SymLens};
use dex::logic::parse_mapping;
use dex::relational::{tuple, AttrType, Expr, Instance, Name};
use dex::rellens::Environment;

fn mapping() -> dex::logic::Mapping {
    parse_mapping(
        r#"
        source Person(id, name, age);
        target Contact(name);
        Person(i, n, a) -> Contact(n);
        "#,
    )
    .unwrap()
}

fn evolution() -> Vec<Smo> {
    vec![
        Smo::RenameTable {
            from: Name::new("Person"),
            to: Name::new("People"),
        },
        Smo::AddColumn {
            table: Name::new("People"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Const("unknown".into()),
        },
    ]
}

fn evolved_instance(evo: &EvolutionLens) -> Instance {
    Instance::with_facts(
        evo.final_schema().unwrap().clone(),
        vec![(
            "People",
            vec![
                tuple![1i64, "Alice", 30i64, "Sydney"],
                tuple![2i64, "Bob", 40i64, "Santiago"],
            ],
        )],
    )
    .unwrap()
}

/// Strategy (a): `[ℓ⁻¹ ; M]` — invert the evolution, then the mapping.
fn via_lenses(evolved: &Instance) -> Instance {
    let m = mapping();
    let evo = EvolutionLens::new(evolution(), m.source().clone()).unwrap();
    let inv = invert(evo);
    let (a_instance, _) = inv.put_r(evolved, &inv.missing());
    let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    engine.forward(&a_instance, None).unwrap()
}

/// Strategy (b): channel propagation — rewrite the mapping over A′.
fn via_channel(evolved: &Instance) -> Instance {
    let m2 = propagate_all(&evolution(), &mapping()).unwrap();
    let engine = Engine::new(compile(&m2).unwrap(), Environment::new()).unwrap();
    engine.forward(evolved, None).unwrap()
}

#[test]
fn both_strategies_agree() {
    let evo = EvolutionLens::new(evolution(), mapping().source().clone()).unwrap();
    let evolved = evolved_instance(&evo);
    assert_eq!(via_lenses(&evolved), via_channel(&evolved));
}

#[test]
fn evolved_mapping_round_trips() {
    let m2 = propagate_all(&evolution(), &mapping()).unwrap();
    let engine = Engine::new(compile(&m2).unwrap(), Environment::new()).unwrap();
    let evo = EvolutionLens::new(evolution(), mapping().source().clone()).unwrap();
    let evolved = evolved_instance(&evo);
    let tgt = engine.forward(&evolved, None).unwrap();
    assert!(tgt.contains("Contact", &tuple!["Alice"]));
    // Edit the target, push back into the EVOLVED source.
    let mut edited = tgt.clone();
    edited.insert("Contact", tuple!["Carol"]).unwrap();
    let evolved2 = engine.backward(&edited, &evolved).unwrap();
    assert!(evolved2
        .relation("People")
        .unwrap()
        .iter()
        .any(|t| t[1] == dex::relational::Value::str("Carol")));
}

#[test]
fn inverted_evolution_restores_old_schema_and_data() {
    let m = mapping();
    let evo = EvolutionLens::new(evolution(), m.source().clone()).unwrap();
    let old = Instance::with_facts(
        m.source().clone(),
        vec![("Person", vec![tuple![1i64, "Alice", 30i64]])],
    )
    .unwrap();
    let (evolved, c) = evo.put_r(&old, &evo.missing());
    assert!(evolved.contains("People", &tuple![1i64, "Alice", 30i64, "unknown"]));
    let (back, _) = evo.put_l(&evolved, &c);
    assert_eq!(back, old);
}

#[test]
fn longer_evolution_with_split() {
    // A three-step evolution ending in a horizontal split; strategy (a)
    // handles it (lenses compose), and strategy (b) handles it too
    // (split duplicates the tgds).
    let m = mapping();
    let smos = vec![
        Smo::RenameTable {
            from: Name::new("Person"),
            to: Name::new("People"),
        },
        Smo::SplitHorizontal {
            table: Name::new("People"),
            pred: Expr::attr("age").ge(Expr::lit(35i64)),
            true_table: Name::new("Seniors"),
            false_table: Name::new("Juniors"),
        },
    ];
    let evo = EvolutionLens::new(smos.clone(), m.source().clone()).unwrap();
    let evolved = Instance::with_facts(
        evo.final_schema().unwrap().clone(),
        vec![
            ("Seniors", vec![tuple![2i64, "Bob", 40i64]]),
            ("Juniors", vec![tuple![1i64, "Alice", 30i64]]),
        ],
    )
    .unwrap();

    // (a) invert + map.
    let inv = invert(evo.clone());
    let (a_inst, _) = inv.put_r(&evolved, &inv.missing());
    let engine_a = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let via_a = engine_a.forward(&a_inst, None).unwrap();

    // (b) propagate.
    let m2 = propagate_all(&smos, &m).unwrap();
    assert_eq!(m2.st_tgds().len(), 2, "split duplicated the tgd");
    let engine_b = Engine::new(compile(&m2).unwrap(), Environment::new()).unwrap();
    let via_b = engine_b.forward(&evolved, None).unwrap();

    assert_eq!(via_a, via_b);
    assert!(via_a.contains("Contact", &tuple!["Alice"]));
    assert!(via_a.contains("Contact", &tuple!["Bob"]));
}

#[test]
fn figure2_composed_lens_is_a_symmetric_lens() {
    // The composite [ℓ⁻¹ ; M-engine-lens] from A′ to B is itself a
    // symmetric lens — the “closed mapping language” point: build it,
    // push right, push back, state is stable.
    let m = mapping();
    let evo = EvolutionLens::new(evolution(), m.source().clone()).unwrap();
    let evolved = evolved_instance(&evo);
    let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();

    let composite = invert(evo).then_sym(engine.sym());
    let (b, c1) = composite.put_r(&evolved, &composite.missing());
    assert!(b.contains("Contact", &tuple!["Alice"]));
    let (aprime2, c2) = composite.put_l(&b, &c1);
    assert_eq!(aprime2, evolved, "PutRL at the composite level");
    let (b2, _) = composite.put_r(&aprime2, &c2);
    assert_eq!(b2, b);
}
