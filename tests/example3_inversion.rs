//! E4 — paper §2 Example 3: inversion loses information; the maximum
//! recovery is disjunctive.

use dex::chase::exchange;
use dex::logic::{parse_mapping, Mapping};
use dex::ops::{is_recovery_witness, maximum_recovery, not_invertible_witness};
use dex::relational::{tuple, Instance};

fn parents() -> Mapping {
    parse_mapping(
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    )
    .unwrap()
}

#[test]
fn best_solution_merges_father_and_mother() {
    // “let I = {Father(Leslie, Alice)}. Then the best solution for I is
    // the instance J = {Parent(Leslie, Alice)}.”
    let m = parents();
    let i = Instance::with_facts(
        m.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let j = exchange(&m, &i).unwrap().target;
    assert_eq!(j.fact_count(), 1);
    assert!(j.contains("Parent", &tuple!["Leslie", "Alice"]));
}

#[test]
fn mapping_is_not_fagin_invertible() {
    // “according to Fagin's initial definition of inverse, the above
    // mapping is not invertible” — witnessed by two sources with the
    // same solutions.
    let m = parents();
    let i1 = Instance::with_facts(
        m.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let i2 = Instance::with_facts(
        m.source().clone(),
        vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    assert!(not_invertible_witness(&m, &i1, &i2));
}

#[test]
fn maximum_recovery_is_the_papers_disjunction() {
    // “the best possible inverse for the above mapping is given by the
    // sentence ∀x∀y (Parent(x, y) → Father(x, y) ∨ Mother(x, y))”
    let rec = maximum_recovery(&parents()).unwrap();
    assert_eq!(rec.rules.len(), 1);
    assert_eq!(
        rec.rules[0].to_string(),
        "Parent(v0, v1) → Father(v0, v1) ∨ Mother(v0, v1)"
    );
}

#[test]
fn both_origins_equally_good() {
    // “both instances I1 … and I2 … are equally good as solutions for
    // J = {Parent(Leslie, Alice)}.”
    let m = parents();
    let rec = maximum_recovery(&m).unwrap();
    let j = Instance::with_facts(
        m.target().clone(),
        vec![("Parent", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let i1 = Instance::with_facts(
        m.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let i2 = Instance::with_facts(
        m.source().clone(),
        vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    assert!(rec.satisfied_by(&j, &i1));
    assert!(rec.satisfied_by(&j, &i2));
    // But an empty source explains nothing.
    assert!(!rec.satisfied_by(&j, &Instance::empty(m.source().clone())));
}

#[test]
fn recovery_property_holds_across_generated_sources() {
    let m = parents();
    let rec = maximum_recovery(&m).unwrap();
    let mut samples = vec![Instance::empty(m.source().clone())];
    // A small combinatorial family of sources.
    let people = ["Leslie", "Robin", "Pat"];
    for f in 0..3usize {
        for mo in 0..3usize {
            let mut inst = Instance::empty(m.source().clone());
            for (k, p) in people.iter().take(f).enumerate() {
                inst.insert("Father", tuple![*p, format!("c{k}").as_str()])
                    .unwrap();
            }
            for (k, p) in people.iter().take(mo).enumerate() {
                inst.insert("Mother", tuple![*p, format!("d{k}").as_str()])
                    .unwrap();
            }
            samples.push(inst);
        }
    }
    assert!(is_recovery_witness(&m, &rec, &samples));
}

#[test]
fn projection_recovery_for_lossy_mapping() {
    // Example 1's mapping: the recovery forgets the invented manager.
    let m = parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap();
    let rec = maximum_recovery(&m).unwrap();
    assert_eq!(rec.rules[0].to_string(), "Manager(v0, v1) → Emp(v0)");
    let samples = vec![
        Instance::empty(m.source().clone()),
        Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap(),
    ];
    assert!(is_recovery_witness(&m, &rec, &samples));
}

#[test]
fn information_loss_is_real() {
    // Round-tripping I through M then the recovery does NOT pin down I:
    // the recovery also accepts a strictly different origin. This is
    // the “inverses in general may lose information” sentence as a
    // test.
    let m = parents();
    let rec = maximum_recovery(&m).unwrap();
    let i_father = Instance::with_facts(
        m.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let j = exchange(&m, &i_father).unwrap().target;
    let i_mother = Instance::with_facts(
        m.source().clone(),
        vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    assert!(
        rec.satisfied_by(&j, &i_mother),
        "a different origin fits too"
    );
}
