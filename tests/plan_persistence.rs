//! Plan persistence: a compiled (and policy-bound) mapping template
//! serializes to JSON and reloads into an equivalent engine — mapping
//! plans are first-class artifacts, not ephemeral compiler state.

use dex::core::{compile, Engine, HoleBinding, MappingTemplate};
use dex::logic::parse_mapping;
use dex::relational::{tuple, Instance};
use dex::rellens::{Environment, UpdatePolicy};

fn mapping() -> dex::logic::Mapping {
    parse_mapping(
        r#"
        source Person1(id, name, age, city);
        target Person2(id, name, salary, zipcode);
        key Person2(id);
        Person1(i, n, a, c) -> Person2(i, n, s, z);
        "#,
    )
    .unwrap()
}

#[test]
fn template_json_round_trip() {
    let t = compile(&mapping()).unwrap();
    let js = serde_json::to_string_pretty(&t).unwrap();
    let back: MappingTemplate = serde_json::from_str(&js).unwrap();
    assert_eq!(back, t);
    // The serialized plan names the policy questions (a human can read
    // the artifact).
    assert!(js.contains("Person2.salary"), "{js}");
}

#[test]
fn bound_template_survives_persistence() {
    let mut t = compile(&mapping()).unwrap();
    // Bind the salary hole before "saving".
    let salary_hole = t
        .holes
        .iter()
        .find(|h| h.question.contains("salary"))
        .unwrap()
        .id;
    t.bind(
        salary_hole,
        HoleBinding::Column(UpdatePolicy::Const(55_000i64.into())),
    )
    .unwrap();
    let js = serde_json::to_string(&t).unwrap();

    // "Load" in a fresh process and run.
    let loaded: MappingTemplate = serde_json::from_str(&js).unwrap();
    let engine = Engine::new(loaded, Environment::new()).unwrap();
    let src = Instance::with_facts(
        mapping().source().clone(),
        vec![("Person1", vec![tuple![1i64, "Alice", 30i64, "Sydney"]])],
    )
    .unwrap();
    let tgt = engine.forward(&src, None).unwrap();
    let row = tgt.relation("Person2").unwrap().iter().next().unwrap();
    assert_eq!(
        row[2],
        dex::relational::Value::int(55_000),
        "bound policy applied"
    );
    assert!(row[3].is_null(), "unbound hole keeps its default");
}

#[test]
fn engines_from_original_and_reloaded_templates_agree() {
    let t = compile(&mapping()).unwrap();
    let js = serde_json::to_string(&t).unwrap();
    let loaded: MappingTemplate = serde_json::from_str(&js).unwrap();
    let e1 = Engine::new(t, Environment::new()).unwrap();
    let e2 = Engine::new(loaded, Environment::new()).unwrap();
    let src = Instance::with_facts(
        mapping().source().clone(),
        vec![(
            "Person1",
            vec![
                tuple![1i64, "Alice", 30i64, "Sydney"],
                tuple![2i64, "Bob", 40i64, "Lima"],
            ],
        )],
    )
    .unwrap();
    assert_eq!(
        e1.forward(&src, None).unwrap(),
        e2.forward(&src, None).unwrap()
    );
    assert_eq!(e1.show_plan(), e2.show_plan());
}
