//! Property test pinning the static cost bounds to the dynamic chase:
//! for every generated weakly-acyclic mapping, the bounds predicted by
//! [`dex_analyze::cost_section`] at the *measured* source statistics
//! must dominate what an actual exchange consumes — committed rounds,
//! rule firings (including egd merges), invented nulls, and final
//! tuple count — at every matcher thread count.
//!
//! The same scenarios also pin the `--auto-budget` contract: a chase
//! governed by [`Budget::from_bounds`] with safety factor 1 (the
//! tightest admissible caps) must never trip.
//!
//! The generator stratifies the target relations — a target tgd reads
//! `T_i` and writes `T_j` only for `i < j` — so every special edge in
//! the dependency graph ascends the stratification and the mapping is
//! weakly acyclic *by construction*, while still covering key egds
//! (null-merging), multi-atom premises, constants, and existentials
//! shared between conclusion atoms.

use dex_analyze::{cost_pass, cost_section};
use dex_chase::TerminationClass;
use dex_chase::{exchange_governed, exchange_with, Budget, ChaseOptions, ChaseOutcome, Governor};
use dex_logic::parse_mapping;
use dex_relational::{Bound, Instance, SourceStats, Value};
use proptest::prelude::*;
use std::fmt::Write as _;

/// splitmix64 — deterministic stream from the strategy-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

struct Scenario {
    text: String,
    facts: Vec<Vec<Vec<String>>>,
}

/// A conclusion term for an st-tgd: constant (rarely) or a variable
/// from a pool wider than the premise's, so some come out existential —
/// and, drawn twice, *shared* between conclusion atoms.
fn conclusion_term(rng: &mut Rng) -> String {
    if rng.below(6) == 0 {
        format!("'k{}'", rng.below(3))
    } else {
        format!("v{}", rng.below(8))
    }
}

fn build_scenario(seed: u64) -> Scenario {
    build_scenario_with(seed, true)
}

/// With `stratified` the target tgds only ascend the relation order
/// (weakly acyclic by construction); without it they may point
/// anywhere — including at themselves — so the fuzz corpus covers
/// existential cycles, non-JA mappings, and every in-between.
fn build_scenario_with(seed: u64, stratified: bool) -> Scenario {
    let mut rng = Rng(seed);
    let src_arities: Vec<usize> = (0..1 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();
    let tgt_arities: Vec<usize> = (0..2 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();

    let mut text = String::new();
    for (i, a) in src_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("a{p}")).collect();
        let _ = writeln!(text, "source S{i}({});", attrs.join(", "));
    }
    for (i, a) in tgt_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("b{p}")).collect();
        let _ = writeln!(text, "target T{i}({});", attrs.join(", "));
    }
    // Key egds: merges consume invented nulls; the rounds/firings
    // bounds must absorb them.
    for (i, a) in tgt_arities.iter().enumerate() {
        if *a >= 2 && rng.below(2) == 0 {
            let _ = writeln!(text, "key T{i}(b0);");
        }
    }

    // st-tgds: multi-atom premises, frontier/existential/const
    // conclusion terms, occasionally shared existentials across atoms.
    for _ in 0..1 + rng.below(3) {
        let lhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(src_arities.len() as u64);
                let args: Vec<String> = (0..src_arities[rel])
                    .map(|_| format!("v{}", rng.below(6)))
                    .collect();
                format!("S{rel}({})", args.join(", "))
            })
            .collect();
        let rhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(tgt_arities.len() as u64);
                let args: Vec<String> = (0..tgt_arities[rel])
                    .map(|_| conclusion_term(&mut rng))
                    .collect();
                format!("T{rel}({})", args.join(", "))
            })
            .collect();
        let _ = writeln!(text, "{} -> {};", lhs.join(" & "), rhs.join(" & "));
    }

    // Target tgds, stratified: premise reads T_i, conclusion writes
    // T_j with i < j only, so the dependency graph cannot cycle and
    // the mapping is weakly acyclic whatever else was generated.
    for _ in 0..rng.below(3) {
        let (lhs_rel, rhs_rel) = if stratified {
            let l = rng.below((tgt_arities.len() - 1) as u64);
            (l, l + 1 + rng.below((tgt_arities.len() - l - 1) as u64))
        } else {
            // Anything goes: self-loops and descending edges included.
            (
                rng.below(tgt_arities.len() as u64),
                rng.below(tgt_arities.len() as u64),
            )
        };
        let lhs_arity = tgt_arities[lhs_rel];
        let lhs_args: Vec<String> = (0..lhs_arity).map(|p| format!("u{p}")).collect();
        let rhs_args: Vec<String> = (0..tgt_arities[rhs_rel])
            .map(|_| match rng.below(6) {
                0 => format!("'k{}'", rng.below(3)),
                // Fresh variables come out existential.
                1 | 2 => format!("w{}", rng.below(3)),
                _ => format!("u{}", rng.below(lhs_arity as u64)),
            })
            .collect();
        let _ = writeln!(
            text,
            "T{lhs_rel}({}) -> T{rhs_rel}({});",
            lhs_args.join(", "),
            rhs_args.join(", ")
        );
    }

    let facts = src_arities
        .iter()
        .map(|arity| {
            (0..rng.below(5))
                .map(|_| (0..*arity).map(|_| format!("d{}", rng.below(40))).collect())
                .collect()
        })
        .collect();

    Scenario { text, facts }
}

fn build_source(scenario: &Scenario, m: &dex_logic::Mapping) -> Instance {
    let mut src = Instance::empty(m.source().clone());
    for (i, rows) in scenario.facts.iter().enumerate() {
        for row in rows {
            let tuple: dex_relational::Tuple = row
                .iter()
                .map(|s| Value::str(s.clone()))
                .collect::<Vec<_>>()
                .into();
            src.insert(&format!("S{i}"), tuple).unwrap();
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn predicted_bounds_dominate_actual_chase(seed in 0u64..u64::MAX) {
        let scenario = build_scenario(seed);
        let text = &scenario.text;
        let m = parse_mapping(text).expect(text);
        let src = build_source(&scenario, &m);

        let stats = SourceStats::measure(&src);
        let section = cost_section(&m, &stats);
        prop_assert!(
            section.bounds.all_finite(),
            "stratified mapping predicted unbounded:\n{}",
            text
        );

        // Key egds can clash two constants — then there is no solution
        // and nothing to bound.
        let mut opts = ChaseOptions {
            threads: 1,
            ..ChaseOptions::default()
        };
        let baseline = match exchange_with(&m, &src, opts) {
            Ok(r) => r,
            Err(_) => return,
        };

        for threads in [1usize, 3] {
            opts.threads = threads;
            let r = exchange_with(&m, &src, opts).expect(text);
            for (name, actual, bound) in [
                ("rounds", r.stats.rounds as u64, section.bounds.rounds),
                ("firings", r.firings as u64, section.bounds.firings),
                ("nulls", r.nulls_created as u64, section.bounds.nulls),
                ("tuples", r.target.fact_count() as u64, section.bounds.tuples),
            ] {
                prop_assert!(
                    Bound::Finite(actual) <= bound,
                    "{name}: actual {} exceeds predicted {} at {} thread(s)\nmapping:\n{}",
                    actual, bound, threads, text
                );
            }
            // Thread count must not change the result (so one bound
            // check per scenario would suffice — pin it anyway).
            prop_assert_eq!(&r.target, &baseline.target, "threads={}", threads);
        }

        // `--auto-budget` contract: caps synthesized from the bounds at
        // the *tightest* admissible safety factor never trip.
        let budget = Budget::from_bounds(&section.bounds, 1);
        prop_assert!(!budget.is_unlimited(), "finite bounds must yield caps");
        let gov = Governor::new(budget);
        let outcome = exchange_governed(&m, &src, ChaseOptions::default(), &gov)
            .expect(text);
        prop_assert!(
            matches!(outcome, ChaseOutcome::Complete(_)),
            "auto-budget tripped on an admitted mapping:\n{}",
            text
        );
    }

    /// Fuzz contract for the cost pass itself: on *arbitrary* mappings
    /// — cyclic target tgds, self-loops, non-JA recursion included —
    /// the pass is total (never panics, at any cardinality up to ones
    /// where every product overflows u64), unterminating mappings
    /// degrade to `Unbounded` rather than wrapping, and every bound is
    /// monotone in the assumed source cardinalities.
    #[test]
    fn cost_pass_is_total_and_monotone_on_arbitrary_mappings(seed in 0u64..u64::MAX) {
        let scenario = build_scenario_with(seed, false);
        let m = match parse_mapping(&scenario.text) {
            Ok(m) => m,
            Err(_) => return,
        };

        for n in [0u64, 1, 1_000, u64::MAX / 2] {
            let stats = SourceStats::uniform(n);
            let section = cost_section(&m, &stats);
            // The lint wrapper must be as total as the section builder,
            // with and without an admission threshold.
            let _ = cost_pass(&m, None, &stats, None);
            let _ = cost_pass(&m, None, &stats, Some(0));
            if section.class == TerminationClass::Unknown {
                prop_assert!(
                    !section.bounds.all_finite(),
                    "non-terminating mapping produced finite bounds at card {}:\n{}",
                    n, scenario.text
                );
                prop_assert_eq!(
                    section.bounds.headline(),
                    Bound::Unbounded,
                    "non-terminating headline must be unbounded, not overflowed:\n{}",
                    &scenario.text
                );
            }
        }

        // Monotonicity: growing every assumed cardinality can only
        // grow (or preserve) each bound; `Unbounded` is the top.
        let small = cost_section(&m, &SourceStats::uniform(3)).bounds;
        let large = cost_section(&m, &SourceStats::uniform(30)).bounds;
        for (name, s, l) in [
            ("rounds", small.rounds, large.rounds),
            ("firings", small.firings, large.firings),
            ("tuples", small.tuples, large.tuples),
            ("nulls", small.nulls, large.nulls),
            ("bytes", small.bytes, large.bytes),
        ] {
            prop_assert!(
                s <= l,
                "{name} not monotone: {} at card 3 vs {} at card 30\n{}",
                s, l, scenario.text
            );
        }
    }
}
