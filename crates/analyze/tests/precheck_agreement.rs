//! The analyzer's compiler-fragment precheck must agree with the real
//! compiler: `precheck(m).accepts() ⇔ compile(m).is_ok()`, and on
//! accepted mappings the predicted per-tgd fidelity class must match
//! the compiler's report. Checked over 512 pseudo-randomly generated
//! mappings spanning self-joins, shared existentials, constants,
//! function terms, shape disagreements, and target tgds.
//!
//! Variable names (`v*`, `w*`) and attribute names (`a*`, `b*`) are
//! drawn from disjoint pools: the compiler's internal lens-validation
//! pass (not part of the fragment definition) can reject accidental
//! rename collisions, which the precheck deliberately does not model.

use dex_analyze::{analyze, Code};
use dex_core::{compile, precheck, Fidelity};
use dex_logic::{Atom, Mapping, StTgd, Term};
use dex_relational::{RelSchema, Schema};
use proptest::prelude::*;

/// splitmix64 — deterministic stream from the strategy-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

fn schema(prefix: &str, attr_prefix: &str) -> Schema {
    let rels = (0..3)
        .map(|k| {
            let attrs: Vec<String> = (0..=k).map(|i| format!("{attr_prefix}{i}")).collect();
            RelSchema::untyped(
                format!("{prefix}{k}"),
                attrs.iter().map(String::as_str).collect::<Vec<_>>(),
            )
            .unwrap()
        })
        .collect();
    Schema::with_relations(rels).unwrap()
}

fn term(rng: &mut Rng, var_pool: &[&str], allow_func: bool) -> Term {
    match rng.below(8) {
        0 => Term::cnst(rng.below(10) as i64),
        1 if allow_func => Term::func("f", vec![Term::var(var_pool[rng.below(3)])]),
        _ => Term::var(var_pool[rng.below(var_pool.len() as u64)]),
    }
}

fn atom(rng: &mut Rng, prefix: &str, var_pool: &[&str], allow_func: bool) -> Atom {
    let k = rng.below(3);
    let args = (0..=k).map(|_| term(rng, var_pool, allow_func)).collect();
    Atom::new(format!("{prefix}{k}"), args)
}

/// Generate a valid mapping exercising every precheck-relevant shape.
fn build_mapping(seed: u64) -> Mapping {
    let mut rng = Rng(seed);
    let source = schema("S", "a");
    let target = schema("T", "b");

    // Low-probability function terms exercise the DEX202 path.
    let allow_func = rng.below(8) == 0;
    let n_rules = 1 + rng.below(4);
    let st_tgds: Vec<StTgd> = (0..n_rules)
        .map(|_| {
            let lhs = (0..=rng.below(2))
                .map(|_| atom(&mut rng, "S", &["v0", "v1", "v2", "v3"], allow_func))
                .collect();
            let rhs = (0..=rng.below(2))
                .map(|_| atom(&mut rng, "T", &["v0", "v1", "v2", "w0", "w1"], allow_func))
                .collect();
            StTgd::new(lhs, rhs)
        })
        .collect();

    // Occasionally add a full target tgd (outside the fragment).
    let target_tgds = if rng.below(4) == 0 {
        vec![StTgd::new(
            vec![Atom::new("T1", vec![Term::var("v0"), Term::var("v1")])],
            vec![Atom::new("T0", vec![Term::var("v0")])],
        )]
    } else {
        vec![]
    };

    Mapping::with_target_deps(source, target, st_tgds, target_tgds, vec![])
        .expect("generated mappings are schema-valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// precheck accepts ⇔ compile succeeds; fidelity classes agree.
    #[test]
    fn precheck_agrees_with_compile(seed in 0u64..u64::MAX) {
        let m = build_mapping(seed);
        let pre = precheck(&m);
        match compile(&m) {
            Ok(template) => {
                prop_assert!(
                    pre.accepts(),
                    "precheck refused a compilable mapping: {:?}\n{m}",
                    pre.reasons
                );
                prop_assert_eq!(template.report.entries.len(), pre.fidelity.len());
                for (i, (_, actual)) in template.report.entries.iter().enumerate() {
                    prop_assert_eq!(
                        matches!(actual, Fidelity::Exact),
                        matches!(pre.fidelity[i], Fidelity::Exact),
                        "fidelity class disagrees on tgd #{}: {:?} vs {:?}\n{}",
                        i, actual, pre.fidelity[i], m
                    );
                }
            }
            Err(e) => prop_assert!(
                !pre.accepts(),
                "precheck accepted a mapping compile refuses: {e}\n{m}"
            ),
        }
    }

    /// The analyzer surfaces a DEX2xx fragment diagnostic exactly when
    /// compile refuses, and DEX205 exactly when some tgd is Approximate.
    #[test]
    fn analyzer_fragment_codes_track_compile(seed in 0u64..u64::MAX) {
        let m = build_mapping(seed);
        let diags = analyze(&m, None);
        let refusal_predicted = diags.iter().any(|d| {
            matches!(
                d.code,
                Code::Dex201 | Code::Dex202 | Code::Dex203 | Code::Dex204 | Code::Dex206
            )
        });
        match compile(&m) {
            Ok(template) => {
                prop_assert!(!refusal_predicted, "false refusal for {m}");
                let any_approx = template
                    .report
                    .entries
                    .iter()
                    .any(|(_, f)| matches!(f, Fidelity::Approximate(_)));
                let dex205 = diags.iter().any(|d| d.code == Code::Dex205);
                prop_assert_eq!(any_approx, dex205, "DEX205 mismatch for {}", m);
            }
            Err(_) => prop_assert!(refusal_predicted, "missed refusal for {m}"),
        }
    }
}
