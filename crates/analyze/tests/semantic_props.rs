//! Property tests for the chase-based containment checker and the
//! provably-safe optimizer (`dex_analyze::semantic`):
//!
//! * **Optimizer soundness** — for every generated weakly-acyclic
//!   mapping, the optimized mapping produces a homomorphically
//!   equivalent universal solution on a random source instance (and
//!   fails on exactly the same key-clash sources the original fails
//!   on). The optimizer proves each rewrite; this test audits the
//!   proofs dynamically.
//! * **Reflexivity** — `contains(m, m)` and `equivalent(m, m)` hold
//!   for every generated mapping: a checker that cannot certify
//!   `m ⊑ m` is broken at the root.
//! * **Witness honesty** — perturb a mapping by deleting one rule;
//!   whenever the checker *refutes* a containment it must hand back a
//!   witness that [`verify_containment_witness`] confirms: a (source,
//!   target) pair that is a solution of one mapping and violates the
//!   named dependency of the other.
//!
//! The generator is the stratified scenario builder shared (by
//! convention, not code) with `cost_props.rs`: target tgds only ascend
//! the relation order, so every mapping is weakly acyclic by
//! construction and the containment questions are decidable.

use dex_analyze::{contains, equivalent, optimize, verify_containment_witness, ContainmentVerdict};
use dex_chase::exchange;
use dex_logic::{parse_mapping, Mapping};
use dex_relational::{homomorphically_equivalent, Instance, Value};
use proptest::prelude::*;
use std::fmt::Write as _;

/// splitmix64 — deterministic stream from the strategy-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

struct Scenario {
    text: String,
    facts: Vec<Vec<Vec<String>>>,
}

fn conclusion_term(rng: &mut Rng) -> String {
    if rng.below(6) == 0 {
        format!("'k{}'", rng.below(3))
    } else {
        format!("v{}", rng.below(8))
    }
}

/// Stratified generator: weakly acyclic by construction (target tgds
/// only ascend the relation order), covering key egds, multi-atom
/// premises, constants, shared existentials — and, deliberately often,
/// redundant rules for the optimizer to find.
fn build_scenario(seed: u64) -> Scenario {
    let mut rng = Rng(seed);
    let src_arities: Vec<usize> = (0..1 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();
    let tgt_arities: Vec<usize> = (0..2 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();

    let mut text = String::new();
    for (i, a) in src_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("a{p}")).collect();
        let _ = writeln!(text, "source S{i}({});", attrs.join(", "));
    }
    for (i, a) in tgt_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("b{p}")).collect();
        let _ = writeln!(text, "target T{i}({});", attrs.join(", "));
    }
    for (i, a) in tgt_arities.iter().enumerate() {
        if *a >= 2 && rng.below(2) == 0 {
            let _ = writeln!(text, "key T{i}(b0);");
        }
    }

    // st-tgds. Drawing rules from a small pool makes exact and
    // near-duplicates common — the redundancy the optimizer exists
    // to delete.
    for _ in 0..1 + rng.below(4) {
        let lhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(src_arities.len() as u64);
                let args: Vec<String> = (0..src_arities[rel])
                    .map(|_| format!("v{}", rng.below(4)))
                    .collect();
                format!("S{rel}({})", args.join(", "))
            })
            .collect();
        let rhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(tgt_arities.len() as u64);
                let args: Vec<String> = (0..tgt_arities[rel])
                    .map(|_| conclusion_term(&mut rng))
                    .collect();
                format!("T{rel}({})", args.join(", "))
            })
            .collect();
        let _ = writeln!(text, "{} -> {};", lhs.join(" & "), rhs.join(" & "));
    }

    // Target tgds, ascending only.
    for _ in 0..rng.below(3) {
        let l = rng.below((tgt_arities.len() - 1) as u64);
        let r = l + 1 + rng.below((tgt_arities.len() - l - 1) as u64);
        let lhs_arity = tgt_arities[l];
        let lhs_args: Vec<String> = (0..lhs_arity).map(|p| format!("u{p}")).collect();
        let rhs_args: Vec<String> = (0..tgt_arities[r])
            .map(|_| match rng.below(6) {
                0 => format!("'k{}'", rng.below(3)),
                1 | 2 => format!("w{}", rng.below(3)),
                _ => format!("u{}", rng.below(lhs_arity as u64)),
            })
            .collect();
        let _ = writeln!(
            text,
            "T{l}({}) -> T{r}({});",
            lhs_args.join(", "),
            rhs_args.join(", ")
        );
    }

    let facts = src_arities
        .iter()
        .map(|arity| {
            (0..rng.below(5))
                .map(|_| (0..*arity).map(|_| format!("d{}", rng.below(6))).collect())
                .collect()
        })
        .collect();

    Scenario { text, facts }
}

fn build_source(scenario: &Scenario, m: &Mapping) -> Instance {
    let mut src = Instance::empty(m.source().clone());
    for (i, rows) in scenario.facts.iter().enumerate() {
        for row in rows {
            let tuple: dex_relational::Tuple = row
                .iter()
                .map(|s| Value::str(s.clone()))
                .collect::<Vec<_>>()
                .into();
            src.insert(&format!("S{i}"), tuple).unwrap();
        }
    }
    src
}

/// Delete rule `k mod (#rules)` — st-tgd, target tgd, or egd — giving
/// a syntactic sub-mapping to compare against.
fn drop_one_rule(m: &Mapping, k: usize) -> Option<Mapping> {
    let (s, t, e) = (
        m.st_tgds().len(),
        m.target_tgds().len(),
        m.target_egds().len(),
    );
    let total = s + t + e;
    if total < 2 {
        return None;
    }
    let k = k % total;
    let mut st = m.st_tgds().to_vec();
    let mut tt = m.target_tgds().to_vec();
    let mut eg = m.target_egds().to_vec();
    if k < s {
        st.remove(k);
    } else if k < s + t {
        tt.remove(k - s);
    } else {
        eg.remove(k - s - t);
    }
    Mapping::with_target_deps(m.source().clone(), m.target().clone(), st, tt, eg).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimizer_output_chases_equivalently(seed in 0u64..u64::MAX) {
        let scenario = build_scenario(seed);
        let text = &scenario.text;
        let m = parse_mapping(text).expect(text);
        let out = optimize(&m);
        prop_assert!(
            out.refused.is_none(),
            "stratified mapping refused: {:?}\n{}",
            out.refused,
            text
        );
        let src = build_source(&scenario, &m);
        match (exchange(&m, &src), exchange(&out.mapping, &src)) {
            (Ok(a), Ok(b)) => prop_assert!(
                homomorphically_equivalent(&a.target, &b.target),
                "optimized mapping diverged on a random source\n\
                 original:\n{}\noptimized rewrites: {:#?}",
                text,
                out.rewrites
            ),
            // Key egds can clash two constants; equivalent mappings
            // must clash on the same sources.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "one side failed, the other chased: {a:?} vs {b:?}\n{text}"
            ),
        }
    }

    #[test]
    fn containment_is_reflexive(seed in 0u64..u64::MAX) {
        let text = build_scenario(seed).text;
        let m = parse_mapping(&text).expect(&text);
        prop_assert!(
            matches!(contains(&m, &m), ContainmentVerdict::Holds),
            "m ⊑ m must hold:\n{text}"
        );
        prop_assert!(equivalent(&m, &m).holds(), "m ≡ m must hold:\n{text}");
    }

    #[test]
    fn refutation_witnesses_re_verify(seed in 0u64..u64::MAX) {
        let text = build_scenario(seed).text;
        let m = parse_mapping(&text).expect(&text);
        let Some(sub) = drop_one_rule(&m, seed as usize) else { return };
        // sub ⊑ m may fail (the deleted rule constrained something);
        // m ⊑ sub always holds (sub is a syntactic subset). Either
        // way, every Fails verdict must carry an honest witness.
        let v = equivalent(&sub, &m);
        if let ContainmentVerdict::Fails(w) = &v.forward {
            prop_assert!(
                verify_containment_witness(&sub, &m, w),
                "forward witness failed re-verification:\n{text}"
            );
        }
        prop_assert!(
            !matches!(v.backward, ContainmentVerdict::Fails(_)),
            "a syntactic sub-mapping cannot refute m ⊑ sub:\n{text}"
        );
    }
}
