//! Pins every stable diagnostic code — message, span, and witness — on
//! the `.dex` fixture corpus under `examples/mappings/`. These tests
//! are the compatibility contract for the `DEXnnn` registry: a change
//! that moves a span, rewords a message out of recognition, or drops a
//! witness must show up here.
//!
//! `DEX202` (function terms) is pinned on a constructed mapping because
//! the `.dex` surface syntax deliberately has no Skolem-term form.

use dex_analyze::{analyze, parse_error_diagnostic, Code, Diagnostic, Severity, Witness};
use dex_chase::verify_witness;
use dex_logic::{parse_mapping_with_spans, Atom, Mapping, StTgd, Term};
use dex_relational::{Constant, RelSchema, Schema};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/mappings")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn lint(name: &str) -> (Mapping, Vec<Diagnostic>) {
    let (m, sm) = parse_mapping_with_spans(&fixture(name)).expect(name);
    let ds = analyze(&m, Some(&sm));
    (m, ds)
}

fn find(ds: &[Diagnostic], code: Code) -> &Diagnostic {
    ds.iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in {ds:#?}"))
}

#[test]
fn dex000_parse_error_with_point_span() {
    let err = parse_mapping_with_spans(&fixture("bad_syntax.dex")).unwrap_err();
    let d = parse_error_diagnostic(&err);
    assert_eq!(d.code, Code::Dex000);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("expected `;`"), "{}", d.message);
    let s = d.span.unwrap();
    assert_eq!((s.line, s.col), (5, 1));
}

#[test]
fn dex001_non_termination_with_verifiable_cycle() {
    let (m, ds) = lint("bad_non_terminating.dex");
    let d = find(&ds, Code::Dex001);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("may not terminate"), "{}", d.message);
    assert!(d.message.contains("Succ.1 —∃→ Succ.1"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 7);
    match d.witness.as_ref().unwrap() {
        Witness::Cycle(c) => {
            assert!(verify_witness(m.target_tgds(), c), "witness must re-verify");
            assert_eq!(c.tgd_indices(), vec![0]);
        }
        other => panic!("{other:?}"),
    }
    assert!(d.notes.iter().any(|n| n.contains("target tgd(s) #0")));
}

#[test]
fn dex002_joint_acyclicity_certificate() {
    let (m, ds) = lint("ja_terminating.dex");
    let d = find(&ds, Code::Dex002);
    assert_eq!(d.severity, Severity::Info);
    assert!(
        d.message.contains("joint acyclicity certifies"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 10);
    match d.witness.as_ref().unwrap() {
        Witness::Cycle(c) => {
            // The WA counterexample is real — only the stronger
            // criterion rescues the mapping.
            assert!(
                verify_witness(m.target_tgds(), c),
                "WA counterexample must re-verify"
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn dex101_unused_source_at_its_declaration() {
    let (_, ds) = lint("bad_unused.dex");
    let d = find(&ds, Code::Dex101);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("`Ghost` is never read"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 4);
    assert_eq!(
        d.witness,
        Some(Witness::Relation(dex_relational::Name::new("Ghost")))
    );
}

#[test]
fn dex102_unproduced_target_at_its_declaration() {
    let (_, ds) = lint("bad_unused.dex");
    let d = find(&ds, Code::Dex102);
    assert!(
        d.message.contains("`Phantom` is never produced"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 6);
    assert_eq!(
        d.witness,
        Some(Witness::Relation(dex_relational::Name::new("Phantom")))
    );
}

#[test]
fn dex103_singleton_variable_names_the_variable() {
    let (_, ds) = lint("bad_non_terminating.dex");
    let d = find(&ds, Code::Dex103);
    assert!(d.message.contains("occur exactly once"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 7);
    assert_eq!(
        d.witness,
        Some(Witness::Variables(vec![dex_relational::Name::new("x")]))
    );
}

#[test]
fn dex104_constant_clash_with_both_constants() {
    let (_, ds) = lint("bad_clash.dex");
    let d = find(&ds, Code::Dex104);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("unsatisfiable"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 6);
    assert_eq!(
        d.witness,
        Some(Witness::ConstantClash(
            Constant::Str("a".into()),
            Constant::Str("b".into()),
        ))
    );
}

#[test]
fn dex105_redundant_tgd_at_the_implied_rule() {
    let (_, ds) = lint("bad_redundant.dex");
    let d = find(&ds, Code::Dex105);
    assert!(
        d.message.contains("implied by the remaining dependencies"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 6);
    assert_eq!(d.witness, Some(Witness::TgdIndices(vec![0])));
}

#[test]
fn dex201_self_join_refusal() {
    let (_, ds) = lint("bad_uncompilable.dex");
    let d = find(&ds, Code::Dex201);
    assert!(d.message.contains("joins `S` with itself"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 5);
    assert_eq!(
        d.witness,
        Some(Witness::Relation(dex_relational::Name::new("S")))
    );
}

#[test]
fn dex202_function_term_refusal() {
    // Constructed: Emp(x) -> Card(f(x)) — no surface syntax for f(x).
    let source =
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap();
    let target =
        Schema::with_relations(vec![RelSchema::untyped("Card", vec!["id"]).unwrap()]).unwrap();
    let tgd = StTgd::new(
        vec![Atom::new("Emp", vec![Term::var("x")])],
        vec![Atom::new(
            "Card",
            vec![Term::func("f", vec![Term::var("x")])],
        )],
    );
    let m = Mapping::new(source, target, vec![tgd]).unwrap();
    let ds = analyze(&m, None);
    let d = find(&ds, Code::Dex202);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("function term"), "{}", d.message);
    assert!(dex_core::compile(&m).is_err());
}

#[test]
fn dex203_shape_disagreement_lists_both_tgds() {
    let (_, ds) = lint("bad_redundant.dex");
    let d = find(&ds, Code::Dex203);
    assert!(
        d.message.contains("disagree on which columns"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 6);
    assert_eq!(d.witness, Some(Witness::TgdIndices(vec![0, 1])));
}

#[test]
fn dex204_target_tgds_outside_fragment() {
    let (_, ds) = lint("bad_non_terminating.dex");
    let d = find(&ds, Code::Dex204);
    assert!(
        d.message.contains("outside the compilable fragment"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 7);
}

#[test]
fn dex205_approximate_fidelity_names_the_shared_existential() {
    let (_, ds) = lint("approx_ids.dex");
    let d = find(&ds, Code::Dex205);
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("only approximately"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 7);
    assert!(d.notes.iter().any(|n| n.contains("`z`")), "{:?}", d.notes);
}

#[test]
fn dex206_duplicate_base_lists_contributions() {
    let (_, ds) = lint("bad_redundant.dex");
    let d = find(&ds, Code::Dex206);
    assert!(d.message.contains("`Emp` feeds `T`"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 6);
    assert_eq!(d.witness, Some(Witness::TgdIndices(vec![0, 1])));
}

#[test]
fn dex301_compose_refusal_on_target_deps() {
    let (_, ds) = lint("employees.dex");
    let d = find(&ds, Code::Dex301);
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("compose() refuses"), "{}", d.message);
}

#[test]
fn dex302_max_recovery_refusal_on_multi_atom_rhs() {
    let (_, ds) = lint("university.dex");
    let d = find(&ds, Code::Dex302);
    assert_eq!(d.severity, Severity::Info);
    assert!(
        d.message
            .contains("maximum_recovery() supports only single-atom conclusions"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 6);
}

#[test]
fn dex601_deletable_dependency_with_machine_applicable_fix() {
    let (_, ds) = lint("redundant_subsumed.dex");
    let d = find(&ds, Code::Dex601);
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.message
            .contains("verified equivalence-preserving rewrite"),
        "{}",
        d.message
    );
    assert_eq!(d.span.unwrap().line, 11);
    let s = d.suggestion.as_ref().expect("DEX601 is machine-applicable");
    assert_eq!(s.replacement, "", "deletion suggestion");
    assert_eq!((s.span.line, s.span.end_line), (11, 11));
}

#[test]
fn dex602_redundant_premise_atom_with_pruned_replacement() {
    let (_, ds) = lint("redundant_premise.dex");
    let d = find(&ds, Code::Dex602);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("redundant"), "{}", d.message);
    assert_eq!(d.span.unwrap().line, 7);
    let s = d.suggestion.as_ref().expect("DEX602 is machine-applicable");
    assert_eq!(s.replacement, "Emp(x, y) -> T(y, x);");
}

#[test]
fn dex603_summary_counts_the_verified_rewrites() {
    let (_, ds) = lint("redundant_subsumed.dex");
    let d = find(&ds, Code::Dex603);
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.message.contains("equivalent to a smaller one"),
        "{}",
        d.message
    );
    assert!(d.message.contains("3 verified rewrites"), "{}", d.message);
    assert_eq!(d.notes.len(), 3, "one note per rewrite: {:#?}", d.notes);
}

#[test]
fn eq_fixture_pair_is_equivalent_and_eq_c_differs_with_witness() {
    let a = parse_mapping_with_spans(&fixture("eq_a.dex")).unwrap().0;
    let b = parse_mapping_with_spans(&fixture("eq_b.dex")).unwrap().0;
    let c = parse_mapping_with_spans(&fixture("eq_c.dex")).unwrap().0;
    assert!(dex_analyze::equivalent(&a, &b).holds());
    let v = dex_analyze::equivalent(&a, &c);
    assert!(v.refuted(), "eq_a and eq_c must provably differ");
    for (m1, m2, dir) in [(&a, &c, &v.forward), (&c, &a, &v.backward)] {
        if let dex_analyze::ContainmentVerdict::Fails(w) = dir {
            assert!(
                dex_analyze::verify_containment_witness(m1, m2, w),
                "witness must re-verify"
            );
        }
    }
}

#[test]
fn good_fixtures_carry_no_warnings_or_errors() {
    for name in [
        "employees.dex",
        "university.dex",
        "evolution.dex",
        "approx_ids.dex",
    ] {
        let (_, ds) = lint(name);
        assert!(
            ds.iter().all(|d| d.severity == Severity::Info),
            "{name} raises non-info diagnostics: {ds:#?}"
        );
    }
}
