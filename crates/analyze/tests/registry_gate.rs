//! Registry-coverage gate: the `DEXnnn` table in the repository README
//! and the `Code` enum must describe the same registry.
//!
//! * every registered code has exactly one README row, carrying the
//!   code's default severity,
//! * every README row names a registered code (no stale rows after a
//!   lint is retired),
//! * every registered code has a long-form `--explain` text (so the
//!   CI step that runs `dexcli lint --explain` over the README's codes
//!   can never hit an unexplained one).
//!
//! CI extracts the code list *from the README* (not from a hardcoded
//! list) and feeds it to `dexcli lint --explain`; this test is what
//! makes that extraction trustworthy.

use dex_analyze::{Code, Severity};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Parse `| DEXnnn | severity | meaning |` rows out of the README's
/// registry table.
fn readme_registry() -> BTreeMap<String, String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(code) = cells.next() else { continue };
        if !(code.starts_with("DEX") && code[3..].chars().all(|c| c.is_ascii_digit())) {
            continue;
        }
        let Some(severity) = cells.next() else {
            continue;
        };
        let prev = rows.insert(code.to_string(), severity.to_string());
        assert!(prev.is_none(), "README lists {code} twice");
    }
    rows
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

#[test]
fn readme_table_matches_code_registry() {
    let rows = readme_registry();
    assert!(
        !rows.is_empty(),
        "README registry table not found — did the table format change?"
    );

    for code in Code::ALL {
        let row = rows.get(code.as_str());
        assert!(
            row.is_some(),
            "{code} is registered in Code::ALL but has no README registry row"
        );
        let want = severity_str(code.default_severity());
        assert_eq!(
            row.map(String::as_str),
            Some(want),
            "README severity for {code} disagrees with Code::default_severity ({want})"
        );
    }

    for code in rows.keys() {
        assert!(
            Code::parse(code).is_some(),
            "README lists {code} but it is not a registered Code — stale row?"
        );
    }
}

#[test]
fn every_readme_code_has_explain_text() {
    for (code, _) in readme_registry() {
        let parsed = Code::parse(&code).unwrap_or_else(|| panic!("{code} unregistered"));
        assert!(
            parsed.explanation().len() > 80,
            "{code} --explain text is missing or too short"
        );
    }
}
