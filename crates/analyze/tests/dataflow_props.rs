//! Property test pinning the static dataflow closure to the dynamic
//! chase: for every value the chase places at a target position, the
//! [`FlowGraph::closure`] must have predicted how it could get there.
//!
//! * an invented value (labeled null or Skolem term) only appears at
//!   positions the closure marks `invented`;
//! * a constant either appears in the closure's constant set for the
//!   position, or equals a value stored at one of the position's
//!   predicted provenance source positions.
//!
//! The generator covers multi-atom premises, shared/existential/const
//! conclusion terms, full target tgds, and key egds (whose merges
//! rewrite invented values in place — the part static analysis most
//! easily gets wrong).

use dex_analyze::{FlowGraph, PosRef};
use dex_chase::exchange;
use dex_logic::parse_mapping;
use dex_relational::{Instance, Value};
use proptest::prelude::*;
use std::fmt::Write as _;

/// splitmix64 — deterministic stream from the strategy-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

/// A generated scenario: `.dex` mapping text plus source facts
/// (per source relation, rows of string values).
struct Scenario {
    text: String,
    facts: Vec<Vec<Vec<String>>>,
    src_arities: Vec<usize>,
}

/// A conclusion term: constant `'k<n>'` (rarely) or variable `v<n>`
/// over a pool wider than the premise's, so some variables come out
/// existential.
fn conclusion_term(rng: &mut Rng) -> String {
    if rng.below(5) == 0 {
        format!("'k{}'", rng.below(4))
    } else {
        format!("v{}", rng.below(8))
    }
}

fn build_scenario(seed: u64) -> Scenario {
    let mut rng = Rng(seed);
    let src_arities: Vec<usize> = (0..1 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();
    let tgt_arities: Vec<usize> = (0..1 + rng.below(2)).map(|_| 1 + rng.below(3)).collect();

    let mut text = String::new();
    for (i, a) in src_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("a{p}")).collect();
        let _ = writeln!(text, "source S{i}({});", attrs.join(", "));
    }
    for (i, a) in tgt_arities.iter().enumerate() {
        let attrs: Vec<String> = (0..*a).map(|p| format!("b{p}")).collect();
        let _ = writeln!(text, "target T{i}({});", attrs.join(", "));
    }
    // Key egds: merges rewrite invented values in place.
    for (i, a) in tgt_arities.iter().enumerate() {
        if *a >= 2 && rng.below(2) == 0 {
            let _ = writeln!(text, "key T{i}(b0);");
        }
    }

    // st-tgds: premise variables v0..v5, conclusions may reuse them
    // (frontier), pick fresh ones (existential), or write constants.
    for _ in 0..1 + rng.below(3) {
        let lhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(src_arities.len() as u64);
                let args: Vec<String> = (0..src_arities[rel])
                    .map(|_| format!("v{}", rng.below(6)))
                    .collect();
                format!("S{rel}({})", args.join(", "))
            })
            .collect();
        let rhs: Vec<String> = (0..1 + rng.below(2))
            .map(|_| {
                let rel = rng.below(tgt_arities.len() as u64);
                let args: Vec<String> = (0..tgt_arities[rel])
                    .map(|_| conclusion_term(&mut rng))
                    .collect();
                format!("T{rel}({})", args.join(", "))
            })
            .collect();
        let _ = writeln!(text, "{} -> {};", lhs.join(" & "), rhs.join(" & "));
    }

    // Occasionally a FULL target tgd (conclusion variables folded into
    // the premise, so the chase terminates).
    if rng.below(3) == 0 {
        let lhs_rel = rng.below(tgt_arities.len() as u64);
        let rhs_rel = rng.below(tgt_arities.len() as u64);
        let lhs_arity = tgt_arities[lhs_rel];
        let lhs_args: Vec<String> = (0..lhs_arity).map(|p| format!("u{p}")).collect();
        let rhs_args: Vec<String> = (0..tgt_arities[rhs_rel])
            .map(|_| {
                if rng.below(6) == 0 {
                    format!("'k{}'", rng.below(4))
                } else {
                    format!("u{}", rng.below(lhs_arity as u64))
                }
            })
            .collect();
        let _ = writeln!(
            text,
            "T{lhs_rel}({}) -> T{rhs_rel}({});",
            lhs_args.join(", "),
            rhs_args.join(", ")
        );
    }

    // Source facts: values from a pool wide enough that accidental
    // collisions (which would weaken the provenance check) are rare.
    let facts = src_arities
        .iter()
        .map(|arity| {
            (0..rng.below(4))
                .map(|_| {
                    (0..*arity)
                        .map(|_| format!("d{}", rng.below(500)))
                        .collect()
                })
                .collect()
        })
        .collect();

    Scenario {
        text,
        facts,
        src_arities,
    }
}

/// Does `v` appear at source position `p` in `src`?
fn appears(src: &Instance, p: &PosRef, v: &Value) -> bool {
    src.relations()
        .filter(|r| r.name() == &p.relation)
        .any(|r| r.iter().any(|t| t.iter().nth(p.position) == Some(v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn static_provenance_covers_chase_lineage(seed in 0u64..u64::MAX) {
        let scenario = build_scenario(seed);
        let text = &scenario.text;
        let m = parse_mapping(text).expect(text);
        let mut src = Instance::empty(m.source().clone());
        for (i, rows) in scenario.facts.iter().enumerate() {
            for row in rows {
                prop_assert_eq!(row.len(), scenario.src_arities[i]);
                let tuple: dex_relational::Tuple = row
                    .iter()
                    .map(|s| Value::str(s.clone()))
                    .collect::<Vec<_>>()
                    .into();
                src.insert(&format!("S{i}"), tuple).unwrap();
            }
        }

        // Key egds can clash two constants — then no solution exists
        // and there is no lineage to check.
        let result = match exchange(&m, &src) {
            Ok(r) => r,
            Err(_) => return,
        };

        let closure = FlowGraph::build(&m).closure();
        for rel in result.target.relations() {
            for t in rel.iter() {
                for (pos, v) in t.iter().enumerate() {
                    let p = PosRef::new(rel.name().clone(), pos);
                    match v {
                        Value::Null(_) | Value::Skolem(..) => prop_assert!(
                            closure.invented.contains(&p),
                            "invented value {:?} at unpredicted position {}\nmapping:\n{}",
                            v, p, text
                        ),
                        Value::Const(c) => {
                            let predicted = closure.constants_of(&p).contains(c)
                                || closure
                                    .sources_of(&p)
                                    .iter()
                                    .any(|s| appears(&src, s, v));
                            prop_assert!(
                                predicted,
                                "constant {:?} at {} has no predicted origin \
                                 (sources {:?}, constants {:?})\nmapping:\n{}",
                                v, p,
                                closure.sources_of(&p),
                                closure.constants_of(&p),
                                text
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Regression: an egd merge rewrites an invented value at EVERY
/// position holding it, not just the equated one — the closure must
/// carry the forced constant across the shared-existential sibling.
#[test]
fn egd_merge_propagates_through_shared_existential() {
    let m = parse_mapping(
        "source R(a);\ntarget T(a, b);\ntarget U(b);\n\
         R(x) -> T(x, y) & U(y);\nT(x, t) -> t = 'c';",
    )
    .unwrap();
    let closure = FlowGraph::build(&m).closure();
    // The chase invents y at T[1] and U[0], then the egd rewrites BOTH
    // occurrences to 'c'.
    let u0 = PosRef::new("U", 0);
    assert!(
        closure
            .constants_of(&u0)
            .iter()
            .any(|c| c.to_string() == "c"),
        "{closure:?}"
    );
    let mut src = Instance::empty(m.source().clone());
    src.insert("R", vec![Value::str("alice")].into()).unwrap();
    let result = exchange(&m, &src).unwrap();
    let u = result
        .target
        .relations()
        .find(|r| r.name() == &dex_relational::Name::new("U"))
        .unwrap();
    let vals: Vec<String> = u
        .iter()
        .map(|t| t.iter().next().unwrap().to_string())
        .collect();
    assert_eq!(vals, vec!["c".to_string()]);
}
