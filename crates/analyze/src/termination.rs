//! Termination pass: `DEX001` / `DEX002`.
//!
//! Classifies the mapping's *target* tgds (the only rules the chase
//! iterates to fixpoint — st-tgds fire exactly one round) with
//! [`dex_chase::classify_termination`]:
//!
//! * weakly acyclic → silent;
//! * jointly acyclic but not weakly acyclic → `DEX002` (info): the
//!   classical check would reject this mapping, the stronger condition
//!   certifies it;
//! * neither → `DEX001` (error), carrying the special-edge cycle as a
//!   [`Witness::Cycle`] that [`dex_chase::verify_witness`] re-checks.

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_chase::{classify_termination, CycleWitness, TerminationClass};
use dex_logic::{Mapping, SourceMap, Span};

/// The span of the tgd anchoring a witness: the first contributor of
/// the cycle's special (first) edge.
fn witness_span(w: &CycleWitness, spans: Option<&SourceMap>) -> Option<Span> {
    let ti = *w.edges.first()?.tgds.first()?;
    spans.and_then(|s| s.target_tgds.get(ti).copied())
}

/// Run the termination pass.
pub fn termination_pass(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    let report = classify_termination(mapping.target_tgds());
    match (report.class, report.witness) {
        (TerminationClass::WeaklyAcyclic, _) => vec![],
        (TerminationClass::JointlyAcyclic, Some(w)) => {
            let span = witness_span(&w, spans);
            vec![Diagnostic::new(
                Code::Dex002,
                format!(
                    "target tgds are not weakly acyclic (cycle {w}), but joint \
                     acyclicity certifies the chase terminates"
                ),
            )
            .with_span(span)
            .with_witness(Witness::Cycle(w))]
        }
        (TerminationClass::Unknown, Some(w)) => {
            let span = witness_span(&w, spans);
            let tgds = w.tgd_indices();
            let rendered: Vec<String> = tgds
                .iter()
                .filter_map(|&i| mapping.target_tgds().get(i))
                .map(|t| format!("`{t}`"))
                .collect();
            vec![Diagnostic::new(
                Code::Dex001,
                format!(
                    "the chase over the target tgds may not terminate: the \
                     dependency graph has the special-edge cycle {w}"
                ),
            )
            .with_span(span)
            .with_witness(Witness::Cycle(w))
            .with_note(format!(
                "cycle built from target tgd(s) {}: {}",
                tgds.iter()
                    .map(|i| format!("#{i}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                rendered.join(", ")
            ))
            .with_note(
                "neither weak nor joint acyclicity certifies termination; \
                 chasing this mapping may hit the step limit",
            )]
        }
        // A witness always accompanies a non-WeaklyAcyclic class.
        (_, None) => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use dex_chase::verify_witness;
    use dex_logic::parse_mapping_with_spans;

    #[test]
    fn weakly_acyclic_mapping_is_silent() {
        let (m, sm) = parse_mapping_with_spans(
            "source R(a);\ntarget S(a);\ntarget T(a);\nR(x) -> S(x);\nS(x) -> T(x);",
        )
        .unwrap();
        assert!(termination_pass(&m, Some(&sm)).is_empty());
    }

    #[test]
    fn diverging_target_tgd_raises_dex001_with_verified_witness() {
        let (m, sm) = parse_mapping_with_spans(
            "source R(a);\ntarget S(a, b);\nR(x) -> S(x, x);\nS(x, y) -> S(y, z);",
        )
        .unwrap();
        let ds = termination_pass(&m, Some(&sm));
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, Code::Dex001);
        assert_eq!(d.severity, Severity::Error);
        // The span points at the offending target tgd (line 4).
        assert_eq!(d.span.unwrap().line, 4);
        match &d.witness {
            Some(Witness::Cycle(w)) => {
                assert!(verify_witness(m.target_tgds(), w));
            }
            other => panic!("expected cycle witness, got {other:?}"),
        }
    }

    #[test]
    fn ja_certified_mapping_raises_dex002_info() {
        // The separating example: WA rejects, JA certifies.
        let (m, sm) = parse_mapping_with_spans(
            "source R(a, b);\ntarget S(a, b);\ntarget T(a, b);\ntarget U(a);\n\
             R(x, y) -> S(x, y);\nS(x, y) -> T(y, z);\nT(x, y) & U(y) -> S(x, y);",
        )
        .unwrap();
        let ds = termination_pass(&m, Some(&sm));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex002);
        assert_eq!(ds[0].severity, Severity::Info);
        match &ds[0].witness {
            Some(Witness::Cycle(w)) => assert!(verify_witness(m.target_tgds(), w)),
            other => panic!("expected cycle witness, got {other:?}"),
        }
    }
}
