//! Operator-precheck pass: `DEX301` / `DEX302`.
//!
//! Static predictors of whether the mapping-management operators in
//! `dex-ops` would accept this mapping as an operand:
//!
//! * `DEX301` — [`dex_ops::compose()`] refuses operands with target
//!   dependencies;
//! * `DEX302` — [`dex_ops::maximum_recovery`] requires every st-tgd to
//!   have a single-atom, repeat-free, all-variable right-hand side.
//!
//! Both are informational: a mapping need not be composable or
//! invertible to be useful for exchange.

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_logic::{Mapping, SourceMap, Term};
use std::collections::BTreeSet;

/// Run the operator prechecks.
pub fn ops_pass(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if mapping.has_target_deps() {
        out.push(
            Diagnostic::new(
                Code::Dex301,
                "the mapping has target dependencies; compose() refuses such \
                 operands (composition is defined for st-tgd-only mappings here)",
            )
            .with_span(
                spans.and_then(|s| s.target_tgds.first().or(s.target_egds.first()).copied()),
            ),
        );
    }

    for (i, tgd) in mapping.st_tgds().iter().enumerate() {
        let span = spans.and_then(|s| s.st_tgds.get(i).copied());
        if tgd.rhs.len() != 1 {
            out.push(
                Diagnostic::new(
                    Code::Dex302,
                    format!(
                        "st-tgd #{i} has a {}-atom right-hand side; maximum_recovery() \
                         supports only single-atom conclusions",
                        tgd.rhs.len()
                    ),
                )
                .with_span(span),
            );
            continue;
        }
        let atom = &tgd.rhs[0];
        let mut seen = BTreeSet::new();
        let mut repeated: Vec<dex_relational::Name> = Vec::new();
        let mut non_var = false;
        for t in &atom.args {
            match t {
                Term::Var(v) => {
                    if !seen.insert(v.clone()) && !repeated.contains(v) {
                        repeated.push(v.clone());
                    }
                }
                _ => non_var = true,
            }
        }
        if !repeated.is_empty() {
            out.push(
                Diagnostic::new(
                    Code::Dex302,
                    format!(
                        "st-tgd #{i} repeats variable(s) {} in its target atom; \
                         maximum_recovery() needs per-disjunct equality guards it \
                         does not implement",
                        repeated
                            .iter()
                            .map(|v| format!("`{v}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                )
                .with_span(span)
                .with_witness(Witness::Variables(repeated)),
            );
        }
        if non_var {
            out.push(
                Diagnostic::new(
                    Code::Dex302,
                    format!(
                        "st-tgd #{i} uses a non-variable argument in its target atom; \
                         maximum_recovery() supports only variable arguments"
                    ),
                )
                .with_span(span),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping_with_spans;
    use dex_ops::maximum_recovery;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (m, sm) = parse_mapping_with_spans(src).unwrap();
        ops_pass(&m, Some(&sm))
    }

    #[test]
    fn plain_gav_mapping_is_silent() {
        let ds = lint("source Father(p, c);\ntarget Parent(p, c);\nFather(x, y) -> Parent(x, y);");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn target_deps_raise_dex301() {
        let ds = lint("source R(a);\ntarget S(a);\ntarget T(a);\nS(x) -> T(x);\nR(x) -> S(x);");
        assert!(ds.iter().any(|d| d.code == Code::Dex301));
    }

    #[test]
    fn precheck_agrees_with_maximum_recovery() {
        for src in [
            "source R(a);\ntarget S(a, b);\nR(x) -> S(x, x);",
            "source R(a);\ntarget S(a);\ntarget T(a);\nR(x) -> S(x) & T(x);",
            "source R(a);\ntarget S(a, t);\nR(x) -> S(x, 'tag');",
            "source Father(p, c);\ntarget Parent(p, c);\nFather(x, y) -> Parent(x, y);",
        ] {
            let (m, sm) = parse_mapping_with_spans(src).unwrap();
            let predicted_refusal = ops_pass(&m, Some(&sm))
                .iter()
                .any(|d| d.code == Code::Dex302);
            assert_eq!(
                predicted_refusal,
                maximum_recovery(&m).is_err(),
                "disagreement on {src}"
            );
        }
    }
}
