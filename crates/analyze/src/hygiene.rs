//! Hygiene pass: `DEX101`–`DEX105`.
//!
//! Safety and cleanliness lints over the mapping's rules and schemas:
//!
//! * `DEX101` — a declared source relation no rule reads;
//! * `DEX102` — a declared target relation no rule produces;
//! * `DEX103` — a premise variable used exactly once in its rule
//!   (often a typo: the join or export it was meant for never happens);
//! * `DEX104` — an egd that equates two distinct constants, making it
//!   unsatisfiable whenever its premise matches;
//! * `DEX105` — an st-tgd implied by the others, shown by a chase-based
//!   implication check: freeze the tgd's premise into a canonical
//!   instance, chase the *remaining* dependencies over it, and test
//!   whether the tgd is already satisfied.

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_chase::classify_termination;
use dex_logic::{Mapping, SourceMap, StTgd, Term};
use dex_relational::{Constant, Name};
use std::collections::{BTreeMap, BTreeSet};

/// Count every occurrence of every variable (no deduplication —
/// `Atom::collect_vars` dedups, which is exactly wrong here).
fn occurrence_counts(tgd: &StTgd, counts: &mut BTreeMap<Name, usize>) {
    fn walk(t: &Term, counts: &mut BTreeMap<Name, usize>) {
        match t {
            Term::Var(v) => *counts.entry(v.clone()).or_default() += 1,
            Term::Const(_) => {}
            Term::Func(_, args) => args.iter().for_each(|a| walk(a, counts)),
        }
    }
    for atom in tgd.lhs.iter().chain(tgd.rhs.iter()) {
        for t in &atom.args {
            walk(t, counts);
        }
    }
}

fn unused_relations(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    let read: BTreeSet<&Name> = mapping
        .st_tgds()
        .iter()
        .flat_map(|t| t.lhs.iter())
        .map(|a| &a.relation)
        .collect();
    for rel in mapping.source().relations() {
        if !read.contains(rel.name()) {
            out.push(
                Diagnostic::new(
                    Code::Dex101,
                    format!("source relation `{}` is never read by any rule", rel.name()),
                )
                .with_span(spans.and_then(|s| s.source_decl(rel.name().as_str())))
                .with_witness(Witness::Relation(rel.name().clone()))
                .with_note("remove the declaration, or add a rule exporting it"),
            );
        }
    }

    let produced: BTreeSet<&Name> = mapping
        .st_tgds()
        .iter()
        .chain(mapping.target_tgds().iter())
        .flat_map(|t| t.rhs.iter())
        .map(|a| &a.relation)
        .collect();
    for rel in mapping.target().relations() {
        if !produced.contains(rel.name()) {
            out.push(
                Diagnostic::new(
                    Code::Dex102,
                    format!(
                        "target relation `{}` is never produced by any rule",
                        rel.name()
                    ),
                )
                .with_span(spans.and_then(|s| s.target_decl(rel.name().as_str())))
                .with_witness(Witness::Relation(rel.name().clone()))
                .with_note("every exchange leaves it empty"),
            );
        }
    }
}

type SpanSliceOf = fn(&SourceMap) -> &[dex_logic::Span];

fn singleton_variables(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    let groups: [(&[StTgd], SpanSliceOf); 2] = [
        (mapping.st_tgds(), |s| &s.st_tgds),
        (mapping.target_tgds(), |s| &s.target_tgds),
    ];
    for (tgds, span_of) in groups {
        for (ti, tgd) in tgds.iter().enumerate() {
            let mut counts = BTreeMap::new();
            occurrence_counts(tgd, &mut counts);
            let body_vars: BTreeSet<Name> = tgd.lhs_vars().into_iter().collect();
            // Head-only singletons are existentials — intentional; a
            // body variable used exactly once joins nothing and
            // exports nothing.
            let singles: Vec<Name> = counts
                .into_iter()
                .filter(|(v, n)| *n == 1 && body_vars.contains(v.as_str()))
                .map(|(v, _)| v)
                .collect();
            if !singles.is_empty() {
                let list = singles
                    .iter()
                    .map(|v| format!("`{v}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push(
                    Diagnostic::new(
                        Code::Dex103,
                        format!(
                            "variable(s) {list} occur exactly once in `{tgd}`; the value \
                             is matched and then discarded"
                        ),
                    )
                    .with_span(spans.and_then(|s| span_of(s).get(ti).copied()))
                    .with_witness(Witness::Variables(singles))
                    .with_note("possibly a typo — singletons neither join nor export"),
                );
            }
        }
    }
}

fn constant_clashes(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    for (ei, egd) in mapping.target_egds().iter().enumerate() {
        // Union-find over the terms of the egd's equalities; a class
        // holding two distinct constants is unsatisfiable.
        let mut terms: Vec<Term> = Vec::new();
        let mut index: BTreeMap<Term, usize> = BTreeMap::new();
        let mut parent: Vec<usize> = Vec::new();
        let id = |t: &Term,
                  terms: &mut Vec<Term>,
                  parent: &mut Vec<usize>,
                  index: &mut BTreeMap<Term, usize>| {
            *index.entry(t.clone()).or_insert_with(|| {
                terms.push(t.clone());
                parent.push(parent.len());
                parent.len() - 1
            })
        };
        fn root(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for (a, b) in &egd.equalities {
            let ia = id(a, &mut terms, &mut parent, &mut index);
            let ib = id(b, &mut terms, &mut parent, &mut index);
            let (ra, rb) = (root(&mut parent, ia), root(&mut parent, ib));
            parent[ra] = rb;
        }
        let mut class_const: BTreeMap<usize, Constant> = BTreeMap::new();
        let mut clash: Option<(Constant, Constant)> = None;
        for (i, term) in terms.iter().enumerate() {
            if let Term::Const(c) = term {
                let r = root(&mut parent, i);
                match class_const.get(&r) {
                    Some(prev) if prev != c => {
                        clash = Some((prev.clone(), c.clone()));
                        break;
                    }
                    _ => {
                        class_const.insert(r, c.clone());
                    }
                }
            }
        }
        if let Some((a, b)) = clash {
            out.push(
                Diagnostic::new(
                    Code::Dex104,
                    format!(
                        "egd `{egd}` forces distinct constants `{a}` = `{b}`; it is \
                         unsatisfiable whenever its premise matches"
                    ),
                )
                .with_span(spans.and_then(|s| s.target_egds.get(ei).copied()))
                .with_witness(Witness::ConstantClash(a, b))
                .with_note("any source instance matching the premise has no solution"),
            );
        }
    }
}

fn redundant_tgds(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    if mapping.st_tgds().len() < 2 {
        return;
    }
    // The implication chase must terminate to be a decision procedure.
    if !classify_termination(mapping.target_tgds()).terminates() {
        return;
    }
    // Delegates to the semantic layer's single deletion oracle so this
    // pass, `DEX601`, and `dexcli optimize` can never disagree about
    // which rules are redundant.
    for i in 0..mapping.st_tgds().len() {
        if crate::semantic::st_tgd_deletable(mapping, i) {
            let rest: Vec<usize> = (0..mapping.st_tgds().len()).filter(|j| *j != i).collect();
            let tgd = &mapping.st_tgds()[i];
            out.push(
                Diagnostic::new(
                    Code::Dex105,
                    format!(
                        "st-tgd `{tgd}` is implied by the remaining dependencies; \
                         deleting it changes no solution"
                    ),
                )
                .with_span(spans.and_then(|s| s.st_tgds.get(i).copied()))
                .with_witness(Witness::TgdIndices(rest))
                .with_note(
                    "shown by chasing the critical instance of the premise with the \
                     other rules and finding the conclusion already satisfied",
                ),
            );
        }
    }
}

/// Run the hygiene pass. `check_redundancy` gates the quadratic
/// chase-based `DEX105` check.
pub fn hygiene_pass(
    mapping: &Mapping,
    spans: Option<&SourceMap>,
    check_redundancy: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unused_relations(mapping, spans, &mut out);
    singleton_variables(mapping, spans, &mut out);
    constant_clashes(mapping, spans, &mut out);
    if check_redundancy {
        redundant_tgds(mapping, spans, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping_with_spans;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (m, sm) = parse_mapping_with_spans(src).unwrap();
        hygiene_pass(&m, Some(&sm), true)
    }

    #[test]
    fn clean_mapping_is_silent() {
        let ds = lint("source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn unused_source_relation_flagged_at_decl() {
        let ds = lint("source Emp(name);\nsource Ghost(a);\ntarget T(name);\nEmp(x) -> T(x);");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex101);
        assert_eq!(ds[0].span.unwrap().line, 2);
        assert_eq!(ds[0].witness, Some(Witness::Relation(Name::new("Ghost"))));
    }

    #[test]
    fn unproduced_target_relation_flagged_at_decl() {
        let ds = lint("source Emp(name);\ntarget T(name);\ntarget Void(a);\nEmp(x) -> T(x);");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex102);
        assert_eq!(ds[0].span.unwrap().line, 3);
    }

    #[test]
    fn singleton_variable_flagged() {
        let ds = lint("source Emp(name, dept);\ntarget T(name);\nEmp(x, d) -> T(x);");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex103);
        assert_eq!(ds[0].span.unwrap().line, 3);
        assert_eq!(
            ds[0].witness,
            Some(Witness::Variables(vec![Name::new("d")]))
        );
    }

    #[test]
    fn repeated_body_variable_not_a_singleton() {
        // `x` joins the two columns; `y` is exported: no lint.
        let ds = lint("source Emp(a, b);\ntarget T(a);\nEmp(x, x) -> T(x);");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn head_only_existential_not_a_singleton() {
        let ds = lint("source Emp(name);\ntarget T(name, mgr);\nEmp(x) -> T(x, y);");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn constant_clash_egd_flagged() {
        let ds = lint(
            "source R(a);\ntarget T(a, tag);\nR(x) -> T(x, 'v');\n\
             T(x, t) -> t = 'a' & t = 'b';",
        );
        let clash: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Dex104).collect();
        assert_eq!(clash.len(), 1);
        assert_eq!(clash[0].span.unwrap().line, 4);
        assert_eq!(
            clash[0].witness,
            Some(Witness::ConstantClash(
                Constant::Str("a".into()),
                Constant::Str("b".into()),
            ))
        );
    }

    #[test]
    fn consistent_constant_egd_not_flagged() {
        let ds = lint("source R(a);\ntarget T(a, tag);\nR(x) -> T(x, 'v');\nT(x, t) -> t = 'v';");
        assert!(ds.iter().all(|d| d.code != Code::Dex104), "{ds:?}");
    }

    #[test]
    fn subsumed_tgd_flagged_as_redundant() {
        // The second rule is the first with a weaker premise.
        let ds = lint(
            "source Emp(name, dept);\ntarget T(name, dept);\n\
             Emp(x, y) -> T(x, y);\nEmp(x, x) -> T(x, x);",
        );
        let red: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Dex105).collect();
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].span.unwrap().line, 4);
        assert_eq!(red[0].witness, Some(Witness::TgdIndices(vec![0])));
    }

    #[test]
    fn independent_tgds_not_redundant() {
        let ds = lint(
            "source A(x);\nsource B(x);\ntarget T(x);\ntarget U(x);\n\
             A(x) -> T(x);\nB(x) -> U(x);",
        );
        assert!(ds.iter().all(|d| d.code != Code::Dex105), "{ds:?}");
    }

    #[test]
    fn redundancy_via_target_tgd_detected() {
        // R(x) -> S(x) plus target S(x) -> T(x) imply R(x) -> T(x).
        let ds = lint(
            "source R(a);\ntarget S(a);\ntarget T(a);\n\
             R(x) -> S(x);\nR(x) -> T(x);\nS(x) -> T(x);",
        );
        let red: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Dex105).collect();
        assert_eq!(red.len(), 1, "{ds:?}");
        assert_eq!(red[0].span.unwrap().line, 5);
    }
}
