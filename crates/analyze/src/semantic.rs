//! Semantic pass: chase-based containment, equivalence, and the
//! provably-safe optimizer (`DEX601`–`DEX603`; `DEX604` is raised by
//! the compose/migration self-check surfaces, not by this pass).
//!
//! ## Containment
//!
//! A mapping `M₁ = (S, T, Σ₁)` is **contained** in `M₂ = (S, T, Σ₂)`
//! (written `M₁ ⊑ M₂`) when every solution pair of `M₁` is a solution
//! pair of `M₂` — equivalently, when `Σ₁ ⊨ Σ₂`. [`contains`] decides
//! this for terminating mappings with the classical critical-instance
//! construction (Beeri–Vardi; *Containment of Schema Mappings for Data
//! Exchange*): for each dependency `σ ∈ Σ₂`, freeze `σ`'s premise into
//! a canonical instance of labeled nulls ([`dex_chase::critical_instance`]),
//! chase it with `Σ₁`, and test whether `σ` already holds in the
//! result.
//!
//! * Every premise — source-side or target-side — freezes over a
//!   shadow vocabulary and chases through a *shim* mapping whose
//!   st-tgds copy the shadow verbatim into a combined schema holding
//!   both `M₁`'s source and target relations, and whose target
//!   dependencies are the whole of `Σ₁` (st-tgds included). Running
//!   `Σ₁` as *target* dependencies of the shim keeps the implication
//!   chase over **one** instance, which matters for egds: when a key
//!   merges two frozen premise nulls, the merge must rewrite the
//!   premise facts too — chasing the premise as a read-only source
//!   would leave it stale and misread implied dependencies as
//!   violated (`contains(m, m)` could fail).
//! * An egd clash while chasing a frozen premise means no `Σ₁`-solution
//!   pair exists over any instance matching that premise, so the
//!   dependency is **vacuously** implied.
//!
//! A failed check yields a [`ContainmentWitness`]: a concrete
//! source/target pair that *is* a solution under `M₁` and *violates*
//! the named dependency of `M₂`. [`verify_containment_witness`]
//! re-checks both halves from first principles, mirroring
//! [`dex_chase::verify_witness`] for termination counterexamples.
//!
//! Non-terminating inputs get a typed [`ContainmentVerdict::Undecided`]
//! refusal — the chase is only a decision procedure when it is
//! certified to halt (weak or joint acyclicity, per
//! [`dex_chase::classify_termination`]).
//!
//! ## Optimizer
//!
//! [`optimize`] applies four rewrites — conclusion splitting, implied-
//! dependency deletion (tgd subsumption and duplicate/implied egds),
//! and redundant-premise-atom pruning — and keeps a rewrite **only**
//! after the containment machinery proves it equivalence-preserving.
//! Deletions need a single containment obligation (the reduced set is
//! a syntactic subset of the original, so the original trivially
//! implies every surviving dependency); splits and prunes re-verify
//! both directions with [`equivalent`]. Rewrites are re-verified
//! *individually* because safety is not compositional: two
//! dependencies can each be implied by "the rest" and yet not be
//! jointly deletable (a duplicated rule is the canonical example).

use crate::diagnostic::{Code, Diagnostic, Suggestion, Witness};
use dex_chase::{classify_termination, critical_instance, exchange, ChaseError};
use dex_logic::{Atom, Egd, Mapping, SourceMap, StTgd, Term};
use dex_relational::{Instance, Name, RelSchema, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which dependency of the right-hand mapping a witness violates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WitnessDep {
    /// Index into `st_tgds()`.
    StTgd(usize),
    /// Index into `target_tgds()`.
    TargetTgd(usize),
    /// Index into `target_egds()`.
    TargetEgd(usize),
}

/// A machine-checkable counterexample to `M₁ ⊑ M₂`: a pair that is a
/// solution under `M₁` and violates one named dependency of `M₂`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ContainmentWitness {
    /// The counterexample source instance (a frozen premise after any
    /// egd merges, or empty when the violated dependency is
    /// target-side).
    pub source: Instance,
    /// Its chased target instance — together they satisfy every
    /// dependency of `M₁`.
    pub target: Instance,
    /// The dependency of `M₂` the pair violates.
    pub dependency: WitnessDep,
}

/// The outcome of a containment check.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ContainmentVerdict {
    /// `M₁ ⊑ M₂` — proven by chasing every critical instance.
    Holds,
    /// `M₁ ⋢ M₂` — with a re-checkable counterexample.
    Fails(Box<ContainmentWitness>),
    /// The chase-based procedure does not apply (non-terminating
    /// dependencies, function terms, or incomparable schemas).
    Undecided {
        /// Why the check was refused.
        reason: String,
    },
}

/// Both directions of [`contains`], as decided by [`equivalent`].
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EquivalenceVerdict {
    /// `M₁ ⊑ M₂`.
    pub forward: ContainmentVerdict,
    /// `M₂ ⊑ M₁`.
    pub backward: ContainmentVerdict,
}

impl EquivalenceVerdict {
    /// Are the mappings proven equivalent?
    pub fn holds(&self) -> bool {
        matches!(self.forward, ContainmentVerdict::Holds)
            && matches!(self.backward, ContainmentVerdict::Holds)
    }

    /// Is there a counterexample in either direction?
    pub fn refuted(&self) -> bool {
        matches!(self.forward, ContainmentVerdict::Fails(_))
            || matches!(self.backward, ContainmentVerdict::Fails(_))
    }
}

/// Why the chase-based machinery must refuse `mapping` as the chasing
/// (left-hand) side, if it must. The shim runs st-tgds and target tgds
/// together as target dependencies, so the combined set is what must
/// be certified terminating. (St-tgd premises read source relations,
/// which no conclusion writes, so certifying the combined set is never
/// harder than certifying the target tgds alone.)
fn chase_refusal(m: &Mapping) -> Option<String> {
    let mut combined = m.st_tgds().to_vec();
    combined.extend(m.target_tgds().iter().cloned());
    if classify_termination(&combined).terminates() {
        None
    } else {
        Some(
            "target tgds are not certified terminating (weak and joint acyclicity \
             both fail), so the implication chase may diverge"
                .to_string(),
        )
    }
}

enum Implied {
    Yes,
    No(Box<ContainmentWitness>),
    Unknown(String),
}

/// Shadow-relation prefix for the implication shim. Never rendered;
/// only needs to keep the shim's source vocabulary disjoint from the
/// combined source-plus-target schema.
const CRIT_PREFIX: &str = "crit__";

/// The implication shim for `m1`: st-tgds copy a shadow vocabulary
/// verbatim into a combined schema holding both of `m1`'s schemas, and
/// the *target* dependencies are all of `Σ₁` — `m1`'s st-tgds (their
/// premises read source relations, which live in the shim's target)
/// plus its target tgds and egds. Chasing a frozen premise through the
/// shim is the classical implication chase over a single instance:
/// egd merges rewrite the frozen premise facts, and tgds re-fire on
/// the merged facts, exactly as the procedure requires.
fn shim_mapping(m1: &Mapping) -> Option<Mapping> {
    let mut shadow_rels = Vec::new();
    let mut copy_tgds = Vec::new();
    let originals = || m1.source().relations().chain(m1.target().relations());
    for r in originals() {
        let shadow = format!("{CRIT_PREFIX}{}", r.name());
        let attrs: Vec<String> = r.attr_names().map(|a| a.to_string()).collect();
        shadow_rels.push(RelSchema::untyped(shadow.clone(), attrs).ok()?);
        let vars: Vec<Term> = (0..r.arity())
            .map(|i| Term::Var(Name::new(format!("v{i}"))))
            .collect();
        copy_tgds.push(StTgd::new(
            vec![Atom::new(shadow, vars.clone())],
            vec![Atom::new(r.name().clone(), vars)],
        ));
    }
    let src = Schema::with_relations(shadow_rels).ok()?;
    let tgt = Schema::with_relations(originals().cloned().collect()).ok()?;
    let mut target_tgds = m1.st_tgds().to_vec();
    target_tgds.extend(m1.target_tgds().iter().cloned());
    Mapping::with_target_deps(src, tgt, copy_tgds, target_tgds, m1.target_egds().to_vec()).ok()
}

/// Is the dependency with premise `premise` implied by `m1`? Freeze
/// the premise over the shim's shadow vocabulary, chase, split the
/// combined result back into a (source, target) pair, and let `check`
/// decide satisfaction on the pair.
fn implied_dep(
    m1: &Mapping,
    shim: &Mapping,
    premise: &[Atom],
    dependency: WitnessDep,
    check: &dyn Fn(&Instance, &Instance) -> bool,
) -> Implied {
    let prefixed: Vec<Atom> = premise
        .iter()
        .map(|a| Atom::new(format!("{CRIT_PREFIX}{}", a.relation), a.args.clone()))
        .collect();
    let Some(crit) = critical_instance(&prefixed, shim.source()) else {
        return Implied::Unknown(
            "cannot freeze the premise (function terms or schema mismatch)".to_string(),
        );
    };
    match exchange(shim, &crit.instance) {
        Ok(res) => {
            // The chase ran over one combined instance, so any egd
            // merges already rewrote the frozen premise facts. Split
            // the result back into the pair the dependency speaks
            // about; that pair satisfies every dependency of m1 (the
            // chase enforced them all), so on a failed check it is a
            // ready-made counterexample.
            let (Ok(src_part), Ok(tgt_part)) = (
                res.target.project_to_schema(m1.source()),
                res.target.project_to_schema(m1.target()),
            ) else {
                return Implied::Unknown("could not split the chased shim instance".to_string());
            };
            if check(&src_part, &tgt_part) {
                Implied::Yes
            } else {
                Implied::No(Box::new(ContainmentWitness {
                    source: src_part,
                    target: tgt_part,
                    dependency,
                }))
            }
        }
        // A hard egd clash while chasing the frozen premise means *no*
        // m1-solution pair exists over any instance matching the
        // premise: the dependency is vacuously implied.
        Err(ChaseError::EgdFailure { .. }) => Implied::Yes,
        Err(e) => Implied::Unknown(e.to_string()),
    }
}

/// Decide `M₁ ⊑ M₂`: is every solution pair of `m1` a solution pair of
/// `m2`? Equivalently: does `Σ₁` imply `Σ₂`? Sound and complete for
/// mappings whose chase is certified to terminate; refuses otherwise.
pub fn contains(m1: &Mapping, m2: &Mapping) -> ContainmentVerdict {
    if m1.source() != m2.source() || m1.target() != m2.target() {
        return ContainmentVerdict::Undecided {
            reason: "mappings are only comparable over identical source and target schemas"
                .to_string(),
        };
    }
    if let Some(reason) = chase_refusal(m1) {
        return ContainmentVerdict::Undecided { reason };
    }
    let Some(shim) = shim_mapping(m1) else {
        return ContainmentVerdict::Undecided {
            reason: "could not build the implication shim".to_string(),
        };
    };
    let mut unknown: Option<String> = None;
    let mut run = |premise: &[Atom],
                   dep: WitnessDep,
                   check: &dyn Fn(&Instance, &Instance) -> bool|
     -> Option<ContainmentVerdict> {
        match implied_dep(m1, &shim, premise, dep, check) {
            Implied::Yes => None,
            Implied::No(w) => Some(ContainmentVerdict::Fails(w)),
            Implied::Unknown(r) => {
                unknown.get_or_insert(r);
                None
            }
        }
    };
    for (i, t) in m2.st_tgds().iter().enumerate() {
        if let Some(v) = run(&t.lhs, WitnessDep::StTgd(i), &|s, j| t.satisfied_by(s, j)) {
            return v;
        }
    }
    for (i, t) in m2.target_tgds().iter().enumerate() {
        if let Some(v) = run(&t.lhs, WitnessDep::TargetTgd(i), &|_, j| {
            t.satisfied_by(j, j)
        }) {
            return v;
        }
    }
    for (i, e) in m2.target_egds().iter().enumerate() {
        if let Some(v) = run(&e.lhs, WitnessDep::TargetEgd(i), &|_, j| e.satisfied_by(j)) {
            return v;
        }
    }
    match unknown {
        Some(reason) => ContainmentVerdict::Undecided { reason },
        None => ContainmentVerdict::Holds,
    }
}

/// Decide `M₁ ≡ M₂` by checking containment both ways.
pub fn equivalent(m1: &Mapping, m2: &Mapping) -> EquivalenceVerdict {
    EquivalenceVerdict {
        forward: contains(m1, m2),
        backward: contains(m2, m1),
    }
}

/// Re-verify a [`ContainmentWitness`] from first principles: the pair
/// must be a solution under `m1` *and* violate the named dependency of
/// `m2`. Anything less is not a counterexample to `M₁ ⊑ M₂`.
pub fn verify_containment_witness(m1: &Mapping, m2: &Mapping, w: &ContainmentWitness) -> bool {
    if !m1.is_solution(&w.source, &w.target) {
        return false;
    }
    match w.dependency {
        WitnessDep::StTgd(i) => m2
            .st_tgds()
            .get(i)
            .is_some_and(|t| !t.satisfied_by(&w.source, &w.target)),
        WitnessDep::TargetTgd(i) => m2
            .target_tgds()
            .get(i)
            .is_some_and(|t| !t.satisfied_by(&w.target, &w.target)),
        WitnessDep::TargetEgd(i) => m2
            .target_egds()
            .get(i)
            .is_some_and(|e| !e.satisfied_by(&w.target)),
    }
}

// ---------------------------------------------------------------- //
// Rewrites                                                          //
// ---------------------------------------------------------------- //

fn with_st_tgds(m: &Mapping, st: Vec<StTgd>) -> Option<Mapping> {
    Mapping::with_target_deps(
        m.source().clone(),
        m.target().clone(),
        st,
        m.target_tgds().to_vec(),
        m.target_egds().to_vec(),
    )
    .ok()
}

fn with_target_tgds(m: &Mapping, tt: Vec<StTgd>) -> Option<Mapping> {
    Mapping::with_target_deps(
        m.source().clone(),
        m.target().clone(),
        m.st_tgds().to_vec(),
        tt,
        m.target_egds().to_vec(),
    )
    .ok()
}

fn with_egds(m: &Mapping, egds: Vec<Egd>) -> Option<Mapping> {
    Mapping::with_target_deps(
        m.source().clone(),
        m.target().clone(),
        m.st_tgds().to_vec(),
        m.target_tgds().to_vec(),
        egds,
    )
    .ok()
}

fn drop_at<T: Clone>(list: &[T], i: usize) -> Vec<T> {
    list.iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, t)| t.clone())
        .collect()
}

/// Deleting st-tgd `i` verified safe: the reduced mapping must imply
/// the deleted rule. (The other containment direction is free — the
/// reduced dependency set is a syntactic subset of the original.)
fn try_drop_st_tgd(m: &Mapping, i: usize) -> Option<Mapping> {
    let sigma = m.st_tgds().get(i)?.clone();
    let reduced = with_st_tgds(m, drop_at(m.st_tgds(), i))?;
    let shim = shim_mapping(&reduced)?;
    matches!(
        implied_dep(
            &reduced,
            &shim,
            &sigma.lhs,
            WitnessDep::StTgd(i),
            &|s, j| { sigma.satisfied_by(s, j) }
        ),
        Implied::Yes
    )
    .then_some(reduced)
}

/// Deleting target tgd `i` verified safe (see [`try_drop_st_tgd`]).
fn try_drop_target_tgd(m: &Mapping, i: usize) -> Option<Mapping> {
    let sigma = m.target_tgds().get(i)?.clone();
    let reduced = with_target_tgds(m, drop_at(m.target_tgds(), i))?;
    let shim = shim_mapping(&reduced)?;
    matches!(
        implied_dep(
            &reduced,
            &shim,
            &sigma.lhs,
            WitnessDep::TargetTgd(i),
            &|_, j| { sigma.satisfied_by(j, j) }
        ),
        Implied::Yes
    )
    .then_some(reduced)
}

/// Deleting target egd `i` verified safe — covers exact duplicates and
/// egds implied by the remaining dependencies alike.
fn try_drop_egd(m: &Mapping, i: usize) -> Option<Mapping> {
    let sigma = m.target_egds().get(i)?.clone();
    let reduced = with_egds(m, drop_at(m.target_egds(), i))?;
    let shim = shim_mapping(&reduced)?;
    matches!(
        implied_dep(
            &reduced,
            &shim,
            &sigma.lhs,
            WitnessDep::TargetEgd(i),
            &|_, j| { sigma.satisfied_by(j) }
        ),
        Implied::Yes
    )
    .then_some(reduced)
}

/// Is deleting st-tgd `i` an equivalence-preserving rewrite? This is
/// the single decision procedure behind `DEX105`, `DEX601`, and the
/// optimizer's deletions — one oracle, so the passes cannot disagree.
pub fn st_tgd_deletable(m: &Mapping, i: usize) -> bool {
    chase_refusal(m).is_none() && try_drop_st_tgd(m, i).is_some()
}

/// Is deleting target tgd `i` an equivalence-preserving rewrite?
pub fn target_tgd_deletable(m: &Mapping, i: usize) -> bool {
    chase_refusal(m).is_none() && try_drop_target_tgd(m, i).is_some()
}

/// Is deleting target egd `i` an equivalence-preserving rewrite?
pub fn target_egd_deletable(m: &Mapping, i: usize) -> bool {
    chase_refusal(m).is_none() && try_drop_egd(m, i).is_some()
}

/// Split a conclusion into its existential-sharing components: two rhs
/// atoms stay in one rule iff they (transitively) share an existential
/// variable. `None` when the rhs is a single component already.
fn split_components(tgd: &StTgd) -> Option<Vec<StTgd>> {
    if tgd.rhs.len() < 2 {
        return None;
    }
    let existentials: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
    let n = tgd.rhs.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn root(comp: &mut [usize], mut i: usize) -> usize {
        while comp[i] != i {
            comp[i] = comp[comp[i]];
            i = comp[i];
        }
        i
    }
    for a in 0..n {
        for b in a + 1..n {
            let shares = tgd.rhs[a]
                .variables()
                .iter()
                .any(|v| existentials.contains(v) && tgd.rhs[b].variables().contains(v));
            if shares {
                let (ra, rb) = (root(&mut comp, a), root(&mut comp, b));
                comp[ra] = rb;
            }
        }
    }
    let mut groups: Vec<(usize, Vec<Atom>)> = Vec::new();
    for i in 0..n {
        let r = root(&mut comp, i);
        match groups.iter_mut().find(|(g, _)| *g == r) {
            Some((_, atoms)) => atoms.push(tgd.rhs[i].clone()),
            None => groups.push((r, vec![tgd.rhs[i].clone()])),
        }
    }
    if groups.len() < 2 {
        return None;
    }
    Some(
        groups
            .into_iter()
            .map(|(_, atoms)| StTgd::new(tgd.lhs.clone(), atoms))
            .collect(),
    )
}

/// The pruned-premise candidate for atom `j` of tgd `i`: the remaining
/// premise must still bind every frontier variable (a frontier
/// variable silently becoming an existential would change semantics in
/// a way no later check could repair). `None` when the prune is not
/// even a candidate; the caller still re-verifies equivalence.
fn prune_candidate(m: &Mapping, st_side: bool, i: usize, j: usize) -> Option<Mapping> {
    let list = if st_side {
        m.st_tgds()
    } else {
        m.target_tgds()
    };
    let tgd = list.get(i)?;
    if tgd.lhs.len() < 2 {
        return None;
    }
    let pruned_lhs = drop_at(&tgd.lhs, j);
    let bound: BTreeSet<Name> = pruned_lhs.iter().flat_map(|a| a.variables()).collect();
    if !tgd.frontier().iter().all(|v| bound.contains(v)) {
        return None;
    }
    let mut new_list = list.to_vec();
    new_list[i] = StTgd::new(pruned_lhs, tgd.rhs.clone());
    if st_side {
        with_st_tgds(m, new_list)
    } else {
        with_target_tgds(m, new_list)
    }
}

/// The kind of a verified optimizer rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RewriteKind {
    /// A conclusion split into existential-sharing components.
    SplitConclusion,
    /// An st-tgd implied by the remaining dependencies was deleted.
    DropStTgd,
    /// A target tgd implied by the remaining dependencies was deleted.
    DropTargetTgd,
    /// A target egd implied by the remaining dependencies was deleted.
    DropTargetEgd,
    /// A redundant premise atom was pruned.
    PrunePremiseAtom,
}

/// One verified rewrite the optimizer applied.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rewrite {
    /// What was rewritten.
    pub kind: RewriteKind,
    /// Index into the relevant dependency list *at the time of the
    /// rewrite* (earlier rewrites shift later indices).
    pub index: usize,
    /// Human-readable description of the rewrite.
    pub description: String,
}

/// The result of [`optimize`].
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The optimized mapping (the input mapping when `refused`).
    pub mapping: Mapping,
    /// Every rewrite applied, in application order, each individually
    /// verified equivalence-preserving before it was kept.
    pub rewrites: Vec<Rewrite>,
    /// `Some(reason)` when the optimizer could not run at all
    /// (non-terminating target tgds); the mapping is untouched.
    pub refused: Option<String>,
}

impl OptimizeOutcome {
    /// Did any rewrite apply?
    pub fn changed(&self) -> bool {
        !self.rewrites.is_empty()
    }
}

/// Total atom count, then dependency count — the "smaller" order
/// behind `DEX603`. Splitting alone keeps the atom count and raises
/// the dependency count, so it never counts as a shrink by itself.
pub fn mapping_size(m: &Mapping) -> (usize, usize) {
    let atoms: usize = m
        .st_tgds()
        .iter()
        .chain(m.target_tgds())
        .map(|t| t.lhs.len() + t.rhs.len())
        .sum::<usize>()
        + m.target_egds()
            .iter()
            .map(|e| e.lhs.len() + e.equalities.len())
            .sum::<usize>();
    let deps = m.st_tgds().len() + m.target_tgds().len() + m.target_egds().len();
    (atoms, deps)
}

/// Optimize `mapping`: split conclusions, delete implied dependencies,
/// prune redundant premise atoms — every rewrite individually verified
/// by the containment checker before it is kept. Refuses (mapping
/// untouched) when the chase is not certified to terminate.
pub fn optimize(mapping: &Mapping) -> OptimizeOutcome {
    if let Some(reason) = chase_refusal(mapping) {
        return OptimizeOutcome {
            mapping: mapping.clone(),
            rewrites: Vec::new(),
            refused: Some(reason),
        };
    }
    let mut current = mapping.clone();
    let mut rewrites = Vec::new();

    // Phase 1: conclusion splitting — a normalization that lets the
    // later phases act on single-purpose rules.
    'split: loop {
        for st_side in [true, false] {
            let list = if st_side {
                current.st_tgds()
            } else {
                current.target_tgds()
            };
            for (i, tgd) in list.iter().enumerate() {
                let Some(parts) = split_components(tgd) else {
                    continue;
                };
                let mut new_list = list.to_vec();
                let display = tgd.to_string();
                let count = parts.len();
                new_list.splice(i..=i, parts);
                let cand = if st_side {
                    with_st_tgds(&current, new_list)
                } else {
                    with_target_tgds(&current, new_list)
                };
                let Some(cand) = cand else { continue };
                if equivalent(&current, &cand).holds() {
                    rewrites.push(Rewrite {
                        kind: RewriteKind::SplitConclusion,
                        index: i,
                        description: format!(
                            "split `{display}` into {count} independent-conclusion rules"
                        ),
                    });
                    current = cand;
                    continue 'split;
                }
            }
        }
        break;
    }

    // Phases 2+3 interleave to a fixpoint: a deletion can expose a
    // prune and a prune can turn a rule into a duplicate.
    loop {
        let mut changed = false;

        'drop: loop {
            for i in 0..current.st_tgds().len() {
                if let Some(next) = try_drop_st_tgd(&current, i) {
                    rewrites.push(Rewrite {
                        kind: RewriteKind::DropStTgd,
                        index: i,
                        description: format!(
                            "deleted st-tgd `{}` — implied by the remaining dependencies",
                            current.st_tgds()[i]
                        ),
                    });
                    current = next;
                    changed = true;
                    continue 'drop;
                }
            }
            for i in 0..current.target_tgds().len() {
                if let Some(next) = try_drop_target_tgd(&current, i) {
                    rewrites.push(Rewrite {
                        kind: RewriteKind::DropTargetTgd,
                        index: i,
                        description: format!(
                            "deleted target tgd `{}` — implied by the remaining dependencies",
                            current.target_tgds()[i]
                        ),
                    });
                    current = next;
                    changed = true;
                    continue 'drop;
                }
            }
            for i in 0..current.target_egds().len() {
                if let Some(next) = try_drop_egd(&current, i) {
                    rewrites.push(Rewrite {
                        kind: RewriteKind::DropTargetEgd,
                        index: i,
                        description: format!(
                            "deleted egd `{}` — implied by the remaining dependencies",
                            current.target_egds()[i]
                        ),
                    });
                    current = next;
                    changed = true;
                    continue 'drop;
                }
            }
            break;
        }

        'prune: loop {
            for st_side in [true, false] {
                let len = if st_side {
                    current.st_tgds().len()
                } else {
                    current.target_tgds().len()
                };
                for i in 0..len {
                    let arity = if st_side {
                        current.st_tgds()[i].lhs.len()
                    } else {
                        current.target_tgds()[i].lhs.len()
                    };
                    for j in 0..arity {
                        let Some(cand) = prune_candidate(&current, st_side, i, j) else {
                            continue;
                        };
                        if equivalent(&current, &cand).holds() {
                            let list = if st_side {
                                current.st_tgds()
                            } else {
                                current.target_tgds()
                            };
                            rewrites.push(Rewrite {
                                kind: RewriteKind::PrunePremiseAtom,
                                index: i,
                                description: format!(
                                    "pruned redundant premise atom `{}` from `{}`",
                                    list[i].lhs[j], list[i]
                                ),
                            });
                            current = cand;
                            changed = true;
                            continue 'prune;
                        }
                    }
                }
            }
            break;
        }

        if !changed {
            break;
        }
    }

    OptimizeOutcome {
        mapping: current,
        rewrites,
        refused: None,
    }
}

// ---------------------------------------------------------------- //
// Rendering (parseable `.dex` text)                                 //
// ---------------------------------------------------------------- //

fn side_dex(atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" & ")
}

/// Render a tgd as one parseable `.dex` rule line (no trailing
/// newline), including the terminating `;` — the form rule spans
/// cover, so `--fix` replacements slot in exactly.
pub fn tgd_dex(tgd: &StTgd) -> String {
    format!("{} -> {};", side_dex(&tgd.lhs), side_dex(&tgd.rhs))
}

/// Render an egd as one parseable `.dex` rule line (see [`tgd_dex`]).
pub fn egd_dex(egd: &Egd) -> String {
    let eqs = egd
        .equalities
        .iter()
        .map(|(a, b)| format!("{a} = {b}"))
        .collect::<Vec<_>>()
        .join(" & ");
    format!("{} -> {};", side_dex(&egd.lhs), eqs)
}

/// The egds a schema's key FDs expand to (the `key R(a);` shorthand).
fn key_expanded_egds(schema: &Schema) -> Vec<Egd> {
    let mut out = Vec::new();
    for rel in schema.relations() {
        let all: BTreeSet<Name> = rel.attr_names().cloned().collect();
        for fd in rel.fds().iter() {
            if fd.attributes() == all {
                let key_positions: Vec<usize> = fd
                    .lhs()
                    .iter()
                    .filter_map(|a| rel.position(a.as_str()))
                    .collect();
                out.extend(Egd::key(rel.name().as_str(), rel.arity(), &key_positions));
            }
        }
    }
    out
}

/// Render a whole mapping as parseable `.dex` text: declarations, key
/// shorthands for FD-backed egds, rules, and explicit egd rules for
/// everything the `key` lines do not regenerate. `dexcli optimize
/// --emit` writes this; it must round-trip through `parse_mapping`.
pub fn render_mapping_dex(m: &Mapping) -> String {
    let mut out = String::new();
    for rel in m.source().relations() {
        let attrs = rel
            .attr_names()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("source {}({});\n", rel.name(), attrs));
    }
    for rel in m.target().relations() {
        let attrs = rel
            .attr_names()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("target {}({});\n", rel.name(), attrs));
        let all: BTreeSet<Name> = rel.attr_names().cloned().collect();
        for fd in rel.fds().iter() {
            if fd.attributes() == all {
                let key = fd
                    .lhs()
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("key {}({});\n", rel.name(), key));
            }
        }
    }
    for t in m.st_tgds().iter().chain(m.target_tgds()) {
        out.push_str(&tgd_dex(t));
        out.push('\n');
    }
    let from_keys = key_expanded_egds(m.target());
    for e in m.target_egds() {
        if !from_keys.contains(e) {
            out.push_str(&egd_dex(e));
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------- //
// The lint pass                                                     //
// ---------------------------------------------------------------- //

/// Run the semantic pass: `DEX601` (deletable dependency), `DEX602`
/// (redundant premise atom), `DEX603` (equivalent-to-smaller summary).
/// Silent on non-terminating mappings — the termination pass already
/// reports `DEX001`, and without a terminating chase none of these
/// claims could be verified.
pub fn semantic_pass(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if chase_refusal(mapping).is_some() {
        return out;
    }

    let mut deletable_st = BTreeSet::new();
    let mut deletable_tt = BTreeSet::new();

    for i in 0..mapping.st_tgds().len() {
        if st_tgd_deletable(mapping, i) {
            deletable_st.insert(i);
            let tgd = &mapping.st_tgds()[i];
            let rest: Vec<usize> = (0..mapping.st_tgds().len()).filter(|j| *j != i).collect();
            let span = spans.and_then(|s| s.st_tgds.get(i).copied());
            let mut d = Diagnostic::new(
                Code::Dex601,
                format!(
                    "st-tgd `{tgd}` is implied by the remaining dependencies; deleting \
                     it is a verified equivalence-preserving rewrite"
                ),
            )
            .with_span(span)
            .with_witness(Witness::TgdIndices(rest))
            .with_note(
                "the containment checker chased the frozen premise under the reduced \
                 mapping and found the conclusion already satisfied",
            );
            if let Some(span) = span {
                d = d.with_suggestion(Suggestion {
                    span,
                    replacement: String::new(),
                });
            }
            out.push(d);
        }
    }
    for i in 0..mapping.target_tgds().len() {
        if target_tgd_deletable(mapping, i) {
            deletable_tt.insert(i);
            let tgd = &mapping.target_tgds()[i];
            let rest: Vec<usize> = (0..mapping.target_tgds().len())
                .filter(|j| *j != i)
                .collect();
            let span = spans.and_then(|s| s.target_tgds.get(i).copied());
            let mut d = Diagnostic::new(
                Code::Dex601,
                format!(
                    "target tgd `{tgd}` is implied by the remaining dependencies; \
                     deleting it is a verified equivalence-preserving rewrite"
                ),
            )
            .with_span(span)
            .with_witness(Witness::TgdIndices(rest))
            .with_note(
                "individually-deletable dependencies may not be jointly deletable \
                 (duplicates imply each other); `lint --fix` re-verifies after every \
                 deletion",
            );
            if let Some(span) = span {
                d = d.with_suggestion(Suggestion {
                    span,
                    replacement: String::new(),
                });
            }
            out.push(d);
        }
    }
    for i in 0..mapping.target_egds().len() {
        if target_egd_deletable(mapping, i) {
            let egd = &mapping.target_egds()[i];
            let rest: Vec<usize> = (0..mapping.target_egds().len())
                .filter(|j| *j != i)
                .collect();
            let span = spans.and_then(|s| s.target_egds.get(i).copied());
            let mut d = Diagnostic::new(
                Code::Dex601,
                format!(
                    "egd `{egd}` is implied by the remaining dependencies; deleting it \
                     is a verified equivalence-preserving rewrite"
                ),
            )
            .with_span(span)
            .with_witness(Witness::TgdIndices(rest))
            .with_note(
                "covers exact duplicates and egds the other dependencies already \
                 enforce",
            );
            if let Some(span) = span {
                d = d.with_suggestion(Suggestion {
                    span,
                    replacement: String::new(),
                });
            }
            out.push(d);
        }
    }

    // DEX602 — at most one per rule (applying one prune can change
    // whether the next is safe; `--fix` iterates to a fixpoint).
    // Rules already deletable wholesale are skipped: conflicting
    // suggestions on one span would make the fix ambiguous.
    for (st_side, skip) in [(true, &deletable_st), (false, &deletable_tt)] {
        let list = if st_side {
            mapping.st_tgds()
        } else {
            mapping.target_tgds()
        };
        for (i, tgd) in list.iter().enumerate() {
            if skip.contains(&i) {
                continue;
            }
            for j in 0..tgd.lhs.len() {
                let Some(cand) = prune_candidate(mapping, st_side, i, j) else {
                    continue;
                };
                if !equivalent(mapping, &cand).holds() {
                    continue;
                }
                let span = spans.and_then(|s| {
                    if st_side {
                        s.st_tgds.get(i).copied()
                    } else {
                        s.target_tgds.get(i).copied()
                    }
                });
                let pruned = StTgd::new(drop_at(&tgd.lhs, j), tgd.rhs.clone());
                let mut d = Diagnostic::new(
                    Code::Dex602,
                    format!(
                        "premise atom `{}` in `{tgd}` is redundant; the rule derives \
                         the same conclusions without it",
                        tgd.lhs[j]
                    ),
                )
                .with_span(span)
                .with_witness(Witness::TgdIndices(vec![i]))
                .with_note(
                    "verified by chasing the critical instances of both variants in \
                     both directions",
                );
                if let Some(span) = span {
                    d = d.with_suggestion(Suggestion {
                        span,
                        replacement: tgd_dex(&pruned),
                    });
                }
                out.push(d);
                break;
            }
        }
    }

    // DEX603 — summary: the optimizer found a strictly smaller
    // equivalent mapping.
    let opt = optimize(mapping);
    if opt.refused.is_none() && mapping_size(&opt.mapping) < mapping_size(mapping) {
        let (a0, d0) = mapping_size(mapping);
        let (a1, d1) = mapping_size(&opt.mapping);
        let mut d = Diagnostic::new(
            Code::Dex603,
            format!(
                "mapping is equivalent to a smaller one: {d0} dependencies / {a0} atoms \
                 can shrink to {d1} dependencies / {a1} atoms ({} verified rewrite{}; \
                 run `dexcli optimize`)",
                opt.rewrites.len(),
                if opt.rewrites.len() == 1 { "" } else { "s" }
            ),
        );
        for r in &opt.rewrites {
            d = d.with_note(r.description.clone());
        }
        out.push(d);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;

    fn m(src: &str) -> Mapping {
        parse_mapping(src).unwrap()
    }

    #[test]
    fn identical_mappings_are_equivalent() {
        let a = m("source Emp(name);\ntarget T(name);\nEmp(x) -> T(x);");
        assert!(equivalent(&a, &a).holds());
    }

    #[test]
    fn weaker_premise_contains_stronger() {
        // a's rule fires on every Emp row; b's only on the diagonal —
        // so every a-solution is a b-solution, not vice versa.
        let a = m("source Emp(a, b);\ntarget T(a, b);\nEmp(x, y) -> T(x, y);");
        let b = m("source Emp(a, b);\ntarget T(a, b);\nEmp(x, x) -> T(x, x);");
        assert_eq!(contains(&a, &b), ContainmentVerdict::Holds);
        match contains(&b, &a) {
            ContainmentVerdict::Fails(w) => {
                assert!(verify_containment_witness(&b, &a, &w));
                assert_eq!(w.dependency, WitnessDep::StTgd(0));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let eq = equivalent(&a, &b);
        assert!(!eq.holds());
        assert!(eq.refuted());
    }

    #[test]
    fn different_schemas_are_incomparable() {
        let a = m("source Emp(name);\ntarget T(name);\nEmp(x) -> T(x);");
        let b = m("source Person(name);\ntarget T(name);\nPerson(x) -> T(x);");
        assert!(matches!(
            contains(&a, &b),
            ContainmentVerdict::Undecided { .. }
        ));
    }

    #[test]
    fn non_terminating_left_side_is_undecided() {
        let bad = m("source R(a);\ntarget Succ(a, b);\nR(x) -> Succ(x, y);\n\
                     Succ(x, y) -> Succ(y, z);");
        let other = m("source R(a);\ntarget Succ(a, b);\nR(x) -> Succ(x, y);");
        assert!(matches!(
            contains(&bad, &other),
            ContainmentVerdict::Undecided { .. }
        ));
        // The terminating side can still chase: other ⊑ bad is
        // checkable... but bad's target tgd premise freezes fine and
        // `other` has no target tgds, so the check runs to a verdict.
        assert!(matches!(
            contains(&other, &bad),
            ContainmentVerdict::Fails(_)
        ));
    }

    #[test]
    fn target_tgd_implication_via_transitivity() {
        // S->T plus rule R->S imply R->T? As mappings: a has the
        // composite rule, b spells it out; both directions hold.
        let a = m("source R(a);\ntarget S(a);\ntarget T(a);\n\
                   R(x) -> S(x);\nS(x) -> T(x);");
        let b = m("source R(a);\ntarget S(a);\ntarget T(a);\n\
                   R(x) -> S(x);\nR(x) -> T(x);\nS(x) -> T(x);");
        assert_eq!(contains(&a, &b), ContainmentVerdict::Holds);
        assert_eq!(contains(&b, &a), ContainmentVerdict::Holds);
    }

    #[test]
    fn egd_merging_frozen_nulls_detects_implication() {
        // The key egd makes the two Mgr rows collapse, so the second
        // rule's conclusion is already present: frozen-as-constants
        // would miss this (the egd would clash instead of merging).
        let a = m(
            "source Emp(name, dept);\ntarget Mgr(name, boss);\nkey Mgr(name);\n\
                   Emp(x, y) -> Mgr(x, z);",
        );
        let b = m(
            "source Emp(name, dept);\ntarget Mgr(name, boss);\nkey Mgr(name);\n\
                   Emp(x, y) -> Mgr(x, z);\nEmp(x, y) & Emp(x, w) -> Mgr(x, u);",
        );
        assert_eq!(contains(&a, &b), ContainmentVerdict::Holds);
    }

    #[test]
    fn duplicate_egd_is_deletable_but_only_one_at_a_time() {
        let a = m("source R(a, b);\ntarget T(a, b);\nR(x, y) -> T(x, y);\n\
                   T(x, y) & T(x, z) -> y = z;\nT(x, y) & T(x, z) -> y = z;");
        assert!(target_egd_deletable(&a, 0));
        assert!(target_egd_deletable(&a, 1));
        let opt = optimize(&a);
        assert!(opt.refused.is_none());
        // Exactly one copy survives: deleting both would drop the
        // constraint entirely.
        assert_eq!(opt.mapping.target_egds().len(), 1);
        assert_eq!(opt.rewrites.len(), 1);
        assert_eq!(opt.rewrites[0].kind, RewriteKind::DropTargetEgd);
    }

    #[test]
    fn optimizer_drops_subsumed_tgd_and_prunes_duplicate_atom() {
        let a = m("source Emp(a, b);\ntarget T(a, b);\n\
                   Emp(x, y) -> T(x, y);\nEmp(x, x) -> T(x, x);");
        let opt = optimize(&a);
        assert!(opt.refused.is_none());
        assert_eq!(opt.mapping.st_tgds().len(), 1);
        assert!(opt
            .rewrites
            .iter()
            .any(|r| r.kind == RewriteKind::DropStTgd));
        assert!(equivalent(&a, &opt.mapping).holds());

        let b = m("source Emp(a, b);\ntarget T(a, b);\n\
                   Emp(x, y) & Emp(x, y) -> T(x, y);");
        let opt = optimize(&b);
        assert_eq!(opt.mapping.st_tgds()[0].lhs.len(), 1);
        assert!(opt
            .rewrites
            .iter()
            .any(|r| r.kind == RewriteKind::PrunePremiseAtom));
        assert!(equivalent(&b, &opt.mapping).holds());
    }

    #[test]
    fn optimizer_splits_independent_conclusions() {
        let a = m("source R(a);\ntarget T(a, b);\ntarget U(a, b);\n\
                   R(x) -> T(x, y) & U(x, z);");
        let opt = optimize(&a);
        assert!(opt.refused.is_none());
        assert_eq!(opt.mapping.st_tgds().len(), 2);
        assert!(opt
            .rewrites
            .iter()
            .any(|r| r.kind == RewriteKind::SplitConclusion));
        assert!(equivalent(&a, &opt.mapping).holds());
    }

    #[test]
    fn shared_existential_conclusion_does_not_split() {
        let a = m("source R(a);\ntarget T(a, b);\ntarget U(b, a);\n\
                   R(x) -> T(x, y) & U(y, x);");
        let opt = optimize(&a);
        assert!(!opt.changed(), "{:?}", opt.rewrites);
    }

    #[test]
    fn optimizer_refuses_non_terminating_mappings() {
        let a = m("source R(a);\ntarget Succ(a, b);\nR(x) -> Succ(x, y);\n\
                   Succ(x, y) -> Succ(y, z);");
        let opt = optimize(&a);
        assert!(opt.refused.is_some());
        assert!(!opt.changed());
    }

    #[test]
    fn semantic_pass_emits_601_602_603() {
        use dex_logic::parse_mapping_with_spans;
        let (m, sm) = parse_mapping_with_spans(
            "source Emp(a, b);\ntarget T(a, b);\n\
             Emp(x, y) -> T(x, y);\nEmp(x, x) -> T(x, x);\n\
             Emp(x, y) & Emp(x, y) -> T(y, x);",
        )
        .unwrap();
        let ds = semantic_pass(&m, Some(&sm));
        let codes: Vec<Code> = ds.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::Dex601), "{ds:#?}");
        assert!(codes.contains(&Code::Dex602), "{ds:#?}");
        assert!(codes.contains(&Code::Dex603), "{ds:#?}");
        let d601 = ds.iter().find(|d| d.code == Code::Dex601).unwrap();
        assert_eq!(d601.span.unwrap().line, 4);
        assert_eq!(d601.suggestion.as_ref().unwrap().replacement, "");
        let d602 = ds.iter().find(|d| d.code == Code::Dex602).unwrap();
        assert_eq!(d602.span.unwrap().line, 5);
        assert_eq!(
            d602.suggestion.as_ref().unwrap().replacement,
            "Emp(x, y) -> T(y, x);"
        );
    }

    #[test]
    fn render_round_trips() {
        let src = "source Emp(name, dept);\ntarget Mgr(name, boss);\nkey Mgr(name);\n\
                   Emp(x, y) -> Mgr(x, z);\nMgr(x, y) & Mgr(y, z) -> x = x;";
        let a = m(src);
        let rendered = render_mapping_dex(&a);
        let back = parse_mapping(&rendered).unwrap_or_else(|e| panic!("{rendered}\n{e:?}"));
        assert_eq!(a, back, "{rendered}");
    }
}
