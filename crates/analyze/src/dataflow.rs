//! Position-level dataflow over a mapping (the `DEX4xx` pass).
//!
//! The analysis views a mapping as a **flow graph over positions**
//! (relation/column pairs). Each st-tgd contributes an edge from every
//! source position where a frontier variable is read to every target
//! position where it is written; existential variables mark their
//! target positions as *null producers*; constant conclusion terms mark
//! *constant sinks*. Target tgds contribute target-to-target edges the
//! same way, and target egds contribute bidirectional edges between the
//! positions they equate (enforcement may move a value either way).
//!
//! A fixpoint over the graph ([`FlowGraph::closure`]) then answers, per
//! target position: which *source* positions can its values come from,
//! which constants can appear there, and can it hold an invented
//! (labeled-null) value? From the closure the pass derives the
//! dataflow diagnostics:
//!
//! * `DEX401` — lossy source positions (read, never exported),
//! * `DEX402` — null-only target positions,
//! * `DEX403` — source positions dead under every tgd,
//! * `DEX404` — join-variable / constant type conflicts,
//! * `DEX405` — contradictory lens update policies for one column.
//!
//! The static graph is pinned to the dynamic chase by a property test
//! (`tests/dataflow_props.rs`): every value the chase places at a
//! target position is either a constant the closure predicts, a value
//! drawn from a predicted provenance position, or an invented null at a
//! position the closure marks inventable.

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_logic::{Atom, Egd, Mapping, SourceMap, Span, StTgd, Term};
use dex_relational::{AttrType, Constant, Name, Value};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relation/column pair — one node of the flow graph. Positions are
/// 0-based.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct PosRef {
    /// The relation name.
    pub relation: Name,
    /// The 0-based column position.
    pub position: usize,
}

impl PosRef {
    /// Build a position reference.
    pub fn new(relation: impl Into<Name>, position: usize) -> PosRef {
        PosRef {
            relation: relation.into(),
            position,
        }
    }
}

impl fmt::Display for PosRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.relation, self.position)
    }
}

/// Which dependency contributed a graph element.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum DepRef {
    /// `st_tgds[i]`.
    St(usize),
    /// `target_tgds[i]`.
    Target(usize),
    /// `target_egds[i]`.
    Egd(usize),
}

impl fmt::Display for DepRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepRef::St(i) => write!(f, "st-tgd #{i}"),
            DepRef::Target(i) => write!(f, "target tgd #{i}"),
            DepRef::Egd(i) => write!(f, "egd #{i}"),
        }
    }
}

/// A value-flow edge: matching `dep` can move a value from `from` to
/// `to`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct FlowEdge {
    /// Where the value is read.
    pub from: PosRef,
    /// Where the value is written.
    pub to: PosRef,
    /// The variable carrying the value (`None` for egd equalities).
    pub var: Option<Name>,
    /// The dependency contributing the edge.
    pub dep: DepRef,
}

/// A target position some dependency fills with an invented value (a
/// labeled null, or a Skolem term for `Term::Func` conclusions).
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct NullProducer {
    /// The position receiving the invented value.
    pub at: PosRef,
    /// The existential variable (or Skolem function) inventing it.
    pub var: Name,
    /// The dependency contributing the producer.
    pub dep: DepRef,
}

/// A target position some dependency fills with a fixed constant.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct ConstSink {
    /// The position receiving the constant.
    pub at: PosRef,
    /// The constant written there.
    pub value: Constant,
    /// The dependency contributing the sink.
    pub dep: DepRef,
}

/// The position-level flow graph of a mapping.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize)]
pub struct FlowGraph {
    /// Value-flow edges.
    pub edges: Vec<FlowEdge>,
    /// Positions filled with invented nulls.
    pub null_producers: Vec<NullProducer>,
    /// Positions filled with constants.
    pub const_sinks: Vec<ConstSink>,
    /// The source-schema relation names (edge tails in this set are
    /// provenance roots; everything else is a target position).
    pub source_relations: BTreeSet<Name>,
}

/// Transitive provenance per position, computed by
/// [`FlowGraph::closure`].
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize)]
pub struct FlowClosure {
    /// For each target position: the source positions whose values can
    /// reach it (along any edge path).
    pub sources: BTreeMap<PosRef, BTreeSet<PosRef>>,
    /// For each target position: the constants that can appear there.
    pub constants: BTreeMap<PosRef, BTreeSet<Constant>>,
    /// Target positions that can hold an invented value.
    pub invented: BTreeSet<PosRef>,
}

impl FlowClosure {
    /// The provenance set of `p` (empty if none).
    pub fn sources_of(&self, p: &PosRef) -> &BTreeSet<PosRef> {
        static EMPTY: BTreeSet<PosRef> = BTreeSet::new();
        self.sources.get(p).unwrap_or(&EMPTY)
    }

    /// The constants that can reach `p` (empty if none).
    pub fn constants_of(&self, p: &PosRef) -> &BTreeSet<Constant> {
        static EMPTY: BTreeSet<Constant> = BTreeSet::new();
        self.constants.get(p).unwrap_or(&EMPTY)
    }
}

impl FlowGraph {
    /// Build the flow graph of `mapping`.
    pub fn build(mapping: &Mapping) -> FlowGraph {
        let mut g = FlowGraph {
            source_relations: mapping.source().relation_names().cloned().collect(),
            ..FlowGraph::default()
        };
        for (i, tgd) in mapping.st_tgds().iter().enumerate() {
            g.add_tgd(tgd, DepRef::St(i));
        }
        for (i, tgd) in mapping.target_tgds().iter().enumerate() {
            g.add_tgd(tgd, DepRef::Target(i));
        }
        for (i, egd) in mapping.target_egds().iter().enumerate() {
            g.add_egd(egd, DepRef::Egd(i));
        }
        g
    }

    fn add_tgd(&mut self, tgd: &StTgd, dep: DepRef) {
        // Variable → premise positions where it is read (a variable
        // inside a function term still reads its position's value only
        // by evaluation, so only direct `Term::Var` occurrences are
        // value sources).
        let mut reads: BTreeMap<&Name, Vec<PosRef>> = BTreeMap::new();
        for atom in &tgd.lhs {
            for (pos, term) in atom.args.iter().enumerate() {
                if let Term::Var(v) = term {
                    reads
                        .entry(v)
                        .or_default()
                        .push(PosRef::new(atom.relation.clone(), pos));
                }
            }
        }
        // Positions written with the same invented term, per firing: the
        // chase places ONE shared value there, so a later egd merge at
        // any of them rewrites all of them — link each group with
        // bidirectional edges below.
        let mut invented_groups: BTreeMap<&Term, Vec<PosRef>> = BTreeMap::new();
        for atom in &tgd.rhs {
            for (pos, term) in atom.args.iter().enumerate() {
                let to = PosRef::new(atom.relation.clone(), pos);
                match term {
                    Term::Var(v) => match reads.get(v) {
                        Some(froms) => {
                            for from in froms {
                                self.edges.push(FlowEdge {
                                    from: from.clone(),
                                    to: to.clone(),
                                    var: Some(v.clone()),
                                    dep,
                                });
                            }
                        }
                        None => {
                            invented_groups.entry(term).or_default().push(to.clone());
                            self.null_producers.push(NullProducer {
                                at: to,
                                var: v.clone(),
                                dep,
                            });
                        }
                    },
                    Term::Const(c) => self.const_sinks.push(ConstSink {
                        at: to,
                        value: c.clone(),
                        dep,
                    }),
                    Term::Func(f, _) => {
                        // A Skolem conclusion invents a structured
                        // value embedding its argument values: mark the
                        // position inventable and record the argument
                        // provenance.
                        invented_groups.entry(term).or_default().push(to.clone());
                        self.null_producers.push(NullProducer {
                            at: to.clone(),
                            var: f.clone(),
                            dep,
                        });
                        let mut vars = Vec::new();
                        term.collect_vars(&mut vars);
                        for v in &vars {
                            for from in reads.get(v).into_iter().flatten() {
                                self.edges.push(FlowEdge {
                                    from: from.clone(),
                                    to: to.clone(),
                                    var: Some(v.clone()),
                                    dep,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Sibling edges within each invented-term group (see above).
        for (term, group) in invented_groups {
            let var = match term {
                Term::Var(v) | Term::Func(v, _) => v.clone(),
                Term::Const(_) => continue,
            };
            for a in &group {
                for b in &group {
                    if a != b {
                        self.edges.push(FlowEdge {
                            from: a.clone(),
                            to: b.clone(),
                            var: Some(var.clone()),
                            dep,
                        });
                    }
                }
            }
        }
    }

    fn add_egd(&mut self, egd: &Egd, dep: DepRef) {
        // Positions (in the egd body) where a term occurs, by syntactic
        // equality — for variables this is every position reading them.
        let positions_of = |t: &Term| -> Vec<PosRef> {
            let mut out = Vec::new();
            for atom in &egd.lhs {
                for (pos, arg) in atom.args.iter().enumerate() {
                    if arg == t {
                        out.push(PosRef::new(atom.relation.clone(), pos));
                    }
                }
            }
            out
        };
        for (a, b) in &egd.equalities {
            let pa = positions_of(a);
            let pb = positions_of(b);
            // Enforcement can move a value either way between the
            // equated positions.
            for x in &pa {
                for y in &pb {
                    if x != y {
                        self.edges.push(FlowEdge {
                            from: x.clone(),
                            to: y.clone(),
                            var: None,
                            dep,
                        });
                        self.edges.push(FlowEdge {
                            from: y.clone(),
                            to: x.clone(),
                            var: None,
                            dep,
                        });
                    }
                }
            }
            // `x = "c"` forces the constant onto x's positions.
            if let Term::Const(c) = b {
                for x in &pa {
                    self.const_sinks.push(ConstSink {
                        at: x.clone(),
                        value: c.clone(),
                        dep,
                    });
                }
            }
            if let Term::Const(c) = a {
                for y in &pb {
                    self.const_sinks.push(ConstSink {
                        at: y.clone(),
                        value: c.clone(),
                        dep,
                    });
                }
            }
        }
    }

    /// Is `p` a source-schema position?
    pub fn is_source(&self, p: &PosRef) -> bool {
        self.source_relations.contains(&p.relation)
    }

    /// All outgoing edges of `p`.
    pub fn edges_from<'g>(&'g self, p: &'g PosRef) -> impl Iterator<Item = &'g FlowEdge> + 'g {
        self.edges.iter().filter(move |e| &e.from == p)
    }

    /// Compute the transitive provenance fixpoint. Monotone over finite
    /// lattices, so it terminates; the graph has at most
    /// `Σ arity` nodes and iteration stops at the first round that
    /// changes nothing.
    pub fn closure(&self) -> FlowClosure {
        let mut c = FlowClosure::default();
        for np in &self.null_producers {
            c.invented.insert(np.at.clone());
        }
        for cs in &self.const_sinks {
            c.constants
                .entry(cs.at.clone())
                .or_default()
                .insert(cs.value.clone());
        }
        loop {
            let mut changed = false;
            for e in &self.edges {
                if self.is_source(&e.from) {
                    changed |= c
                        .sources
                        .entry(e.to.clone())
                        .or_default()
                        .insert(e.from.clone());
                } else {
                    let from_sources = c.sources.get(&e.from).cloned().unwrap_or_default();
                    if !from_sources.is_empty() {
                        let to_sources = c.sources.entry(e.to.clone()).or_default();
                        for s in from_sources {
                            changed |= to_sources.insert(s);
                        }
                    }
                    let from_consts = c.constants.get(&e.from).cloned().unwrap_or_default();
                    if !from_consts.is_empty() {
                        let to_consts = c.constants.entry(e.to.clone()).or_default();
                        for k in from_consts {
                            changed |= to_consts.insert(k);
                        }
                    }
                    if c.invented.contains(&e.from) {
                        changed |= c.invented.insert(e.to.clone());
                    }
                }
            }
            if !changed {
                return c;
            }
        }
    }
}

/// The put-back policy a tgd's conclusion implies for one target
/// column; two tgds producing the same relation must agree
/// position-wise or the folded union lens has no single `put`
/// (`DEX405`, the dataflow refinement of the compiler's shape check).
#[derive(Clone, PartialEq, Eq, Debug)]
enum PolicyClass {
    /// Determined by a frontier variable (put writes back to source).
    Frontier,
    /// A fixed constant.
    Const(Constant),
    /// An invented null (existential or Skolem conclusion).
    Invented,
    /// Repeats the value of an earlier column of the same atom.
    CopyOf(usize),
}

impl fmt::Display for PolicyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyClass::Frontier => write!(f, "determined by the source"),
            PolicyClass::Const(c) => write!(f, "constant {c}"),
            PolicyClass::Invented => write!(f, "an invented null"),
            PolicyClass::CopyOf(p) => write!(f, "a copy of column #{p}"),
        }
    }
}

/// Human label for a position: `Rel.attr` when the schema knows the
/// attribute name, else `Rel[pos]`.
pub(crate) fn pos_label(mapping: &Mapping, p: &PosRef) -> String {
    let attr = mapping
        .source()
        .relation(p.relation.as_str())
        .or_else(|| mapping.target().relation(p.relation.as_str()))
        .and_then(|r| r.attrs().get(p.position))
        .map(|(name, _)| name.clone());
    match attr {
        Some(a) => format!("{}.{}", p.relation, a),
        None => p.to_string(),
    }
}

/// Count every occurrence of each variable in a tgd, with multiplicity,
/// across both sides (function arguments included).
fn occurrence_counts(tgd: &StTgd) -> BTreeMap<Name, usize> {
    fn walk(t: &Term, counts: &mut BTreeMap<Name, usize>) {
        match t {
            Term::Var(v) => *counts.entry(v.clone()).or_default() += 1,
            Term::Const(_) => {}
            Term::Func(_, args) => args.iter().for_each(|a| walk(a, counts)),
        }
    }
    let mut counts = BTreeMap::new();
    for atom in tgd.lhs.iter().chain(tgd.rhs.iter()) {
        for t in &atom.args {
            walk(t, &mut counts);
        }
    }
    counts
}

/// The dataflow pass: build the flow graph, close it, and report
/// `DEX401`–`DEX405`.
pub fn dataflow_pass(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    let graph = FlowGraph::build(mapping);
    let closure = graph.closure();
    let mut out = Vec::new();
    lossy_and_dead(mapping, &graph, spans, &mut out);
    null_only(mapping, &closure, spans, &mut out);
    type_conflicts(mapping, spans, &mut out);
    policy_conflicts(mapping, spans, &mut out);
    out
}

/// `DEX401` (lossy) and `DEX403` (dead) source positions.
fn lossy_and_dead(
    mapping: &Mapping,
    graph: &FlowGraph,
    spans: Option<&SourceMap>,
    out: &mut Vec<Diagnostic>,
) {
    for rel in mapping.source().relations() {
        let name = rel.name();
        // Premise occurrences of each position across all st-tgds.
        let mut read = false;
        for pos in 0..rel.arity() {
            let p = PosRef::new(name.clone(), pos);
            let mut var_occurrences = 0usize;
            let mut dead_occurrences = 0usize;
            let mut filter_occurrences = 0usize;
            for tgd in mapping.st_tgds() {
                let counts = occurrence_counts(tgd);
                for atom in &tgd.lhs {
                    if &atom.relation != name {
                        continue;
                    }
                    read = true;
                    match &atom.args[pos] {
                        Term::Var(v) => {
                            var_occurrences += 1;
                            if counts.get(v).copied().unwrap_or(0) == 1 {
                                dead_occurrences += 1;
                            }
                        }
                        Term::Const(_) | Term::Func(..) => filter_occurrences += 1,
                    }
                }
            }
            if !read {
                // Unread relation: DEX101's territory, not dataflow's.
                continue;
            }
            let exported = graph.edges_from(&p).next().is_some();
            if var_occurrences > 0 && dead_occurrences == var_occurrences && filter_occurrences == 0
            {
                out.push(
                    Diagnostic::new(
                        Code::Dex403,
                        format!(
                            "source position `{}` is dead: every rule reading `{}` binds it \
                             to a variable used nowhere else",
                            pos_label(mapping, &p),
                            name,
                        ),
                    )
                    .with_span(spans.and_then(|s| s.source_decl(name.as_str())))
                    .with_witness(Witness::Position(name.clone(), pos))
                    .with_note(
                        "dropping the column from the source schema would not change the mapping",
                    ),
                );
            } else if var_occurrences > 0 && !exported {
                out.push(
                    Diagnostic::new(
                        Code::Dex401,
                        format!(
                            "source position `{}` is lossy: its value flows to no target \
                             position",
                            pos_label(mapping, &p),
                        ),
                    )
                    .with_span(spans.and_then(|s| s.source_decl(name.as_str())))
                    .with_witness(Witness::Position(name.clone(), pos))
                    .with_note("no inverse of the mapping can recover this column"),
                );
            }
        }
    }
}

/// `DEX402`: target positions only ever filled with invented nulls.
fn null_only(
    mapping: &Mapping,
    closure: &FlowClosure,
    spans: Option<&SourceMap>,
    out: &mut Vec<Diagnostic>,
) {
    for rel in mapping.target().relations() {
        let name = rel.name();
        for pos in 0..rel.arity() {
            let p = PosRef::new(name.clone(), pos);
            if closure.invented.contains(&p)
                && closure.sources_of(&p).is_empty()
                && closure.constants_of(&p).is_empty()
            {
                out.push(
                    Diagnostic::new(
                        Code::Dex402,
                        format!(
                            "target position `{}` is null-only: every rule fills it with an \
                             invented null",
                            pos_label(mapping, &p),
                        ),
                    )
                    .with_span(spans.and_then(|s| s.target_decl(name.as_str())))
                    .with_witness(Witness::Position(name.clone(), pos))
                    .with_note("queries over this column can only ever see labeled nulls"),
                );
            }
        }
    }
}

/// `DEX404`: a variable read at positions of conflicting declared
/// types, or a constant violating a position's declared type.
fn type_conflicts(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    let attr_type = |schema: &dex_relational::Schema, atom: &Atom, pos: usize| -> AttrType {
        schema
            .relation(atom.relation.as_str())
            .and_then(|r| r.attrs().get(pos))
            .map(|(_, t)| *t)
            .unwrap_or(AttrType::Any)
    };
    // Per rule: dep-kind, atoms flagged `on_source`, and the rule span.
    type Rule<'a> = (DepRef, Vec<(&'a Atom, bool)>, Option<Span>);
    let mut rules: Vec<Rule<'_>> = Vec::new();
    for (i, tgd) in mapping.st_tgds().iter().enumerate() {
        let atoms = tgd
            .lhs
            .iter()
            .map(|a| (a, true))
            .chain(tgd.rhs.iter().map(|a| (a, false)))
            .collect();
        rules.push((
            DepRef::St(i),
            atoms,
            spans.and_then(|s| s.st_tgds.get(i).copied()),
        ));
    }
    for (i, tgd) in mapping.target_tgds().iter().enumerate() {
        let atoms = tgd
            .lhs
            .iter()
            .chain(tgd.rhs.iter())
            .map(|a| (a, false))
            .collect();
        rules.push((
            DepRef::Target(i),
            atoms,
            spans.and_then(|s| s.target_tgds.get(i).copied()),
        ));
    }
    for (i, egd) in mapping.target_egds().iter().enumerate() {
        let atoms = egd.lhs.iter().map(|a| (a, false)).collect();
        rules.push((
            DepRef::Egd(i),
            atoms,
            spans.and_then(|s| s.target_egds.get(i).copied()),
        ));
    }
    for (dep, atoms, span) in rules {
        let mut var_types: BTreeMap<&Name, Vec<(AttrType, String)>> = BTreeMap::new();
        for (atom, on_source) in atoms {
            let schema = if on_source {
                mapping.source()
            } else {
                mapping.target()
            };
            for (pos, term) in atom.args.iter().enumerate() {
                let ty = attr_type(schema, atom, pos);
                let at = pos_label(mapping, &PosRef::new(atom.relation.clone(), pos));
                match term {
                    Term::Var(v) if ty != AttrType::Any => {
                        var_types.entry(v).or_default().push((ty, at));
                    }
                    Term::Const(c) if !ty.admits(&Value::Const(c.clone())) => {
                        out.push(
                            Diagnostic::new(
                                Code::Dex404,
                                format!(
                                    "constant {c} at `{at}` violates the position's declared \
                                     type {ty} ({dep})",
                                ),
                            )
                            .with_span(span),
                        );
                    }
                    _ => {}
                }
            }
        }
        for (v, occ) in var_types {
            let first = occ[0].0;
            if let Some((other, at)) = occ.iter().find(|(t, _)| *t != first) {
                out.push(
                    Diagnostic::new(
                        Code::Dex404,
                        format!(
                            "variable `{v}` joins positions of conflicting types: `{}` is \
                             {first} but `{at}` is {other} ({dep})",
                            occ[0].1,
                        ),
                    )
                    .with_span(span)
                    .with_witness(Witness::Variables(vec![v.clone()])),
                );
            }
        }
    }
}

/// `DEX405`: two st-tgds imply contradictory update policies for the
/// same target column.
fn policy_conflicts(mapping: &Mapping, spans: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    // Per target position: the first policy class seen and which tgd
    // implied it.
    let mut seen: BTreeMap<PosRef, (PolicyClass, usize)> = BTreeMap::new();
    let mut reported: BTreeSet<PosRef> = BTreeSet::new();
    for (i, tgd) in mapping.st_tgds().iter().enumerate() {
        let frontier: BTreeSet<Name> = tgd.frontier().into_iter().collect();
        for atom in &tgd.rhs {
            let mut first_pos: BTreeMap<&Name, usize> = BTreeMap::new();
            for (pos, term) in atom.args.iter().enumerate() {
                let p = PosRef::new(atom.relation.clone(), pos);
                let class = match term {
                    Term::Var(v) => match first_pos.get(v) {
                        Some(fp) => PolicyClass::CopyOf(*fp),
                        None => {
                            first_pos.insert(v, pos);
                            if frontier.contains(v) {
                                PolicyClass::Frontier
                            } else {
                                PolicyClass::Invented
                            }
                        }
                    },
                    Term::Const(c) => PolicyClass::Const(c.clone()),
                    Term::Func(..) => PolicyClass::Invented,
                };
                match seen.get(&p) {
                    None => {
                        seen.insert(p, (class, i));
                    }
                    Some((prior, j)) if *prior != class && !reported.contains(&p) => {
                        reported.insert(p.clone());
                        out.push(
                            Diagnostic::new(
                                Code::Dex405,
                                format!(
                                    "st-tgds #{j} and #{i} assign conflicting update policies \
                                     to `{}`: {prior} vs {class}",
                                    pos_label(mapping, &p),
                                ),
                            )
                            .with_span(spans.and_then(|s| s.st_tgds.get(i).copied()))
                            .with_witness(Witness::TgdIndices(vec![*j, i]))
                            .with_note(
                                "the folded union lens cannot serve both policies with one put",
                            ),
                        );
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_mapping, parse_mapping_with_spans};

    fn codes(src: &str) -> Vec<Code> {
        let (m, sm) = parse_mapping_with_spans(src).unwrap();
        dataflow_pass(&m, Some(&sm))
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_mapping_is_silent() {
        assert!(codes(
            "source Emp(name, dept);\nsource Dept(dept, mgr);\n\
             target Worker(name, dept, mgr);\n\
             Emp(n, d) & Dept(d, m) -> Worker(n, d, m);"
        )
        .is_empty());
    }

    #[test]
    fn lossy_position_found() {
        // Emp.age is read but never exported (and joins nothing).
        // It is a singleton variable too, so DEX403 subsumes it; make
        // it join to isolate DEX401.
        let cs = codes(
            "source Emp(name, age);\nsource Senior(age);\ntarget T(name);\n\
             Emp(n, a) & Senior(a) -> T(n);",
        );
        assert_eq!(cs, vec![Code::Dex401, Code::Dex401]);
    }

    #[test]
    fn dead_position_found() {
        let (m, sm) = parse_mapping_with_spans(
            "source Emp(name, hobby);\ntarget T(name);\nEmp(n, h) -> T(n);",
        )
        .unwrap();
        let ds = dataflow_pass(&m, Some(&sm));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex403);
        assert!(ds[0].message.contains("Emp.hobby"), "{}", ds[0].message);
        assert_eq!(ds[0].witness, Some(Witness::Position(Name::new("Emp"), 1)));
        // Span anchors at the source declaration.
        assert_eq!(ds[0].span.map(|s| s.line), Some(1));
    }

    #[test]
    fn constant_filter_is_neither_lossy_nor_dead() {
        assert!(
            codes("source Emp(name, grade);\ntarget T(name);\nEmp(n, \"senior\") -> T(n);")
                .is_empty()
        );
    }

    #[test]
    fn null_only_position_found() {
        let cs = codes(
            "source Takes(name, course);\ntarget Student(id, name);\n\
             target Assgn(name, course);\n\
             Takes(n, c) -> Student(i, n) & Assgn(n, c);",
        );
        assert_eq!(cs, vec![Code::Dex402]);
    }

    #[test]
    fn egd_rescues_null_only() {
        // The key egd equates the invented id with itself across
        // matches only — it cannot bring a source value, so DEX402
        // stays. But an explicit egd equating id with name does.
        let cs = codes(
            "source Takes(name, course);\ntarget Student(id, name);\n\
             Takes(n, c) -> Student(i, n);\n\
             Student(i, n) -> i = n;",
        );
        assert!(!cs.contains(&Code::Dex402), "{cs:?}");
    }

    #[test]
    fn target_tgd_propagates_provenance() {
        // S.0 flows to T.0 only through the target tgd.
        let (m, _sm) = parse_mapping_with_spans(
            "source R(a);\ntarget S(a);\ntarget T(a);\n\
             R(x) -> S(x);\nS(x) -> T(x);",
        )
        .unwrap();
        let closure = FlowGraph::build(&m).closure();
        let t0 = PosRef::new("T", 0);
        assert_eq!(
            closure.sources_of(&t0).iter().cloned().collect::<Vec<_>>(),
            vec![PosRef::new("R", 0)]
        );
    }

    #[test]
    fn type_conflict_found() {
        use dex_logic::StTgd;
        use dex_relational::{AttrType, RelSchema, Schema};
        // Parser output is untyped, so build the schemas by hand.
        let source = Schema::with_relations(vec![RelSchema::new(
            "R",
            vec![("n", AttrType::Int), ("s", AttrType::Str)],
        )
        .unwrap()])
        .unwrap();
        let target = Schema::with_relations(vec![
            RelSchema::new("T", vec![("x", AttrType::Any)]).unwrap()
        ])
        .unwrap();
        // R(v, v): v joins an int position with a str position.
        let tgd = StTgd::new(
            vec![Atom::vars("R", &["v", "v"])],
            vec![Atom::vars("T", &["v"])],
        );
        let m = Mapping::new(source, target, vec![tgd]).unwrap();
        let ds = dataflow_pass(&m, None);
        assert_eq!(ds.iter().filter(|d| d.code == Code::Dex404).count(), 1);
        assert!(
            ds[0].message.contains("conflicting types"),
            "{}",
            ds[0].message
        );
    }

    #[test]
    fn constant_type_violation_found() {
        use dex_logic::{StTgd, Term};
        use dex_relational::{AttrType, RelSchema, Schema};
        let source = Schema::with_relations(vec![
            RelSchema::new("R", vec![("n", AttrType::Int)]).unwrap()
        ])
        .unwrap();
        let target =
            Schema::with_relations(vec![RelSchema::untyped("T", vec!["x"]).unwrap()]).unwrap();
        let tgd = StTgd::new(
            vec![Atom::new("R", vec![Term::cnst("oops")])],
            vec![Atom::new("T", vec![Term::cnst(1i64)])],
        );
        let m = Mapping::new(source, target, vec![tgd]).unwrap();
        let ds = dataflow_pass(&m, None);
        assert_eq!(ds.iter().filter(|d| d.code == Code::Dex404).count(), 1);
    }

    #[test]
    fn policy_conflict_found() {
        let (m, sm) = parse_mapping_with_spans(
            "source R(a, b);\nsource S(a);\ntarget T(a, b);\n\
             R(x, y) -> T(x, y);\nS(x) -> T(x, \"fixed\");",
        )
        .unwrap();
        let ds = dataflow_pass(&m, Some(&sm));
        let conflict: Vec<_> = ds.iter().filter(|d| d.code == Code::Dex405).collect();
        assert_eq!(conflict.len(), 1);
        assert!(
            conflict[0].message.contains("determined by the source"),
            "{}",
            conflict[0].message
        );
        assert_eq!(conflict[0].witness, Some(Witness::TgdIndices(vec![0, 1])));
    }

    #[test]
    fn agreeing_union_has_no_policy_conflict() {
        assert!(codes(
            "source R(a);\nsource S(a);\ntarget T(a, b);\n\
             R(x) -> T(x, y);\nS(x) -> T(x, y);"
        )
        .iter()
        .all(|c| *c != Code::Dex405));
    }

    #[test]
    fn copy_policy_conflicts_with_frontier() {
        let (m, _) = parse_mapping_with_spans(
            "source R(a, b);\nsource S(a);\ntarget T(a, b);\n\
             R(x, y) -> T(x, y);\nS(x) -> T(x, x);",
        )
        .unwrap();
        let ds = dataflow_pass(&m, None);
        assert!(ds.iter().any(|d| d.code == Code::Dex405));
    }

    #[test]
    fn closure_reports_constants_through_egds() {
        let (m, _) = parse_mapping_with_spans(
            "source R(a);\ntarget T(a, t);\n\
             R(x) -> T(x, t);\n\
             T(x, t) -> t = 'tagged';",
        )
        .unwrap();
        let closure = FlowGraph::build(&m).closure();
        let t1 = PosRef::new("T", 1);
        assert!(closure
            .constants_of(&t1)
            .contains(&Constant::from("tagged")));
    }

    #[test]
    fn graph_is_deterministic() {
        let src = "source R(a, b);\ntarget T(a, b);\nR(x, y) -> T(x, y);";
        let m1 = parse_mapping(src).unwrap();
        let m2 = parse_mapping(src).unwrap();
        assert_eq!(FlowGraph::build(&m1), FlowGraph::build(&m2));
    }
}
