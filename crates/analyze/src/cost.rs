//! Cost pass: `DEX5xx` — static chase-cost bounds from acyclicity
//! structure, and the admission-control lints built on them.
//!
//! The termination classifier (`dex_chase`) proves *that* the chase on
//! a weakly or jointly acyclic mapping stops; this pass computes *how
//! big* the result can get, before running anything. The derivation is
//! the constructive reading of the classical FKMP polynomial bound,
//! evaluated at assumed per-relation source cardinalities
//! ([`SourceStats`]):
//!
//! 1. **Phase 1** (st-tgds) fires each rule at most once per premise
//!    match, so its firing bound is the product of the premise
//!    relations' cardinalities.
//! 2. **Strata.** Every invented null has a *generation*: one more than
//!    the largest generation among the values its creating firing bound
//!    on the frontier. Under weak acyclicity a null invented at a
//!    position of rank `r` has generation ≤ `r` (a special edge
//!    `p → q` forces `rank(p) < rank(q)`, and a null reaching a body
//!    position flows there along regular edges, which never lower
//!    rank), so generations are capped by the maximum position rank
//!    ([`dex_chase::position_ranks`]). Under joint acyclicity the same
//!    argument runs over the existential-dependency DAG and the cap is
//!    its depth ([`dex_chase::existential_depth`]).
//! 3. **Value universe.** Let `U₀` be every value present before the
//!    target chase: source constants, mapping constants, phase-1 nulls.
//!    A target tgd `d` fires at most once per distinct frontier
//!    valuation (a re-derived obligation finds its conclusion already
//!    satisfied and is skipped), so generation-`i` firings of `d`
//!    number at most `|Uᵢ₋₁|^{|frontier(d)|}`, each inventing
//!    `exist(d)` nulls: `Uᵢ = Uᵢ₋₁ + Σ_d |Uᵢ₋₁|^{f_d}·e_d`. After
//!    `strata` steps no new generation can start, and `U := U_strata`
//!    bounds every value the chase ever creates.
//! 4. **Everything else** folds out of `U`: per-target-tgd firings
//!    `≤ U^{f_d}`, nulls per existential position, tuples per relation
//!    (the smaller of the write-based and the `U^arity` set-based
//!    bound), committed rounds (each changes the instance: ≥ 1 firing
//!    or ≥ 1 null-eliminating egd merge), and bytes via the governor's
//!    own memory model (each firing is billed the approximate bytes of
//!    its conclusion tuples).
//!
//! All arithmetic is [`Bound`] arithmetic: checked, with overflow
//! collapsing to `Unbounded` — a `Finite` bound is always an honest
//! certificate, and every formula is monotone in the cardinalities.
//!
//! Lints: `DEX501` (bounds unbounded — not jointly acyclic), `DEX502`
//! (headline bound exceeds a configured `--deny-cost` threshold),
//! `DEX503` (one tgd's firing bound dwarfs the rest combined).

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_chase::{classify_termination, existential_depth, position_ranks, TerminationClass};
use dex_core::CostSection;
use dex_logic::{Mapping, SourceMap, StTgd, Term};
use dex_relational::{Bound, ChaseBounds, Constant, Name, SourceStats, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// `DEX503` fires when one tgd's firing bound is at least this many
/// times everything else combined.
pub const DWARF_FACTOR: u64 = 1024;

/// The uniform per-relation cardinality assumed when the caller
/// supplies no statistics (`dexcli lint` / `explain` without
/// `--cards`).
pub const DEFAULT_CARD: u64 = 1000;

/// Distinct variables of the premise exported to the conclusion.
fn frontier_size(tgd: &StTgd) -> u32 {
    tgd.frontier().len() as u32
}

/// Number of conclusion atoms, and per-firing conclusion byte cost
/// under the governor's model (`Tuple` header + one value slot per
/// argument, each at most `max_value_bytes`).
fn rhs_shape(tgd: &StTgd, max_value_bytes: u64) -> (u64, Bound) {
    let atoms = tgd.rhs.len() as u64;
    let mut bytes = Bound::ZERO;
    for a in &tgd.rhs {
        let row = Bound::from(std::mem::size_of::<Tuple>())
            .add(Bound::from(a.args.len()).mul(Bound::Finite(max_value_bytes)));
        bytes = bytes.add(row);
    }
    (atoms, bytes)
}

/// Every distinct constant written or matched by the mapping's rules
/// (these enter the value universe alongside source values).
fn mapping_constants(mapping: &Mapping) -> BTreeSet<Constant> {
    fn from_term(t: &Term, out: &mut BTreeSet<Constant>) {
        match t {
            Term::Const(c) => {
                out.insert(c.clone());
            }
            Term::Func(_, args) => {
                for a in args {
                    from_term(a, out);
                }
            }
            Term::Var(_) => {}
        }
    }
    let mut out = BTreeSet::new();
    let tgds = mapping.st_tgds().iter().chain(mapping.target_tgds());
    for tgd in tgds {
        for atom in tgd.lhs.iter().chain(&tgd.rhs) {
            for t in &atom.args {
                from_term(t, &mut out);
            }
        }
    }
    for egd in mapping.target_egds() {
        for atom in &egd.lhs {
            for t in &atom.args {
                from_term(t, &mut out);
            }
        }
        for (l, r) in &egd.equalities {
            from_term(l, &mut out);
            from_term(r, &mut out);
        }
    }
    out
}

/// Per-firing invented values: existential variables plus Skolem terms
/// in the conclusion (each firing instantiates every conclusion Skolem
/// term at most once).
fn invented_per_firing(tgd: &StTgd) -> u64 {
    let exist = tgd.existential_vars().len() as u64;
    let funcs: u64 = tgd
        .rhs
        .iter()
        .flat_map(|a| &a.args)
        .filter(|t| matches!(t, Term::Func(_, _)))
        .count() as u64;
    exist + funcs
}

/// Compute the full cost section for `mapping` at `stats`.
pub fn cost_section(mapping: &Mapping, stats: &SourceStats) -> CostSection {
    let target_tgds = mapping.target_tgds();
    let class = classify_termination(target_tgds).class;

    // Largest value width: measured source values, or a constant
    // embedded in the rules (invented nulls are bare slots, already
    // covered by the measured floor).
    let consts = mapping_constants(mapping);
    let max_value_bytes = consts
        .iter()
        .map(|c| Value::Const(c.clone()).approx_bytes() as u64)
        .fold(stats.max_value_bytes, u64::max);

    // Phase 1: per-st-tgd firing bound = Π card(premise relation).
    let st_firings: Vec<Bound> = mapping
        .st_tgds()
        .iter()
        .map(|tgd| {
            tgd.lhs
                .iter()
                .map(|a| Bound::Finite(stats.card(&a.relation)))
                .fold(Bound::ONE, Bound::mul)
        })
        .collect();
    let st_invented: Vec<u64> = mapping.st_tgds().iter().map(invented_per_firing).collect();
    let st_nulls: Bound = st_firings
        .iter()
        .zip(&st_invented)
        .map(|(f, e)| f.mul(Bound::Finite(*e)))
        .fold(Bound::ZERO, Bound::add);

    // Null generations the target chase can cascade through.
    let strata: Bound = match class {
        TerminationClass::WeaklyAcyclic => position_ranks(target_tgds)
            .map(|ranks| Bound::from(ranks.values().copied().max().unwrap_or(0)))
            .unwrap_or(Bound::Unbounded),
        TerminationClass::JointlyAcyclic => existential_depth(target_tgds)
            .map(Bound::from)
            .unwrap_or(Bound::Unbounded),
        TerminationClass::Unknown => Bound::Unbounded,
    };

    // U₀: source values + initial target values + mapping constants +
    // phase-1 nulls.
    let mut universe = Bound::ZERO;
    for rel in mapping
        .source()
        .relations()
        .chain(mapping.target().relations())
    {
        universe =
            universe.add(Bound::Finite(stats.card(rel.name())).mul(Bound::from(rel.arity())));
    }
    universe = universe
        .add(Bound::from(consts.len()))
        .add(st_nulls)
        .add(Bound::Finite(stats.initial_nulls));

    // The stratified recurrence: Uᵢ = Uᵢ₋₁ + Σ_d Uᵢ₋₁^{f_d}·e_d.
    let tgt_frontiers: Vec<u32> = target_tgds.iter().map(frontier_size).collect();
    let tgt_invented: Vec<u64> = target_tgds.iter().map(invented_per_firing).collect();
    match strata {
        Bound::Finite(r) => {
            for _ in 0..r {
                let mut grown = universe;
                for (f, e) in tgt_frontiers.iter().zip(&tgt_invented) {
                    grown = grown.add(universe.pow(*f).mul(Bound::Finite(*e)));
                }
                universe = grown;
            }
        }
        Bound::Unbounded => {
            // Only unbounded if the target chase can actually invent
            // nulls forever; the universe itself is what diverges.
            universe = Bound::Unbounded;
        }
    }

    // Per-target-tgd firings over the final universe.
    let target_firings: Vec<Bound> = tgt_frontiers.iter().map(|f| universe.pow(*f)).collect();
    let target_nulls: Bound = target_firings
        .iter()
        .zip(&tgt_invented)
        .map(|(f, e)| f.mul(Bound::Finite(*e)))
        .fold(Bound::ZERO, Bound::add);
    let nulls = st_nulls.add(target_nulls);

    // Nulls per existential position ("Rel.i" keys).
    let mut nulls_per_position: BTreeMap<String, Bound> = BTreeMap::new();
    let all_rules = mapping
        .st_tgds()
        .iter()
        .zip(&st_firings)
        .chain(target_tgds.iter().zip(&target_firings));
    for (tgd, firings) in all_rules.clone() {
        let exist: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
        for atom in &tgd.rhs {
            for (i, t) in atom.args.iter().enumerate() {
                let invented_here = match t {
                    Term::Var(v) => exist.contains(v.as_str()),
                    Term::Func(_, _) => true,
                    Term::Const(_) => false,
                };
                if invented_here {
                    let key = format!("{}.{}", atom.relation, i);
                    let slot = nulls_per_position.entry(key).or_insert(Bound::ZERO);
                    *slot = slot.add(*firings);
                }
            }
        }
    }

    // Tuples per target relation: initial size + every write, capped by
    // the set-based `U^arity` bound (relations are sets over the value
    // universe; the write bound alone also caps insertions, which is
    // what the governor meters).
    let mut writes: BTreeMap<Name, Bound> = BTreeMap::new();
    for (tgd, firings) in all_rules.clone() {
        for atom in &tgd.rhs {
            let slot = writes.entry(atom.relation.clone()).or_insert(Bound::ZERO);
            *slot = slot.add(*firings);
        }
    }
    let mut tuples_per_relation: BTreeMap<Name, Bound> = BTreeMap::new();
    let mut tuples_total = Bound::ZERO;
    let mut bytes = Bound::ZERO;
    for rel in mapping.target().relations() {
        let initial = Bound::Finite(stats.card(rel.name()));
        let written = writes.get(rel.name()).copied().unwrap_or(Bound::ZERO);
        let write_bound = initial.add(written);
        let set_bound = universe.pow(rel.arity() as u32);
        let t = write_bound.min(set_bound);
        tuples_total = tuples_total.add(t);
        tuples_per_relation.insert(rel.name().clone(), t);
    }

    // Bytes, per the governor's model: each firing is billed its
    // conclusion tuples' approximate bytes (duplicates included).
    for (tgd, firings) in all_rules {
        let (_, row_bytes) = rhs_shape(tgd, max_value_bytes);
        bytes = bytes.add(firings.mul(row_bytes));
    }

    // Committed rounds each perform ≥ 1 target firing or ≥ 1 egd merge,
    // and every merge eliminates a labeled null (invented or initial).
    let st_total: Bound = st_firings.iter().copied().fold(Bound::ZERO, Bound::add);
    let target_total: Bound = target_firings.iter().copied().fold(Bound::ZERO, Bound::add);
    let merges = nulls.add(Bound::Finite(stats.initial_nulls));
    let rounds = target_total.add(merges);
    let firings = st_total.add(target_total).add(merges);

    CostSection {
        class,
        strata,
        value_universe: universe,
        assumed_cards: stats.cards.clone(),
        default_card: stats.default_card,
        st_tgd_firings: st_firings,
        target_tgd_firings: target_firings,
        nulls_per_position,
        tuples_per_relation,
        bounds: ChaseBounds {
            rounds,
            firings,
            tuples: tuples_total,
            nulls,
            bytes,
        },
    }
}

/// Aggregate bounds for `mapping` at `stats` — the admission-control
/// entry point (`dexcli --auto-budget` / `--deny-cost`).
pub fn chase_bounds(mapping: &Mapping, stats: &SourceStats) -> ChaseBounds {
    cost_section(mapping, stats).bounds
}

/// Run the cost pass: `DEX501` / `DEX502` / `DEX503`.
pub fn cost_pass(
    mapping: &Mapping,
    spans: Option<&SourceMap>,
    stats: &SourceStats,
    deny_cost: Option<u64>,
) -> Vec<Diagnostic> {
    let section = cost_section(mapping, stats);
    let mut out = Vec::new();

    if section.class == TerminationClass::Unknown
        && (!mapping.target_tgds().is_empty() || !mapping.st_tgds().is_empty())
    {
        let span = spans.and_then(|s| s.target_tgds.first().copied());
        out.push(
            Diagnostic::new(
                Code::Dex501,
                "chase-cost bounds are unbounded: the target tgds are not jointly \
                 acyclic, so no budget can be synthesized for this mapping",
            )
            .with_span(span)
            .with_note(
                "an admission controller must refuse this mapping at any \
                 --deny-cost threshold; --auto-budget sets no caps",
            ),
        );
    }

    if let Some(threshold) = deny_cost {
        let headline = section.bounds.headline();
        if headline.exceeds(threshold) {
            out.push(
                Diagnostic::new(
                    Code::Dex502,
                    format!(
                        "predicted chase cost {headline} exceeds the admission \
                         threshold {threshold}"
                    ),
                )
                .with_note(format!(
                    "bounds at the assumed cardinalities: rounds ≤ {}, firings ≤ {}, \
                     tuples ≤ {}, nulls ≤ {}, bytes ≤ {}",
                    section.bounds.rounds,
                    section.bounds.firings,
                    section.bounds.tuples,
                    section.bounds.nulls,
                    section.bounds.bytes,
                )),
            );
        }
    }

    // DEX503: one tgd dwarfs the rest. Only meaningful with ≥ 2 rules,
    // finite bounds, and a non-trivial remainder.
    let per_tgd: Vec<(bool, usize, Bound)> = section
        .st_tgd_firings
        .iter()
        .enumerate()
        .map(|(i, b)| (true, i, *b))
        .chain(
            section
                .target_tgd_firings
                .iter()
                .enumerate()
                .map(|(i, b)| (false, i, *b)),
        )
        .collect();
    if per_tgd.len() >= 2 {
        if let Some(&(is_st, idx, max)) = per_tgd.iter().max_by_key(|(_, _, b)| *b) {
            let rest: Bound = per_tgd
                .iter()
                .filter(|&&(s, i, _)| (s, i) != (is_st, idx))
                .map(|(_, _, b)| *b)
                .fold(Bound::ZERO, Bound::add);
            if let (Bound::Finite(m), Bound::Finite(r)) = (max, rest) {
                if r >= 1 && m >= r.saturating_mul(DWARF_FACTOR) {
                    let (kind, rule, span) = if is_st {
                        (
                            "st-tgd",
                            mapping.st_tgds().get(idx).map(|t| t.to_string()),
                            spans.and_then(|s| s.st_tgds.get(idx).copied()),
                        )
                    } else {
                        (
                            "target tgd",
                            mapping.target_tgds().get(idx).map(|t| t.to_string()),
                            spans.and_then(|s| s.target_tgds.get(idx).copied()),
                        )
                    };
                    out.push(
                        Diagnostic::new(
                            Code::Dex503,
                            format!(
                                "{kind} #{idx} dominates the predicted cost: its firing \
                                 bound {m} is ≥ {DWARF_FACTOR}× the rest of the mapping \
                                 combined ({r})"
                            ),
                        )
                        .with_span(span)
                        .with_witness(Witness::TgdIndices(vec![idx]))
                        .with_note(match rule {
                            Some(r) => format!("dominating rule: `{r}`"),
                            None => "dominating rule index out of range".to_string(),
                        }),
                    );
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_chase::exchange;
    use dex_logic::parse_mapping_with_spans;
    use dex_relational::Instance;

    fn stats_n(n: u64) -> SourceStats {
        SourceStats::uniform(n)
    }

    #[test]
    fn full_mapping_has_finite_linear_bounds() {
        let (m, _) = parse_mapping_with_spans(
            "source Emp(name, dept);\ntarget Mgr(emp, mgr);\nEmp(x, d) -> Mgr(x, d);",
        )
        .unwrap();
        let s = cost_section(&m, &stats_n(10));
        assert_eq!(s.class, TerminationClass::WeaklyAcyclic);
        assert_eq!(s.strata, Bound::ZERO);
        assert_eq!(s.st_tgd_firings, vec![Bound::Finite(10)]);
        assert!(s.bounds.all_finite());
        assert_eq!(s.tuples_per_relation[&Name::new("Mgr")], Bound::Finite(20));
        assert_eq!(s.bounds.nulls, Bound::ZERO);
    }

    #[test]
    fn non_terminating_mapping_is_unbounded_and_lints_dex501() {
        let (m, sm) = parse_mapping_with_spans(
            "source R(a);\ntarget S(a, b);\nR(x) -> S(x, x);\nS(x, y) -> S(y, z);",
        )
        .unwrap();
        let s = cost_section(&m, &stats_n(10));
        assert_eq!(s.class, TerminationClass::Unknown);
        assert_eq!(s.strata, Bound::Unbounded);
        assert_eq!(s.bounds.rounds, Bound::Unbounded);
        assert!(!s.bounds.all_finite());
        // Phase 1 is still finite.
        assert_eq!(s.st_tgd_firings, vec![Bound::Finite(10)]);

        let ds = cost_pass(&m, Some(&sm), &stats_n(10), None);
        assert!(ds.iter().any(|d| d.code == Code::Dex501));
        // And --deny-cost refuses at any threshold.
        let ds = cost_pass(&m, Some(&sm), &stats_n(10), Some(u64::MAX));
        assert!(ds.iter().any(|d| d.code == Code::Dex502));
    }

    #[test]
    fn deny_cost_thresholds_on_headline_bound() {
        let (m, sm) = parse_mapping_with_spans(
            "source Emp(name, dept);\ntarget Mgr(emp, mgr);\nEmp(x, d) -> Mgr(x, d);",
        )
        .unwrap();
        // Headline is max(rounds, firings, tuples, nulls): uniform
        // stats assume 10 pre-existing target tuples, so tuples ≤ 20.
        let none = cost_pass(&m, Some(&sm), &stats_n(10), Some(20));
        assert!(none.iter().all(|d| d.code != Code::Dex502));
        let some = cost_pass(&m, Some(&sm), &stats_n(10), Some(19));
        assert!(some.iter().any(|d| d.code == Code::Dex502));
    }

    #[test]
    fn dwarfing_join_raises_dex503() {
        // One 3-way self-join against two copy rules at n = 1000:
        // 10⁹ vs 2·10³ — far past the 1024× factor.
        let (m, sm) = parse_mapping_with_spans(
            "source R(a, b);\nsource S(a);\ntarget T(a, b);\ntarget U(a);\n\
             R(x, y) & R(y, z) & R(z, w) -> T(x, w);\nS(x) -> U(x);\nS(x) -> T(x, x);",
        )
        .unwrap();
        let ds = cost_pass(&m, Some(&sm), &stats_n(DEFAULT_CARD), None);
        let d = ds
            .iter()
            .find(|d| d.code == Code::Dex503)
            .expect("dwarf lint");
        assert!(d.message.contains("st-tgd #0"));
        // Balanced mappings stay silent.
        let (m2, sm2) = parse_mapping_with_spans(
            "source R(a, b);\ntarget T(a, b);\ntarget U(a, b);\n\
             R(x, y) -> T(x, y);\nR(x, y) -> U(y, x);",
        )
        .unwrap();
        assert!(cost_pass(&m2, Some(&sm2), &stats_n(DEFAULT_CARD), None).is_empty());
    }

    #[test]
    fn bounds_are_monotone_in_cardinalities() {
        let (m, _) = parse_mapping_with_spans(
            "source E(a, b);\ntarget V(a, b);\ntarget W(a, b);\n\
             E(x, y) -> V(x, y);\nV(x, y) -> W(x, z);\nkey W(a);",
        )
        .unwrap();
        let small = cost_section(&m, &stats_n(5)).bounds;
        let big = cost_section(&m, &stats_n(50)).bounds;
        assert!(small.rounds <= big.rounds);
        assert!(small.firings <= big.firings);
        assert!(small.tuples <= big.tuples);
        assert!(small.nulls <= big.nulls);
        assert!(small.bytes <= big.bytes);
    }

    #[test]
    fn measured_bounds_cover_an_actual_exchange() {
        let (m, _) = parse_mapping_with_spans(
            "source Emp(name, dept);\ntarget Dept(dept, mgr);\ntarget Mgr(mgr);\n\
             Emp(e, d) -> Dept(d, m);\nDept(d, m) -> Mgr(m);\nkey Dept(dept);",
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        for i in 0..6 {
            let t = dex_relational::Tuple::from(vec![
                Value::str(format!("e{i}")),
                Value::str(format!("d{}", i % 2)),
            ]);
            src.insert("Emp", t).unwrap();
        }
        let stats = SourceStats::measure(&src);
        let s = cost_section(&m, &stats);
        let r = exchange(&m, &src).unwrap();
        assert!(
            Bound::from(r.stats.rounds) <= s.bounds.rounds,
            "rounds {} > bound {}",
            r.stats.rounds,
            s.bounds.rounds
        );
        assert!(Bound::from(r.firings) <= s.bounds.firings);
        assert!(Bound::from(r.nulls_created) <= s.bounds.nulls);
        assert!(Bound::from(r.target.fact_count()) <= s.bounds.tuples);
    }
}
