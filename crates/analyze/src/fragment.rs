//! Compiler-fragment pass: `DEX201`–`DEX206`.
//!
//! Surfaces [`dex_core::precheck()`]'s static prediction of the lens
//! compiler's verdict as diagnostics, so `dexcli lint` can say *before
//! compiling* whether `compile()` will accept the mapping and with what
//! per-tgd fidelity. A property test in this crate pins the agreement
//! between the prediction and the real compiler.

use crate::diagnostic::{Code, Diagnostic, Witness};
use dex_core::{precheck, Fidelity, PrecheckReason};
use dex_logic::{Mapping, SourceMap};

/// Run the compiler-fragment pass.
pub fn fragment_pass(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    let report = precheck(mapping);
    let mut out = Vec::new();

    let st_span = |i: usize| spans.and_then(|s| s.st_tgds.get(i).copied());

    for reason in &report.reasons {
        let span = match reason {
            PrecheckReason::TargetTgds { .. } => spans.and_then(|s| s.target_tgds.first().copied()),
            _ => reason.tgd_index().and_then(st_span),
        };
        let d = match reason {
            PrecheckReason::SelfJoin { tgd, relation } => Diagnostic::new(
                Code::Dex201,
                format!(
                    "st-tgd #{tgd} joins `{relation}` with itself; compile() will \
                         refuse it (self-joins need aliasing)"
                ),
            )
            .with_witness(Witness::Relation(relation.clone())),
            PrecheckReason::FunctionTerm { tgd, atom } => Diagnostic::new(
                Code::Dex202,
                format!(
                    "st-tgd #{tgd} has a function term in `{atom}`; compile() will \
                     refuse it (SO-tgds run under the chase, not lenses)"
                ),
            ),
            PrecheckReason::ShapeDisagreement { relation, tgds } => Diagnostic::new(
                Code::Dex203,
                format!(
                    "tgds {} producing `{relation}` disagree on which columns are \
                         determined; compile() will refuse the mapping",
                    tgds.iter()
                        .map(|i| format!("#{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_witness(Witness::TgdIndices(tgds.clone())),
            PrecheckReason::TargetTgds { count } => Diagnostic::new(
                Code::Dex204,
                format!(
                    "{count} target tgd(s) put the mapping outside the compilable \
                     fragment; compile() will refuse it (enforce them with the chase)"
                ),
            ),
            PrecheckReason::DuplicateBase {
                relation,
                source,
                tgds,
            } => Diagnostic::new(
                Code::Dex206,
                format!(
                    "`{source}` feeds `{relation}` through several conjuncts (tgds {}); \
                     compile() will refuse the mapping (the union lens would mention \
                     the base table twice, making put ambiguous)",
                    tgds.iter()
                        .map(|i| format!("#{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_witness(Witness::TgdIndices(tgds.clone())),
        };
        out.push(d.with_span(span));
    }

    for (i, fid) in report.fidelity.iter().enumerate() {
        if let Fidelity::Approximate(reasons) = fid {
            let mut d = Diagnostic::new(
                Code::Dex205,
                format!(
                    "st-tgd #{i} compiles only approximately: the lens pair deviates \
                     from chase semantics"
                ),
            )
            .with_span(st_span(i));
            for r in reasons {
                d = d.with_note(r.clone());
            }
            out.push(d);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::compile;
    use dex_logic::parse_mapping_with_spans;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (m, sm) = parse_mapping_with_spans(src).unwrap();
        fragment_pass(&m, Some(&sm))
    }

    #[test]
    fn compilable_mapping_is_silent() {
        let ds = lint("source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn self_join_raises_dex201_at_the_tgd() {
        let ds = lint("source S(a, b);\ntarget T(a, c);\nS(x, y) & S(y, z) -> T(x, z);");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex201);
        assert_eq!(ds[0].span.unwrap().line, 3);
    }

    #[test]
    fn shape_disagreement_raises_dex203_at_the_dissenter() {
        let ds = lint(
            "source R1(a, b);\nsource R2(a);\ntarget S(a, b);\n\
             R1(x, y) -> S(x, y);\nR2(x) -> S(x, y);",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex203);
        assert_eq!(ds[0].span.unwrap().line, 5);
        assert_eq!(ds[0].witness, Some(Witness::TgdIndices(vec![0, 1])));
    }

    #[test]
    fn target_tgds_raise_dex204_at_first_target_tgd() {
        let src = "source S(a);\ntarget T(a);\ntarget U(a);\nS(x) -> T(x);\nT(x) -> U(x);";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex204);
        assert_eq!(ds[0].span.unwrap().line, 5);
        let (m, _) = parse_mapping_with_spans(src).unwrap();
        assert!(compile(&m).is_err());
    }

    #[test]
    fn duplicate_base_raises_dex206_at_the_second_rule() {
        let src = "source S(a, b);\ntarget T(c, d);\nS(x, y) -> T(x, y);\nS(x, y) -> T(y, x);";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex206);
        assert_eq!(ds[0].span.unwrap().line, 4);
        assert_eq!(ds[0].witness, Some(Witness::TgdIndices(vec![0, 1])));
        let (m, _) = parse_mapping_with_spans(src).unwrap();
        assert!(compile(&m).is_err());
    }

    #[test]
    fn shared_existential_raises_dex205_info() {
        let ds = lint(
            "source Takes(name, course);\ntarget Student(id, name);\ntarget StudentCard(id);\n\
             Takes(x, y) -> Student(z, x) & StudentCard(z);",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Dex205);
        assert_eq!(ds[0].span.unwrap().line, 4);
        assert!(ds[0].notes[0].contains("`z`"));
    }
}
