//! `dexcli explain` — render a mapping's execution plan.
//!
//! [`explain`] bundles the structural plan IR from [`dex_core::plan()`]
//! (premise-matching strategy, matcher phase, lens trees, holes) with
//! the position-level [`FlowGraph`] and its provenance closure from
//! [`crate::dataflow`], then renders the result three ways:
//!
//! * [`ExplainReport::render_tree`] — the human-facing annotated tree
//!   (the paper's “show plan capability similar to that used in
//!   relational database engines”),
//! * [`ExplainReport::to_json`] — a stable machine-readable form,
//!   pinned by golden-file tests,
//! * [`ExplainReport::render_dot`] — the flow graph as Graphviz DOT.
//!
//! All three are deterministic: the underlying IR is built from
//! ordered containers and the renderers iterate them in order.

use crate::dataflow::{pos_label, DepRef, FlowClosure, FlowGraph, PosRef};
use dex_chase::TerminationClass;
use dex_core::{CostSection, LensSection, MappingPlan, OptimizedSection, TgdPlan};
use dex_logic::{Mapping, PremisePlan, SourceMap, Span};
use dex_relational::SourceStats;
use dex_rellens::NodeSummary;
use serde_json::{json, Value as Json};
use std::fmt::Write as _;

/// Everything `dexcli explain` knows about one mapping.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The analyzed mapping.
    pub mapping: Mapping,
    /// Source spans, when the mapping came from text.
    pub spans: Option<SourceMap>,
    /// The structural execution plan ([`dex_core::plan()`]).
    pub plan: MappingPlan,
    /// The position-level flow graph.
    pub flow: FlowGraph,
    /// The transitive provenance closure of `flow`.
    pub closure: FlowClosure,
}

/// Build the explain report for `mapping`, with cost bounds evaluated
/// at a uniform cardinality of [`crate::cost::DEFAULT_CARD`].
pub fn explain(mapping: &Mapping, spans: Option<&SourceMap>) -> ExplainReport {
    explain_with(
        mapping,
        spans,
        &SourceStats::uniform(crate::cost::DEFAULT_CARD),
    )
}

/// Build the explain report with cost bounds evaluated at `stats`
/// (`dexcli explain --cards`).
pub fn explain_with(
    mapping: &Mapping,
    spans: Option<&SourceMap>,
    stats: &SourceStats,
) -> ExplainReport {
    let flow = FlowGraph::build(mapping);
    let closure = flow.closure();
    let mut plan = dex_core::plan(mapping);
    plan.cost = Some(crate::cost::cost_section(mapping, stats));
    plan.optimized = Some(optimized_section(mapping));
    ExplainReport {
        mapping: mapping.clone(),
        spans: spans.cloned(),
        plan,
        flow,
        closure,
    }
}

/// Run the verified optimizer and summarize what it would do, for the
/// plan IR's `optimized` section.
pub fn optimized_section(mapping: &Mapping) -> OptimizedSection {
    let outcome = crate::semantic::optimize(mapping);
    OptimizedSection {
        rewrites: outcome
            .rewrites
            .iter()
            .map(|r| r.description.clone())
            .collect(),
        original_size: crate::semantic::mapping_size(mapping),
        optimized_size: crate::semantic::mapping_size(&outcome.mapping),
        refused: outcome.refused,
    }
}

/// Human label for a termination class in the cost section.
fn class_str(c: TerminationClass) -> &'static str {
    match c {
        TerminationClass::WeaklyAcyclic => "weakly acyclic",
        TerminationClass::JointlyAcyclic => "jointly acyclic",
        TerminationClass::Unknown => "unknown (chase may diverge)",
    }
}

/// `1:4` or the empty string.
fn span_suffix(span: Option<Span>) -> String {
    match span {
        Some(s) => format!("  [{s}]"),
        None => String::new(),
    }
}

fn comma<T: ToString>(items: impl IntoIterator<Item = T>) -> String {
    items
        .into_iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl ExplainReport {
    /// Every target-schema position, in schema order.
    fn target_positions(&self) -> Vec<PosRef> {
        let mut out = Vec::new();
        for rel in self.mapping.target().relations() {
            for pos in 0..rel.arity() {
                out.push(PosRef::new(rel.name().clone(), pos));
            }
        }
        out
    }

    fn label(&self, p: &PosRef) -> String {
        pos_label(&self.mapping, p)
    }

    /// One-line provenance summary for a target position.
    fn provenance_line(&self, p: &PosRef) -> String {
        let mut parts: Vec<String> = self
            .closure
            .sources_of(p)
            .iter()
            .map(|s| self.label(s))
            .collect();
        parts.extend(
            self.closure
                .constants_of(p)
                .iter()
                .map(|c| format!("const '{c}'")),
        );
        if self.closure.invented.contains(p) {
            parts.push("invented null".to_string());
        }
        if parts.is_empty() {
            "(never produced)".to_string()
        } else {
            parts.join(", ")
        }
    }

    fn premise_tree(
        &self,
        out: &mut String,
        indent: &str,
        premise: &PremisePlan,
        atoms: &[String],
    ) {
        for (i, step) in premise.steps.iter().enumerate() {
            let atom = atoms.get(step.atom).map(String::as_str).unwrap_or("<atom>");
            let how = if step.is_scan() {
                format!("scan  {atom}")
            } else {
                format!("probe {atom} on col {}", comma(step.probe_positions.iter()))
            };
            let binds = if step.binds.is_empty() {
                String::new()
            } else {
                format!("   binds {}", comma(step.binds.iter()))
            };
            let _ = writeln!(out, "{indent}step {}: {how}{binds}", i + 1);
        }
    }

    fn flow_tree(&self, out: &mut String, indent: &str, dep: DepRef) {
        let mut any = false;
        for e in self.flow.edges.iter().filter(|e| e.dep == dep) {
            any = true;
            let via = match &e.var {
                Some(v) => format!("  via {v}"),
                None => "  (equality)".to_string(),
            };
            let _ = writeln!(
                out,
                "{indent}{} -> {}{via}",
                self.label(&e.from),
                self.label(&e.to)
            );
        }
        for np in self.flow.null_producers.iter().filter(|n| n.dep == dep) {
            any = true;
            let _ = writeln!(
                out,
                "{indent}invents null at {}  (exists {})",
                self.label(&np.at),
                np.var
            );
        }
        for cs in self.flow.const_sinks.iter().filter(|c| c.dep == dep) {
            any = true;
            let _ = writeln!(
                out,
                "{indent}writes const '{}' at {}",
                cs.value,
                self.label(&cs.at)
            );
        }
        if !any {
            let _ = writeln!(out, "{indent}(none)");
        }
    }

    fn tgd_tree(&self, out: &mut String, t: &TgdPlan, dep: DepRef, span: Option<Span>) {
        let _ = writeln!(out, "{dep}: {}{}", t.display, span_suffix(span));
        let _ = writeln!(out, "  matcher: {}", self.matcher_str(t));
        let _ = writeln!(out, "  sharding: {}  (--threads N)", t.sharding);
        let _ = writeln!(out, "  premise:");
        self.premise_tree(out, "    ", &t.premise, &t.premise_atoms);
        if t.nulls_per_firing == 0 {
            let _ = writeln!(out, "  invents: nothing");
        } else {
            let _ = writeln!(
                out,
                "  invents: {} null(s) per firing  (exists {})",
                t.nulls_per_firing,
                comma(t.existentials.iter())
            );
        }
        let _ = writeln!(out, "  flow:");
        self.flow_tree(out, "    ", dep);
        if let Some(f) = &t.fidelity {
            let _ = writeln!(out, "  lens fidelity: {f}");
        }
    }

    fn matcher_str(&self, t: &TgdPlan) -> &'static str {
        t.matcher.as_str()
    }

    fn lens_node_tree(&self, out: &mut String, base_indent: &str, nodes: &[NodeSummary]) {
        for n in nodes {
            let depth = if n.path.is_empty() {
                0
            } else {
                n.path.matches('.').count() + 1
            };
            let indent = "  ".repeat(depth);
            let mut line = format!("{base_indent}{indent}{} {}", n.kind, n.detail);
            if let Some(p) = &n.policy {
                let _ = write!(line, "  [{p}]");
            }
            if !n.policies.is_empty() {
                let _ = write!(
                    line,
                    "  [{}]",
                    n.policies
                        .iter()
                        .map(|(a, p)| format!("{a}: {p}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            let _ = writeln!(out, "{line}");
        }
    }

    /// The static cost bounds, as a tree section.
    fn cost_tree(&self, out: &mut String, c: &CostSection) {
        let _ = writeln!(
            out,
            "cost (assumed cardinality {} per relation unless listed):",
            c.default_card
        );
        if !c.assumed_cards.is_empty() {
            let cards = c
                .assumed_cards
                .iter()
                .map(|(n, k)| format!("{n}={k}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  cards: {cards}");
        }
        let _ = writeln!(out, "  termination: {}", class_str(c.class));
        let _ = writeln!(
            out,
            "  null strata <= {}   value universe <= {}",
            c.strata, c.value_universe
        );
        for (i, b) in c.st_tgd_firings.iter().enumerate() {
            let _ = writeln!(out, "  st-tgd #{i} firings <= {b}");
        }
        for (i, b) in c.target_tgd_firings.iter().enumerate() {
            let _ = writeln!(out, "  target tgd #{i} firings <= {b}");
        }
        for (pos, b) in &c.nulls_per_position {
            let _ = writeln!(out, "  nulls at {pos} <= {b}");
        }
        for (rel, b) in &c.tuples_per_relation {
            let _ = writeln!(out, "  tuples in {rel} <= {b}");
        }
        let _ = writeln!(
            out,
            "  totals: rounds <= {}, firings <= {}, tuples <= {}, nulls <= {}, bytes <= {}",
            c.bounds.rounds, c.bounds.firings, c.bounds.tuples, c.bounds.nulls, c.bounds.bytes
        );
    }

    /// The human-facing annotated plan tree.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let p = &self.plan;
        let _ = writeln!(
            out,
            "mapping plan: {} st-tgd(s), {} target tgd(s), {} target egd(s)",
            p.st_tgds.len(),
            p.target_tgds.len(),
            p.target_egds.len()
        );
        let _ = writeln!(out);
        for t in &p.st_tgds {
            let span = self
                .spans
                .as_ref()
                .and_then(|sm| sm.st_tgds.get(t.index))
                .copied();
            self.tgd_tree(&mut out, t, DepRef::St(t.index), span);
        }
        for t in &p.target_tgds {
            let span = self
                .spans
                .as_ref()
                .and_then(|sm| sm.target_tgds.get(t.index))
                .copied();
            self.tgd_tree(&mut out, t, DepRef::Target(t.index), span);
        }
        for e in &p.target_egds {
            let span = self
                .spans
                .as_ref()
                .and_then(|sm| sm.target_egds.get(e.index))
                .copied();
            let _ = writeln!(out, "egd #{}: {}{}", e.index, e.display, span_suffix(span));
            let _ = writeln!(out, "  matcher: indexed, delta-driven (semi-naive)");
            let _ = writeln!(out, "  premise:");
            let atoms: Vec<String> = self
                .mapping
                .target_egds()
                .get(e.index)
                .map(|egd| egd.lhs.iter().map(|a| a.to_string()).collect())
                .unwrap_or_default();
            self.premise_tree(&mut out, "    ", &e.premise, &atoms);
            let _ = writeln!(out, "  flow:");
            self.flow_tree(&mut out, "    ", DepRef::Egd(e.index));
        }
        let _ = writeln!(out, "lens template:");
        match &p.lens {
            LensSection::Available { relations, holes } => {
                for r in relations {
                    let _ = writeln!(out, "  {}  view({})", r.target_rel, comma(r.view.iter()));
                    let _ = writeln!(out, "    source lens:");
                    self.lens_node_tree(&mut out, "      ", &r.source_nodes);
                    let _ = writeln!(out, "    target lens:");
                    self.lens_node_tree(&mut out, "      ", &r.target_nodes);
                }
                if holes.is_empty() {
                    let _ = writeln!(out, "  holes: none");
                } else {
                    let _ = writeln!(out, "  holes:");
                    for h in holes {
                        let _ = writeln!(
                            out,
                            "    #{} [{}] {}  (current: {})",
                            h.id, h.target_rel, h.question, h.current
                        );
                    }
                }
            }
            LensSection::Unavailable { reasons } => {
                let _ = writeln!(out, "  unavailable (outside the compilable fragment):");
                for r in reasons {
                    let _ = writeln!(out, "    - {r}");
                }
            }
        }
        if let Some(c) = &p.cost {
            let _ = writeln!(out);
            self.cost_tree(&mut out, c);
        }
        if let Some(o) = &p.optimized {
            let _ = writeln!(out);
            let _ = writeln!(out, "optimized (verified rewrites):");
            match &o.refused {
                Some(reason) => {
                    let _ = writeln!(out, "  refused: {reason}");
                }
                None if o.rewrites.is_empty() => {
                    let _ = writeln!(out, "  already minimal under the implemented rewrites");
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  {} atoms / {} deps  ->  {} atoms / {} deps",
                        o.original_size.0,
                        o.original_size.1,
                        o.optimized_size.0,
                        o.optimized_size.1
                    );
                    for r in &o.rewrites {
                        let _ = writeln!(out, "  - {r}");
                    }
                }
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "provenance (per target position):");
        for p in self.target_positions() {
            let _ = writeln!(out, "  {} <= {}", self.label(&p), self.provenance_line(&p));
        }
        out
    }

    /// The stable machine-readable form (pinned by golden tests).
    pub fn to_json(&self) -> Json {
        let edges: Vec<Json> = self
            .flow
            .edges
            .iter()
            .map(|e| {
                json!({
                    "from": e.from.to_string(),
                    "from_label": self.label(&e.from),
                    "to": e.to.to_string(),
                    "to_label": self.label(&e.to),
                    "var": e.var.as_ref().map_or(Json::Null, |v| Json::String(v.to_string())),
                    "dep": e.dep.to_string(),
                })
            })
            .collect();
        let null_producers: Vec<Json> = self
            .flow
            .null_producers
            .iter()
            .map(|n| {
                json!({
                    "at": n.at.to_string(),
                    "label": self.label(&n.at),
                    "var": n.var.to_string(),
                    "dep": n.dep.to_string(),
                })
            })
            .collect();
        let const_sinks: Vec<Json> = self
            .flow
            .const_sinks
            .iter()
            .map(|c| {
                json!({
                    "at": c.at.to_string(),
                    "label": self.label(&c.at),
                    "value": c.value.to_string(),
                    "dep": c.dep.to_string(),
                })
            })
            .collect();
        let provenance: Vec<Json> = self
            .target_positions()
            .iter()
            .map(|p| {
                json!({
                    "position": p.to_string(),
                    "label": self.label(p),
                    "sources": self
                        .closure
                        .sources_of(p)
                        .iter()
                        .map(|s| self.label(s))
                        .collect::<Vec<_>>(),
                    "constants": self
                        .closure
                        .constants_of(p)
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>(),
                    "invented": self.closure.invented.contains(p),
                })
            })
            .collect();
        let plan = serde_json::to_value(&self.plan).unwrap_or(Json::Null);
        let flow = json!({
            "edges": edges,
            "null_producers": null_producers,
            "const_sinks": const_sinks,
        });
        json!({
            "plan": plan,
            "flow": flow,
            "provenance": provenance,
        })
    }

    /// The flow graph as Graphviz DOT.
    pub fn render_dot(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        let _ = writeln!(out, "digraph dex_flow {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        // Position nodes: every schema position mentioned by the graph,
        // plus every target position (so never-produced columns show).
        let mut positions: Vec<PosRef> = self.target_positions();
        for e in &self.flow.edges {
            positions.push(e.from.clone());
            positions.push(e.to.clone());
        }
        for n in &self.flow.null_producers {
            positions.push(n.at.clone());
        }
        for c in &self.flow.const_sinks {
            positions.push(c.at.clone());
        }
        positions.sort();
        positions.dedup();
        for p in &positions {
            let shape = if self.flow.is_source(p) {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}\"];",
                esc(&p.to_string()),
                esc(&self.label(p))
            );
        }
        for e in &self.flow.edges {
            let label = match &e.var {
                Some(v) => format!("{v} ({})", e.dep),
                None => format!("({})", e.dep),
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                esc(&e.from.to_string()),
                esc(&e.to.to_string()),
                esc(&label)
            );
        }
        for (i, n) in self.flow.null_producers.iter().enumerate() {
            let id = format!("null_{i}");
            let _ = writeln!(
                out,
                "  \"{id}\" [shape=diamond, style=dashed, label=\"exists {}\"];",
                esc(n.var.as_str())
            );
            let _ = writeln!(
                out,
                "  \"{id}\" -> \"{}\" [style=dashed, label=\"({})\"];",
                esc(&n.at.to_string()),
                esc(&n.dep.to_string())
            );
        }
        for (i, c) in self.flow.const_sinks.iter().enumerate() {
            let id = format!("const_{i}");
            let _ = writeln!(
                out,
                "  \"{id}\" [shape=note, label=\"'{}'\"];",
                esc(&c.value.to_string())
            );
            let _ = writeln!(
                out,
                "  \"{id}\" -> \"{}\" [label=\"({})\"];",
                esc(&c.at.to_string()),
                esc(&c.dep.to_string())
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping_with_spans;

    fn report(src: &str) -> ExplainReport {
        let (m, sm) = parse_mapping_with_spans(src).unwrap();
        explain(&m, Some(&sm))
    }

    #[test]
    fn tree_covers_plan_flow_lens_and_provenance() {
        let r = report(
            "source Emp(name, dept);\nsource Dept(dept, mgr);\n\
             target Worker(name, dept, mgr);\n\
             Emp(n, d) & Dept(d, m) -> Worker(n, d, m);",
        );
        let t = r.render_tree();
        assert!(t.contains("st-tgd #0:"), "{t}");
        assert!(t.contains("indexed full pass"), "{t}");
        assert!(t.contains("probe Dept(d, m) on col 0"), "{t}");
        assert!(t.contains("Emp.name -> Worker.name  via n"), "{t}");
        assert!(t.contains("lens fidelity: exact"), "{t}");
        assert!(t.contains("Worker.mgr <= Dept.mgr"), "{t}");
    }

    #[test]
    fn tree_reports_nulls_and_spans() {
        let r = report("source R(a);\ntarget T(a, b);\nR(x) -> T(x, y);");
        let t = r.render_tree();
        assert!(
            t.contains("invents: 1 null(s) per firing  (exists y)"),
            "{t}"
        );
        assert!(t.contains("[3:1]"), "{t}");
        assert!(t.contains("T.b <= invented null"), "{t}");
    }

    #[test]
    fn tree_survives_uncompilable_mappings() {
        let r = report("source S(a, b);\ntarget T(a, c);\nS(x, y) & S(y, z) -> T(x, z);");
        let t = r.render_tree();
        assert!(
            t.contains("unavailable (outside the compilable fragment)"),
            "{t}"
        );
        assert!(t.contains("self-join"), "{t}");
    }

    #[test]
    fn tree_covers_target_dependencies_and_egds() {
        let r = report(
            "source R(a);\ntarget S(a);\ntarget T(a, b);\nkey T(a);\n\
             R(x) -> S(x);\nS(x) -> T(x, y);",
        );
        let t = r.render_tree();
        assert!(t.contains("target tgd #0:"), "{t}");
        assert!(t.contains("indexed, delta-driven (semi-naive)"), "{t}");
        assert!(t.contains("egd #0:"), "{t}");
    }

    #[test]
    fn tree_renders_cost_section() {
        let r = report("source R(a);\ntarget T(a, b);\nR(x) -> T(x, y);");
        let t = r.render_tree();
        assert!(
            t.contains("cost (assumed cardinality 1000 per relation unless listed):"),
            "{t}"
        );
        assert!(t.contains("termination: weakly acyclic"), "{t}");
        assert!(t.contains("st-tgd #0 firings <= 1000"), "{t}");
        assert!(t.contains("nulls at T.1 <= 1000"), "{t}");
        assert!(t.contains("totals: rounds <="), "{t}");
    }

    #[test]
    fn cost_section_respects_supplied_stats() {
        let (m, sm) =
            parse_mapping_with_spans("source R(a);\ntarget T(a, b);\nR(x) -> T(x, y);").unwrap();
        let stats = dex_relational::SourceStats::uniform(7).with_card("R", 3);
        let r = explain_with(&m, Some(&sm), &stats);
        let t = r.render_tree();
        assert!(
            t.contains("cost (assumed cardinality 7 per relation unless listed):"),
            "{t}"
        );
        assert!(t.contains("cards: R=3"), "{t}");
        assert!(t.contains("st-tgd #0 firings <= 3"), "{t}");
    }

    #[test]
    fn unknown_termination_renders_unbounded_cost() {
        let r = report("source R(a);\ntarget S(a, b);\nR(x) -> S(x, x);\nS(x, y) -> S(y, z);");
        let t = r.render_tree();
        assert!(
            t.contains("termination: unknown (chase may diverge)"),
            "{t}"
        );
        assert!(t.contains("value universe <= unbounded"), "{t}");
        assert!(t.contains("totals: rounds <= unbounded"), "{t}");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = report("source R(a);\ntarget T(a, b);\nR(x) -> T(x, y);");
        let j = r.to_json();
        assert!(j["plan"]["st_tgds"][0]["premise"]["steps"]
            .as_array()
            .is_some());
        assert_eq!(j["flow"]["edges"][0]["from_label"].as_str(), Some("R.a"));
        assert_eq!(j["flow"]["null_producers"][0]["var"].as_str(), Some("y"));
        assert_eq!(j["provenance"][1]["invented"].as_bool(), Some(true));
        assert_eq!(j["provenance"][0]["sources"][0].as_str(), Some("R.a"));
        assert_eq!(j["plan"]["cost"]["default_card"].as_u64(), Some(1000));
        assert!(j["plan"]["cost"]["bounds"]["nulls"].as_u64().is_some());
    }

    #[test]
    fn dot_is_valid_ish_and_deterministic() {
        let r = report("source R(a);\ntarget T(a, b);\nR(x) -> T(x, 'v\"q');");
        let d = r.render_dot();
        assert!(d.starts_with("digraph dex_flow {"), "{d}");
        assert!(d.contains("shape=box"), "{d}");
        assert!(d.contains("\\\"q"), "escapes quotes: {d}");
        assert_eq!(d, r.render_dot());
    }

    #[test]
    fn renders_for_empty_mapping() {
        let r = report("source R(a);\ntarget T(a);\n");
        let t = r.render_tree();
        assert!(t.contains("0 st-tgd(s)"), "{t}");
        assert!(t.contains("T.a <= (never produced)"), "{t}");
    }
}
