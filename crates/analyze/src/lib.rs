//! # dex-analyze — a clippy-style static analyzer for schema mappings
//!
//! Multi-pass analysis over parsed [`Mapping`]s producing structured
//! [`Diagnostic`]s with **stable codes**, severities, source [`Span`]s
//! (via the parser's [`SourceMap`] side table), and machine-checkable
//! witnesses. Surfaced on the command line as `dexcli lint`.
//!
//! The passes, in the order [`analyze`] runs them:
//!
//! 1. **Termination** ([`termination::termination_pass`], `DEX0xx`) —
//!    classifies the target tgds with weak acyclicity and, when that
//!    fails, joint acyclicity; a failure carries the offending
//!    special-edge cycle as a witness re-checkable with
//!    [`dex_chase::verify_witness`].
//! 2. **Hygiene** ([`hygiene::hygiene_pass`], `DEX1xx`) — unused /
//!    unproduced relations, singleton variables, constant-clash egds,
//!    and chase-based tgd redundancy.
//! 3. **Compiler fragment** ([`fragment::fragment_pass`], `DEX2xx`) —
//!    [`dex_core::precheck()`]'s static prediction of `compile()`'s
//!    verdict and per-tgd fidelity, pinned to the real compiler by a
//!    property test.
//! 4. **Operator prechecks** ([`opscheck::ops_pass`], `DEX3xx`) —
//!    would `compose` / `maximum_recovery` accept this mapping?
//! 5. **Dataflow** ([`dataflow::dataflow_pass`], `DEX4xx`) — a
//!    position-level flow graph over the mapping (provenance edges,
//!    null producers, constant sinks) closed under target tgds and
//!    egds, reporting lossy/dead source positions, null-only target
//!    positions, type conflicts, and update-policy conflicts. The same
//!    graph powers the `dexcli explain` plan renderer ([`plan`]).
//! 6. **Cost** ([`cost::cost_pass`], `DEX5xx`) — static chase-cost
//!    bounds and admission thresholds.
//! 7. **Semantic** ([`semantic::semantic_pass`], `DEX6xx`) —
//!    chase-based containment: deletable dependencies, redundant
//!    premise atoms, and an equivalent-to-smaller summary, each backed
//!    by a verified rewrite with a machine-applicable suggestion.
//!
//! ```
//! use dex_analyze::{analyze, Code};
//! use dex_logic::parse_mapping_with_spans;
//!
//! let (m, spans) = parse_mapping_with_spans(
//!     "source Emp(name);\nsource Ghost(a);\ntarget Mgr(emp, mgr);\n\
//!      Emp(x) -> Mgr(x, y);",
//! ).unwrap();
//! let diags = analyze(&m, Some(&spans));
//! let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
//! // `Ghost` is never read; `Mgr.mgr` only ever holds invented nulls.
//! assert_eq!(codes, vec![Code::Dex101, Code::Dex402]);
//! assert_eq!(diags[0].span.unwrap().line, 2);
//! ```

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod dataflow;
pub mod diagnostic;
pub mod fragment;
pub mod hygiene;
pub mod opscheck;
pub mod plan;
pub mod render;
pub mod semantic;
pub mod termination;

pub use cost::{chase_bounds, cost_pass, cost_section};
pub use dataflow::{dataflow_pass, DepRef, FlowClosure, FlowEdge, FlowGraph, PosRef};
pub use diagnostic::{
    deny_warnings, has_errors, sort_diagnostics, Code, Diagnostic, Severity, Suggestion, Witness,
};
pub use plan::{explain, explain_with, ExplainReport};
pub use render::{render_all, render_text};
pub use semantic::{
    contains, equivalent, optimize, render_mapping_dex, semantic_pass, verify_containment_witness,
    ContainmentVerdict, ContainmentWitness, EquivalenceVerdict, OptimizeOutcome, Rewrite,
    RewriteKind, WitnessDep,
};

use dex_logic::{Mapping, SourceMap, Span};
use dex_relational::SourceStats;

/// Tuning knobs for [`analyze_with`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnalyzeOptions {
    /// Run the chase-based redundancy check (`DEX105`). Quadratic in
    /// the number of st-tgds; on by default.
    pub redundancy: bool,
    /// Source statistics for the cost pass (`DEX5xx`). `None` assumes
    /// a uniform cardinality of [`cost::DEFAULT_CARD`] per relation.
    pub stats: Option<SourceStats>,
    /// Admission threshold: raise `DEX502` when the headline cost bound
    /// exceeds this many (`dexcli lint --deny-cost N`).
    pub deny_cost: Option<u64>,
    /// Run the chase-based semantic pass (`DEX601`–`DEX603`). Runs
    /// several bounded chases per dependency; on by default.
    pub semantic: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            redundancy: true,
            stats: None,
            deny_cost: None,
            semantic: true,
        }
    }
}

/// Run every pass with default options.
pub fn analyze(mapping: &Mapping, spans: Option<&SourceMap>) -> Vec<Diagnostic> {
    analyze_with(mapping, spans, AnalyzeOptions::default())
}

/// Run every pass.
pub fn analyze_with(
    mapping: &Mapping,
    spans: Option<&SourceMap>,
    options: AnalyzeOptions,
) -> Vec<Diagnostic> {
    let mut out = termination::termination_pass(mapping, spans);
    out.extend(hygiene::hygiene_pass(mapping, spans, options.redundancy));
    out.extend(fragment::fragment_pass(mapping, spans));
    out.extend(opscheck::ops_pass(mapping, spans));
    out.extend(dataflow::dataflow_pass(mapping, spans));
    let stats = options
        .stats
        .unwrap_or_else(|| SourceStats::uniform(cost::DEFAULT_CARD));
    out.extend(cost::cost_pass(mapping, spans, &stats, options.deny_cost));
    if options.semantic {
        out.extend(semantic::semantic_pass(mapping, spans));
    }
    out
}

/// Convert a [`dex_logic::ParseError`] into a `DEX000` diagnostic so
/// unparsable files flow through the same reporting pipeline.
pub fn parse_error_diagnostic(err: &dex_logic::ParseError) -> Diagnostic {
    Diagnostic::new(Code::Dex000, err.message.clone())
        .with_span(Some(Span::point(err.line, err.col)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping_with_spans;

    #[test]
    fn clean_mapping_produces_no_diagnostics() {
        let (m, sm) = parse_mapping_with_spans(
            "source Emp(name, dept);\ntarget Mgr(emp, mgr);\nEmp(x, d) -> Mgr(x, d);",
        )
        .unwrap();
        assert!(analyze(&m, Some(&sm)).is_empty());
    }

    #[test]
    fn passes_compose_in_order() {
        // A mapping tripping hygiene, fragment, and ops passes at once.
        let (m, sm) = parse_mapping_with_spans(
            "source S(a, b);\nsource Ghost(a);\ntarget T(a, c);\n\
             S(x, y) & S(y, z) -> T(x, z);",
        )
        .unwrap();
        let codes: Vec<Code> = analyze(&m, Some(&sm)).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::Dex101, Code::Dex201]);
    }

    #[test]
    fn redundancy_can_be_disabled() {
        let (m, sm) = parse_mapping_with_spans(
            "source Emp(name, dept);\ntarget T(name, dept);\n\
             Emp(x, y) -> T(x, y);\nEmp(x, x) -> T(x, x);",
        )
        .unwrap();
        let with = analyze(&m, Some(&sm));
        assert!(with.iter().any(|d| d.code == Code::Dex105));
        let without = analyze_with(
            &m,
            Some(&sm),
            AnalyzeOptions {
                redundancy: false,
                ..Default::default()
            },
        );
        assert!(without.iter().all(|d| d.code != Code::Dex105));
    }

    #[test]
    fn parse_errors_become_dex000() {
        let err = dex_logic::parse_mapping("source R(a;\n").unwrap_err();
        let d = parse_error_diagnostic(&err);
        assert_eq!(d.code, Code::Dex000);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.span.is_some());
    }
}
