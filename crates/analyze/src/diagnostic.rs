//! The diagnostic model: stable codes, severities, spans, and
//! machine-checkable witnesses.
//!
//! Every lint the analyzer can raise has a **stable code** in the
//! `DEXnnn` namespace (see the registry table in the repository
//! README). Codes never change meaning between releases; tooling may
//! match on them. A [`Diagnostic`] additionally carries a rendered
//! message, an optional [`Span`] into the mapping source, free-form
//! notes, and — where the claim is refutable — a structured
//! [`Witness`] that downstream tools can re-verify (e.g. a
//! weak-acyclicity counterexample cycle is checked by
//! [`dex_chase::verify_witness`]).

use dex_chase::CycleWitness;
use dex_logic::Span;
use dex_relational::{Constant, Name};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes. The numeric bands group related passes:
/// `000` parse, `0xx` termination, `1xx` hygiene, `2xx` compiler
/// fragment, `3xx` operator prechecks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Code {
    /// The mapping failed to parse.
    Dex000,
    /// Target tgds are neither weakly nor jointly acyclic — the chase
    /// may not terminate.
    Dex001,
    /// Target tgds fail weak acyclicity but joint acyclicity certifies
    /// termination anyway.
    Dex002,
    /// A declared source relation is read by no rule.
    Dex101,
    /// A declared target relation is produced by no rule.
    Dex102,
    /// A premise variable occurs exactly once in its rule.
    Dex103,
    /// An egd equates two distinct constants — unsatisfiable whenever
    /// its premise matches.
    Dex104,
    /// An st-tgd is implied by the remaining dependencies.
    Dex105,
    /// A premise self-join puts the tgd outside the lens-compilable
    /// fragment.
    Dex201,
    /// A function (Skolem) term puts the tgd outside the compilable
    /// fragment.
    Dex202,
    /// Tgds producing the same relation disagree on its column shape.
    Dex203,
    /// Target tgds put the mapping outside the compilable fragment.
    Dex204,
    /// The tgd compiles, but only approximately (shared existentials).
    Dex205,
    /// A source relation feeds the same target relation through more
    /// than one conjunct, so the folded union lens would mention the
    /// base table twice (ambiguous `put`).
    Dex206,
    /// `compose` would refuse this mapping (target dependencies).
    Dex301,
    /// `maximum_recovery` would refuse this mapping.
    Dex302,
}

impl Code {
    /// The stable textual form, e.g. `"DEX101"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::Dex000 => "DEX000",
            Code::Dex001 => "DEX001",
            Code::Dex002 => "DEX002",
            Code::Dex101 => "DEX101",
            Code::Dex102 => "DEX102",
            Code::Dex103 => "DEX103",
            Code::Dex104 => "DEX104",
            Code::Dex105 => "DEX105",
            Code::Dex201 => "DEX201",
            Code::Dex202 => "DEX202",
            Code::Dex203 => "DEX203",
            Code::Dex204 => "DEX204",
            Code::Dex205 => "DEX205",
            Code::Dex206 => "DEX206",
            Code::Dex301 => "DEX301",
            Code::Dex302 => "DEX302",
        }
    }

    /// The default severity of this code (before any `--deny`
    /// promotion).
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::Dex000 | Code::Dex001 | Code::Dex104 => Severity::Error,
            Code::Dex101
            | Code::Dex102
            | Code::Dex103
            | Code::Dex105
            | Code::Dex201
            | Code::Dex202
            | Code::Dex203
            | Code::Dex204
            | Code::Dex206 => Severity::Warning,
            Code::Dex002 | Code::Dex205 | Code::Dex301 | Code::Dex302 => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Severity {
    /// Purely informational; never affects the exit status.
    Info,
    /// Suspicious but not fatal; promoted to [`Severity::Error`] under
    /// `--deny warnings`.
    Warning,
    /// The mapping is broken or dangerous; linting fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Machine-checkable evidence attached to a diagnostic.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Witness {
    /// A special-edge cycle in the weak-acyclicity dependency graph;
    /// re-verifiable with [`dex_chase::verify_witness`] against the
    /// mapping's target tgds.
    Cycle(CycleWitness),
    /// A relation named by the diagnostic.
    Relation(Name),
    /// Variables named by the diagnostic.
    Variables(Vec<Name>),
    /// Indices into the relevant dependency list (the message says
    /// which one).
    TgdIndices(Vec<usize>),
    /// Two distinct constants an egd forces to be equal.
    ConstantClash(Constant, Constant),
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Current severity (default per code; `--deny warnings` promotes).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where in the mapping source the finding anchors, when known.
    pub span: Option<Span>,
    /// Structured, re-checkable evidence, when the claim has any.
    pub witness: Option<Witness>,
    /// Additional free-form context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with its code's default severity and no extras.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: None,
            witness: None,
            notes: Vec::new(),
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Attach a witness.
    pub fn with_witness(mut self, witness: Witness) -> Diagnostic {
        self.witness = Some(witness);
        self
    }

    /// Append a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = self.span {
            write!(f, " (at {s})")?;
        }
        Ok(())
    }
}

/// Promote every [`Severity::Warning`] to [`Severity::Error`]
/// (`--deny warnings`). Infos are untouched.
pub fn deny_warnings(diags: &mut [Diagnostic]) {
    for d in diags {
        if d.severity == Severity::Warning {
            d.severity = Severity::Error;
        }
    }
}

/// Does any diagnostic have [`Severity::Error`]?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably() {
        assert_eq!(Code::Dex001.as_str(), "DEX001");
        assert_eq!(Code::Dex302.to_string(), "DEX302");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut ds = vec![
            Diagnostic::new(Code::Dex101, "unused"),
            Diagnostic::new(Code::Dex002, "ja-certified"),
            Diagnostic::new(Code::Dex104, "clash"),
        ];
        assert!(!has_errors(&ds[..2]));
        deny_warnings(&mut ds);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[1].severity, Severity::Info);
        assert_eq!(ds[2].severity, Severity::Error);
        assert!(has_errors(&ds));
    }

    #[test]
    fn diagnostic_serde_round_trip() {
        let d = Diagnostic::new(Code::Dex101, "source relation `R` is never read")
            .with_span(Some(dex_logic::Span::point(2, 1)))
            .with_witness(Witness::Relation(Name::new("R")))
            .with_note("declared here but no rule mentions it");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
