//! The diagnostic model: stable codes, severities, spans, and
//! machine-checkable witnesses.
//!
//! Every lint the analyzer can raise has a **stable code** in the
//! `DEXnnn` namespace (see the registry table in the repository
//! README). Codes never change meaning between releases; tooling may
//! match on them. A [`Diagnostic`] additionally carries a rendered
//! message, an optional [`Span`] into the mapping source, free-form
//! notes, and — where the claim is refutable — a structured
//! [`Witness`] that downstream tools can re-verify (e.g. a
//! weak-acyclicity counterexample cycle is checked by
//! [`dex_chase::verify_witness`]).

use dex_chase::CycleWitness;
use dex_logic::Span;
use dex_relational::{Constant, Name};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes. The numeric bands group related passes:
/// `000` parse, `0xx` termination, `1xx` hygiene, `2xx` compiler
/// fragment, `3xx` operator prechecks, `4xx` dataflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Code {
    /// The mapping failed to parse.
    Dex000,
    /// Target tgds are neither weakly nor jointly acyclic — the chase
    /// may not terminate.
    Dex001,
    /// Target tgds fail weak acyclicity but joint acyclicity certifies
    /// termination anyway.
    Dex002,
    /// A declared source relation is read by no rule.
    Dex101,
    /// A declared target relation is produced by no rule.
    Dex102,
    /// A premise variable occurs exactly once in its rule.
    Dex103,
    /// An egd equates two distinct constants — unsatisfiable whenever
    /// its premise matches.
    Dex104,
    /// An st-tgd is implied by the remaining dependencies.
    Dex105,
    /// A premise self-join puts the tgd outside the lens-compilable
    /// fragment.
    Dex201,
    /// A function (Skolem) term puts the tgd outside the compilable
    /// fragment.
    Dex202,
    /// Tgds producing the same relation disagree on its column shape.
    Dex203,
    /// Target tgds put the mapping outside the compilable fragment.
    Dex204,
    /// The tgd compiles, but only approximately (shared existentials).
    Dex205,
    /// A source relation feeds the same target relation through more
    /// than one conjunct, so the folded union lens would mention the
    /// base table twice (ambiguous `put`).
    Dex206,
    /// `compose` would refuse this mapping (target dependencies).
    Dex301,
    /// `maximum_recovery` would refuse this mapping.
    Dex302,
    /// A source position is lossy: its value flows to no target
    /// position, so no inverse can recover it.
    Dex401,
    /// A target position is null-only: every rule fills it with an
    /// invented labeled null.
    Dex402,
    /// A source position is dead: every rule binds it to a variable
    /// that neither joins, filters, nor reaches the target.
    Dex403,
    /// A join variable occurs at positions with conflicting declared
    /// types (or a constant violates a position's type).
    Dex404,
    /// Two st-tgds assign contradictory lens update policies to the
    /// same target column.
    Dex405,
    /// The mapping's chase-cost bounds are unbounded (non-jointly-
    /// acyclic): an exponential-risk mapping no budget can be
    /// synthesized for.
    Dex501,
    /// A statically derived chase bound exceeds the configured
    /// `--deny-cost` admission threshold.
    Dex502,
    /// One tgd's firing bound dwarfs the rest of the mapping combined.
    Dex503,
    /// A dependency (tgd or egd) is implied by the remaining
    /// dependencies; deleting it is a verified equivalence-preserving
    /// rewrite.
    Dex601,
    /// A premise atom is redundant: the rule derives the same
    /// conclusions without it.
    Dex602,
    /// The whole mapping is equivalent to a strictly smaller one found
    /// by the verified optimizer.
    Dex603,
    /// A compose/migration output is not equivalent to its spec, where
    /// the containment check could decide it.
    Dex604,
}

impl Code {
    /// The stable textual form, e.g. `"DEX101"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::Dex000 => "DEX000",
            Code::Dex001 => "DEX001",
            Code::Dex002 => "DEX002",
            Code::Dex101 => "DEX101",
            Code::Dex102 => "DEX102",
            Code::Dex103 => "DEX103",
            Code::Dex104 => "DEX104",
            Code::Dex105 => "DEX105",
            Code::Dex201 => "DEX201",
            Code::Dex202 => "DEX202",
            Code::Dex203 => "DEX203",
            Code::Dex204 => "DEX204",
            Code::Dex205 => "DEX205",
            Code::Dex206 => "DEX206",
            Code::Dex301 => "DEX301",
            Code::Dex302 => "DEX302",
            Code::Dex401 => "DEX401",
            Code::Dex402 => "DEX402",
            Code::Dex403 => "DEX403",
            Code::Dex404 => "DEX404",
            Code::Dex405 => "DEX405",
            Code::Dex501 => "DEX501",
            Code::Dex502 => "DEX502",
            Code::Dex503 => "DEX503",
            Code::Dex601 => "DEX601",
            Code::Dex602 => "DEX602",
            Code::Dex603 => "DEX603",
            Code::Dex604 => "DEX604",
        }
    }

    /// Every registered code, in numeric order.
    pub const ALL: [Code; 28] = [
        Code::Dex000,
        Code::Dex001,
        Code::Dex002,
        Code::Dex101,
        Code::Dex102,
        Code::Dex103,
        Code::Dex104,
        Code::Dex105,
        Code::Dex201,
        Code::Dex202,
        Code::Dex203,
        Code::Dex204,
        Code::Dex205,
        Code::Dex206,
        Code::Dex301,
        Code::Dex302,
        Code::Dex401,
        Code::Dex402,
        Code::Dex403,
        Code::Dex404,
        Code::Dex405,
        Code::Dex501,
        Code::Dex502,
        Code::Dex503,
        Code::Dex601,
        Code::Dex602,
        Code::Dex603,
        Code::Dex604,
    ];

    /// Parse a textual code (`"DEX101"`, case-insensitive). `None` for
    /// unregistered codes.
    pub fn parse(s: &str) -> Option<Code> {
        let wanted = s.to_ascii_uppercase();
        Code::ALL.iter().copied().find(|c| c.as_str() == wanted)
    }

    /// The default severity of this code (before any `--deny`
    /// promotion).
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::Dex000 | Code::Dex001 | Code::Dex104 | Code::Dex502 | Code::Dex604 => {
                Severity::Error
            }
            Code::Dex101
            | Code::Dex102
            | Code::Dex103
            | Code::Dex105
            | Code::Dex201
            | Code::Dex202
            | Code::Dex203
            | Code::Dex204
            | Code::Dex206
            | Code::Dex403
            | Code::Dex404
            | Code::Dex405
            | Code::Dex501
            | Code::Dex601
            | Code::Dex602
            | Code::Dex603 => Severity::Warning,
            Code::Dex002
            | Code::Dex205
            | Code::Dex301
            | Code::Dex302
            | Code::Dex401
            | Code::Dex402
            | Code::Dex503 => Severity::Info,
        }
    }

    /// Rustc-style long-form explanation of the code, shown by
    /// `dexcli lint --explain DEXnnn`. Stable prose; tooling may link
    /// to it but should not parse it.
    pub fn explanation(&self) -> &'static str {
        match self {
            Code::Dex000 => {
                "The mapping file failed to parse.\n\n\
                 Nothing else can be analyzed until the syntax error is fixed. The \
                 diagnostic's span points at the first character the parser could not \
                 make sense of. The mapping language is described in the repository \
                 README: `source`/`target` declarations, st-tgds `phi -> psi`, target \
                 tgds `target phi -> psi`, egds `target phi -> x = y`, and `key` \
                 shorthand."
            }
            Code::Dex001 => {
                "The target tgds are neither weakly nor jointly acyclic, so the chase \
                 is not certified to terminate.\n\n\
                 A cycle through a special (existential) edge in the dependency graph \
                 lets one invented null trigger the invention of another, ad \
                 infinitum. The diagnostic carries the offending cycle as a witness; \
                 `dex_chase::verify_witness` re-checks it. Either break the recursion \
                 or run the chase with an explicit round/null budget and accept a \
                 partial result."
            }
            Code::Dex002 => {
                "The target tgds fail the weak-acyclicity test, but the finer \
                 joint-acyclicity test certifies chase termination anyway.\n\n\
                 This is informational: the mapping is safe to chase, but tools that \
                 only implement weak acyclicity will reject it."
            }
            Code::Dex101 => {
                "A declared source relation is read by no rule.\n\n\
                 Its tuples can never influence the target instance. Either a rule is \
                 missing or the declaration is dead and should be removed."
            }
            Code::Dex102 => {
                "A declared target relation is produced by no rule.\n\n\
                 No chase step ever inserts into it, so it is always empty in the \
                 canonical universal solution. Either a rule is missing or the \
                 declaration is dead."
            }
            Code::Dex103 => {
                "A premise variable occurs exactly once in its rule.\n\n\
                 A singleton variable neither joins two atoms, nor filters, nor flows \
                 to the conclusion — it merely asserts the column exists, which the \
                 schema already guarantees. This often indicates a misspelled \
                 variable that was meant to join."
            }
            Code::Dex104 => {
                "An egd equates two distinct constants.\n\n\
                 Whenever the egd's premise matches, enforcement must make two \
                 different constants equal, which is impossible: the chase fails and \
                 the mapping has no solution for that source instance. The premise is \
                 satisfiable, so this is a real hazard, not dead code."
            }
            Code::Dex105 => {
                "An st-tgd is implied by the remaining dependencies.\n\n\
                 The check freezes the rule's premise into a critical instance of \
                 labeled nulls, chases it with the rule removed, and finds the \
                 conclusion already satisfied — so deleting the rule changes no \
                 solution. This is the same decision procedure behind DEX601 and \
                 `dexcli optimize`, so the passes cannot disagree. Cost note: the \
                 check runs one bounded chase per st-tgd (quadratic in the rule \
                 count overall) and is gated behind `AnalyzeOptions::redundancy` \
                 (on by default); set it to false to skip the pass on very large \
                 mappings."
            }
            Code::Dex201 => {
                "A premise self-join (the same relation appearing twice in one \
                 premise) puts the tgd outside the lens-compilable fragment.\n\n\
                 The relational-lens translation folds each source relation into at \
                 most one base lens per target relation; a self-join would need the \
                 same base twice with an ambiguous put-back. `dexcli run` still \
                 chases such mappings; only the bidirectional engine refuses them."
            }
            Code::Dex202 => {
                "A function (Skolem) term puts the tgd outside the compilable \
                 fragment.\n\n\
                 Skolem terms arise from SO-tgds (e.g. composition output) and have \
                 no relational-lens counterpart. Flatten the mapping to plain st-tgds \
                 first, or use the chase-only pipeline."
            }
            Code::Dex203 => {
                "Two tgds producing the same target relation disagree on its column \
                 shape.\n\n\
                 The folded union lens needs every arm to agree, per column, on \
                 whether the value comes from the source (and from which variable \
                 position), is a constant, or is invented. See DEX405 for the \
                 position-level dataflow refinement of this disagreement."
            }
            Code::Dex204 => {
                "Target tgds (or target egds beyond simple keys) put the mapping \
                 outside the compilable fragment.\n\n\
                 The lens engine compiles st-tgds only; target-side dependencies \
                 would require enforcing them through `put`, which the engine does \
                 not attempt. The chase pipeline handles them fine."
            }
            Code::Dex205 => {
                "The tgd compiles, but only approximately.\n\n\
                 An existential variable shared between conclusion atoms (or other \
                 benign-but-lossy features) means the lens engine's `get` direction \
                 matches the chase only up to null identity: round-trips are still \
                 lawful, but the forward image is an approximation of the canonical \
                 universal solution. The report lists the reasons."
            }
            Code::Dex206 => {
                "A source relation feeds the same target relation through more than \
                 one union arm.\n\n\
                 The folded union lens would mention the same base table twice, so a \
                 target update routed to both arms writes to one table through two \
                 conflicting paths (ambiguous put). Restructure the premises or \
                 accept chase-only operation."
            }
            Code::Dex301 => {
                "`compose` would refuse this mapping.\n\n\
                 Mapping composition is implemented for st-tgd-only mappings (the \
                 SO-tgd construction); target tgds or egds in either operand are \
                 refused up front. This precheck saves you from a late failure."
            }
            Code::Dex302 => {
                "`maximum_recovery` would refuse this mapping.\n\n\
                 The maximum-recovery construction is defined here for st-tgd-only \
                 mappings; target dependencies are refused. This precheck mirrors \
                 that refusal statically."
            }
            Code::Dex401 => {
                "A source position is lossy: its value flows along no dataflow edge, \
                 so no target position ever holds it and no inverse mapping can \
                 recover it.\n\n\
                 The dataflow pass builds a position-level flow graph: an edge links \
                 a source position to a target position when some st-tgd binds a \
                 premise variable at the former and writes it at the latter (closed \
                 transitively through target tgds and key egds). A read position with \
                 no outgoing edge is read — it may join or filter — but its data is \
                 discarded. This is informational: filtering columns are often \
                 intentionally lossy. Pair with `maximum_recovery` to see what the \
                 best possible inverse still recovers."
            }
            Code::Dex402 => {
                "A target position is null-only: every rule that produces its \
                 relation fills the position with an invented labeled null (an \
                 existential variable), and no source value or constant ever reaches \
                 it, not even through target tgds or key egds.\n\n\
                 Queries over this column can only ever see nulls, and certain \
                 answers over it are empty. That is sometimes the point (surrogate \
                 ids), hence informational; but if you expected data here, a premise \
                 variable probably failed to reach the conclusion."
            }
            Code::Dex403 => {
                "A source position is dead under every tgd: each rule that reads its \
                 relation binds the position to a variable occurring nowhere else in \
                 that rule (and never to a filtering constant).\n\n\
                 Unlike a merely lossy position (DEX401), a dead position does not \
                 even participate in a join or a constant filter — deleting the \
                 column from the source schema would change nothing about the \
                 mapping's behavior. This strengthens the per-rule singleton-variable \
                 lint (DEX103) to a whole-mapping claim."
            }
            Code::Dex404 => {
                "A join variable occurs at positions whose declared types conflict, \
                 or a constant appears at a position whose declared type it \
                 violates.\n\n\
                 A variable must take a single value per match; if its positions are \
                 declared with different concrete types (e.g. `int` and `str`), no \
                 ground value inhabits both, so the premise can only ever match \
                 labeled nulls — the rule is almost certainly miswired. Untyped \
                 (`any`) positions are compatible with everything and never \
                 conflict."
            }
            Code::Dex405 => {
                "Two st-tgds assign contradictory lens update policies to the same \
                 target column.\n\n\
                 Each tgd implies a put-back policy per produced column: \
                 determined-by-source (a frontier variable), a constant, an invented \
                 null (existential), or a copy of a sibling column (repeated \
                 variable). When two rules produce the same relation but disagree at \
                 a column, the folded union lens cannot serve both policies with one \
                 `put`, and the compiler refuses the mapping (see DEX203 for the \
                 shape-level view). The diagnostic names the column and the two rule \
                 indices."
            }
            Code::Dex501 => {
                "The mapping's static chase-cost bounds are unbounded: the target \
                 tgds are not jointly acyclic, so no finite polynomial bound on chase \
                 output can be certified from acyclicity structure.\n\n\
                 The cost pass derives per-run upper bounds (rounds, firings, tuples, \
                 nulls, bytes) from position ranks (weak acyclicity) or existential \
                 depth (joint acyclicity). When neither condition holds, every bound \
                 degrades to `unbounded` — an admission controller cannot synthesize \
                 a budget (`--auto-budget` sets no caps) and `--deny-cost` refuses \
                 the mapping at any threshold. Either break the existential recursion \
                 (see DEX001's cycle witness) or run with explicit budget flags and \
                 accept partial results."
            }
            Code::Dex502 => {
                "A statically derived chase bound exceeds the configured admission \
                 threshold.\n\n\
                 `dexcli lint|chase|exchange --deny-cost N` compares the headline \
                 bound — the largest of the predicted rounds, firings, tuples, and \
                 nulls (an `unbounded` bound exceeds every threshold) — against N and \
                 refuses the mapping when it is larger. The bounds are conservative \
                 worst cases over all source instances with the assumed per-relation \
                 cardinalities (measured from the instance when one is at hand, \
                 `--cards` or a uniform default otherwise), so a refusal means the \
                 chase *could* get that big, not that it will. Raise the threshold, \
                 shrink the assumed cardinalities, or simplify the mapping."
            }
            Code::Dex503 => {
                "One tgd's firing bound dwarfs the rest of the mapping combined.\n\n\
                 The per-tgd firing bound is the product of the assumed cardinalities \
                 of the premise relations (phase 1) or a polynomial in the reachable \
                 value universe (target tgds), so a premise joining many wide \
                 relations can dominate the whole mapping's predicted cost by orders \
                 of magnitude. This lint fires when a single tgd accounts for more \
                 than ~99.9% of the total predicted firings (at least 1024× \
                 everything else combined): that one rule is where any budget will be \
                 spent, and the first place to look when tightening a mapping."
            }
            Code::Dex601 => {
                "A dependency (st-tgd, target tgd, or egd) is implied by the \
                 remaining dependencies, and deleting it is a *verified* \
                 equivalence-preserving rewrite.\n\n\
                 The containment checker froze the dependency's premise into a \
                 critical instance of labeled nulls, chased it under the mapping \
                 with the dependency removed, and found the conclusion already \
                 satisfied — so the reduced mapping has exactly the same solutions \
                 on every source instance. The diagnostic carries a \
                 machine-applicable suggestion (delete the rule). Caution: \
                 individually-deletable dependencies need not be *jointly* \
                 deletable — two identical rules each imply the other, but \
                 deleting both changes the mapping. `dexcli lint --fix` therefore \
                 applies one suggestion at a time and re-verifies after each."
            }
            Code::Dex602 => {
                "A premise atom is redundant: the rule derives exactly the same \
                 conclusions without it.\n\n\
                 The checker built the rule with the atom pruned (refusing \
                 up-front if that would orphan a frontier variable), then proved \
                 the pruned mapping equivalent to the original by chasing the \
                 critical instances of both in both directions. Duplicate atoms \
                 and atoms subsumed by a more specific join are the common \
                 causes. The suggestion rewrites the rule in place; at most one \
                 atom is reported per rule per run, because pruning one atom can \
                 change whether the next prune is safe — `dexcli lint --fix` \
                 iterates to a fixpoint."
            }
            Code::Dex603 => {
                "The mapping is equivalent to a strictly smaller one.\n\n\
                 `dexcli optimize` found a sequence of individually verified \
                 rewrites — conclusion splitting, implied-dependency deletion, \
                 premise-atom pruning — whose result has fewer total atoms (and \
                 no more dependencies) than the input, yet provably the same \
                 solutions on every source instance. Smaller mappings chase \
                 faster and admit tighter DEX5xx cost bounds, so this warning is \
                 usually worth acting on: run `dexcli optimize <mapping> --emit \
                 <out>` to materialize the smaller equivalent. The notes list \
                 each verified rewrite."
            }
            Code::Dex604 => {
                "A composition or migration output is not equivalent to its \
                 spec, where the chase-based check could decide it.\n\n\
                 `dexcli compose --check` (and `dexd` compile requests with \
                 `\"optimize\": true`) re-verify operator outputs against their \
                 inputs: the composed/compiled mapping is chased on the critical \
                 instances of the spec and vice versa. A failure means the \
                 operator's output provably admits different solutions than the \
                 specification — a bug worth reporting, not a style issue, hence \
                 an error. When either side is outside the decidable fragment \
                 (non-terminating, SO-tgds), the check refuses silently rather \
                 than guess."
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Severity {
    /// Purely informational; never affects the exit status.
    Info,
    /// Suspicious but not fatal; promoted to [`Severity::Error`] under
    /// `--deny warnings`.
    Warning,
    /// The mapping is broken or dangerous; linting fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Machine-checkable evidence attached to a diagnostic.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Witness {
    /// A special-edge cycle in the weak-acyclicity dependency graph;
    /// re-verifiable with [`dex_chase::verify_witness`] against the
    /// mapping's target tgds.
    Cycle(CycleWitness),
    /// A relation named by the diagnostic.
    Relation(Name),
    /// Variables named by the diagnostic.
    Variables(Vec<Name>),
    /// Indices into the relevant dependency list (the message says
    /// which one).
    TgdIndices(Vec<usize>),
    /// Two distinct constants an egd forces to be equal.
    ConstantClash(Constant, Constant),
    /// A (relation, position) pair named by the diagnostic (0-based).
    Position(Name, usize),
}

/// A rustc-style machine-applicable suggestion: replacing the spanned
/// source text with `replacement` fixes the finding, and the rewrite
/// has been verified equivalence-preserving before being attached.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Suggestion {
    /// The source region to replace. For rule rewrites this covers the
    /// whole rule including its trailing `;`.
    pub span: Span,
    /// Replacement text; empty means delete the region.
    pub replacement: String,
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Current severity (default per code; `--deny warnings` promotes).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where in the mapping source the finding anchors, when known.
    pub span: Option<Span>,
    /// Structured, re-checkable evidence, when the claim has any.
    pub witness: Option<Witness>,
    /// Additional free-form context lines.
    pub notes: Vec<String>,
    /// A machine-applicable fix, when one has been verified safe.
    pub suggestion: Option<Suggestion>,
}

impl Diagnostic {
    /// A diagnostic with its code's default severity and no extras.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: None,
            witness: None,
            notes: Vec::new(),
            suggestion: None,
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Attach a witness.
    pub fn with_witness(mut self, witness: Witness) -> Diagnostic {
        self.witness = Some(witness);
        self
    }

    /// Append a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach a machine-applicable suggestion.
    pub fn with_suggestion(mut self, suggestion: Suggestion) -> Diagnostic {
        self.suggestion = Some(suggestion);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = self.span {
            write!(f, " (at {s})")?;
        }
        Ok(())
    }
}

/// Promote every [`Severity::Warning`] to [`Severity::Error`]
/// (`--deny warnings`). Infos are untouched.
pub fn deny_warnings(diags: &mut [Diagnostic]) {
    for d in diags {
        if d.severity == Severity::Warning {
            d.severity = Severity::Error;
        }
    }
}

/// Does any diagnostic have [`Severity::Error`]?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Sort diagnostics into the stable reporting order: by span (source
/// position; span-less diagnostics first), then code, then message.
/// The sort is stable, so equal keys keep pass emission order. `dexcli`
/// applies this before rendering so `--format json` output is
/// byte-stable across runs and analyzer-internal pass reordering.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.span
            .cmp(&b.span)
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably() {
        assert_eq!(Code::Dex001.as_str(), "DEX001");
        assert_eq!(Code::Dex302.to_string(), "DEX302");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut ds = vec![
            Diagnostic::new(Code::Dex101, "unused"),
            Diagnostic::new(Code::Dex002, "ja-certified"),
            Diagnostic::new(Code::Dex104, "clash"),
        ];
        assert!(!has_errors(&ds[..2]));
        deny_warnings(&mut ds);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[1].severity, Severity::Info);
        assert_eq!(ds[2].severity, Severity::Error);
        assert!(has_errors(&ds));
    }

    #[test]
    fn every_code_parses_and_explains() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert_eq!(Code::parse(&code.as_str().to_lowercase()), Some(code));
            assert!(
                code.explanation().len() > 80,
                "{code} explanation too short"
            );
        }
        assert_eq!(Code::parse("DEX999"), None);
        assert_eq!(Code::parse("nonsense"), None);
    }

    #[test]
    fn sort_is_by_span_then_code_and_stable() {
        use dex_logic::Span;
        let d = |code, span: Option<Span>, msg: &str| Diagnostic::new(code, msg).with_span(span);
        let mut ds = vec![
            d(Code::Dex201, Some(Span::point(4, 1)), "later line"),
            d(Code::Dex102, Some(Span::point(2, 1)), "b"),
            d(Code::Dex101, Some(Span::point(2, 1)), "a"),
            d(Code::Dex000, None, "span-less first"),
        ];
        sort_diagnostics(&mut ds);
        let codes: Vec<Code> = ds.iter().map(|x| x.code).collect();
        assert_eq!(
            codes,
            vec![Code::Dex000, Code::Dex101, Code::Dex102, Code::Dex201]
        );
        // Same keys: stable order preserved.
        let mut same = vec![
            d(Code::Dex101, Some(Span::point(1, 1)), "first"),
            d(Code::Dex101, Some(Span::point(1, 1)), "second"),
        ];
        sort_diagnostics(&mut same);
        assert_eq!(same[0].message, "first");
    }

    #[test]
    fn diagnostic_serde_round_trip() {
        let d = Diagnostic::new(Code::Dex101, "source relation `R` is never read")
            .with_span(Some(dex_logic::Span::point(2, 1)))
            .with_witness(Witness::Relation(Name::new("R")))
            .with_note("declared here but no rule mentions it");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
