//! Rendering diagnostics: rustc-style text with caret underlines.
//!
//! ```text
//! error[DEX001]: the chase over the target tgds may not terminate: …
//!  --> examples/mappings/bad_non_terminating.dex:6:1
//!   |
//! 6 | Succ(x, y) -> Succ(y, z);
//!   | ^^^^^^^^^^^^^^^^^^^^^^^^
//!   = witness: Succ.1 —∃→ Succ.1
//!   = note: cycle built from target tgd(s) #0: `…`
//! ```
//!
//! JSON output is plain serde over [`Diagnostic`] — see
//! `serde_json::to_string_pretty`.

use crate::diagnostic::{Diagnostic, Witness};
use std::fmt::Write as _;

/// One-line summary of a witness for the text renderer.
fn witness_line(w: &Witness) -> String {
    match w {
        Witness::Cycle(c) => format!("special-edge cycle {c}"),
        Witness::Relation(r) => format!("relation `{r}`"),
        Witness::Variables(vs) => format!(
            "variable(s) {}",
            vs.iter()
                .map(|v| format!("`{v}`"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Witness::TgdIndices(is) => format!(
            "tgd(s) {}",
            is.iter()
                .map(|i| format!("#{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Witness::ConstantClash(a, b) => format!("`{a}` ≠ `{b}`"),
        Witness::Position(rel, pos) => format!("position `{rel}[{pos}]`"),
    }
}

/// Render one diagnostic against its source text, rustc style.
pub fn render_text(diag: &Diagnostic, file: &str, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.code, diag.message);

    if let Some(span) = diag.span {
        let _ = writeln!(out, " --> {file}:{}:{}", span.line, span.col);
        if let Some(text) = source.lines().nth(span.line.saturating_sub(1)) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {text}");
            // Caret run: from col to end_col on single-line spans, to
            // the end of the line otherwise.
            let width = text.chars().count();
            let start = span.col.saturating_sub(1).min(width);
            let end = if span.end_line == span.line {
                span.end_col
                    .saturating_sub(1)
                    .clamp(start + 1, width.max(start + 1))
            } else {
                width.max(start + 1)
            };
            let _ = writeln!(
                out,
                "{pad} | {}{}",
                " ".repeat(start),
                "^".repeat(end - start)
            );
        }
    }
    let pad = " ".repeat(diag.span.map_or(1, |s| s.line.to_string().len()));
    if let Some(w) = &diag.witness {
        let _ = writeln!(out, "{pad} = witness: {}", witness_line(w));
    }
    for note in &diag.notes {
        let _ = writeln!(out, "{pad} = note: {note}");
    }
    out
}

/// Render a batch of diagnostics with blank lines between them.
pub fn render_all(diags: &[Diagnostic], file: &str, source: &str) -> String {
    diags
        .iter()
        .map(|d| render_text(d, file, source))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Code;
    use dex_logic::Span;

    #[test]
    fn renders_caret_under_the_span() {
        let src = "source Emp(name);\nsource Ghost(a);\ntarget T(name);\nEmp(x) -> T(x);";
        let d = Diagnostic::new(Code::Dex101, "source relation `Ghost` is never read")
            .with_span(Some(Span {
                line: 2,
                col: 1,
                end_line: 2,
                end_col: 16,
            }))
            .with_note("remove it");
        let text = render_text(&d, "m.dex", src);
        assert!(text.contains("warning[DEX101]"), "{text}");
        assert!(text.contains("--> m.dex:2:1"), "{text}");
        assert!(text.contains("2 | source Ghost(a);"), "{text}");
        assert!(text.contains("  | ^^^^^^^^^^^^^^^"), "{text}");
        assert!(text.contains("= note: remove it"), "{text}");
    }

    #[test]
    fn spanless_diagnostic_renders_headline_only() {
        let d = Diagnostic::new(Code::Dex301, "compose() would refuse this mapping");
        let text = render_text(&d, "m.dex", "");
        assert!(text.starts_with("info[DEX301]"), "{text}");
        assert!(!text.contains("-->"), "{text}");
    }

    #[test]
    fn caret_clamps_to_line_width() {
        let d = Diagnostic::new(Code::Dex103, "singleton").with_span(Some(Span {
            line: 1,
            col: 3,
            end_line: 2,
            end_col: 50,
        }));
        let text = render_text(&d, "m.dex", "short;\nnext;");
        // Multi-line span underlines to the end of the first line.
        assert!(text.contains("1 | short;"), "{text}");
        assert!(text.contains("  |   ^^^^"), "{text}");
    }
}
