//! # dex-core — the st-tgd-to-lens compiler and bidirectional exchange engine
//!
//! This crate is the paper's contribution made executable: the §4
//! pipeline
//!
//! ```text
//! visual correspondences → st-tgds → relational-lens TEMPLATE → mapping PLAN
//! ```
//!
//! * [`compile`] translates a set of st-tgds into a **lens template**:
//!   one pair of relational-lens expressions per produced target
//!   relation — a *source lens* (source instance → determined view) and
//!   a *target lens* (target relation → the same view). Together they
//!   form a **cospan** whose stateful propagation is a symmetric lens
//!   (cf. `dex_lens::span`).
//! * The template exposes **holes** — every place the st-tgds
//!   underdetermine the update behaviour (“what do I do with this extra
//!   column”, “through which input does a join delete propagate”) —
//!   each with a human-readable question and a sensible default
//!   (labeled nulls, exactly what the chase would do).
//! * [`Engine`] binds the template to an environment and executes it:
//!   [`Engine::forward`] materializes the target (chase-equivalent for
//!   the exact fragment, verified by tests), [`Engine::backward`]
//!   propagates target edits to the source, and
//!   [`Engine::sym`] wraps both directions as a
//!   [`dex_lens::SymLens`] so the generic symmetric machinery
//!   (composition, inversion, edit sessions) applies.
//! * [`Engine::show_plan`] renders the compiled plan — the paper's
//!   “show plan capability similar to that used in relational database
//!   engines”.
//! * [`CompileReport`] is the executable *completeness statement*: each
//!   tgd is classified `Exact` (the lens pair reproduces the chase and
//!   round-trips) or `Approximate` with the precise reasons.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod compiler;
pub mod engine;
pub mod error;
pub mod plan;
pub mod precheck;
pub mod template;

pub use compiler::compile;
pub use engine::{Engine, EngineForward, EngineSymLens, ForwardStats, RelationStats};
pub use error::CoreError;
pub use plan::{
    plan, CostSection, LensSection, MappingPlan, MatcherChoice, OptimizedSection, TgdPlan,
};
pub use precheck::{precheck, PrecheckReason, PrecheckReport};
pub use template::{
    CompileReport, Fidelity, Hole, HoleBinding, HoleSite, MappingTemplate, RelationLens,
};
