//! The st-tgd → lens-template compiler (paper §4, step “The collection
//! of st-tgds is translated statically to a relational lens template”).
//!
//! For every target atom `R(t̄)` of every st-tgd the compiler builds a
//! **cospan of relational lenses** sharing the *determined view* `V_R`
//! — the columns of `R` bound to universal (frontier) variables:
//!
//! ```text
//!   source instance --source lens--> V_R <--target lens-- target R
//! ```
//!
//! * the **source lens** renames/joins/filters the source relations so
//!   that `get` computes `V_R` (and `put` translates view changes back
//!   onto the source tables);
//! * the **target lens** projects `R` onto `V_R`; its dropped columns
//!   are exactly the tgd's existential positions — each becomes a
//!   policy **hole** defaulting to fresh nulls, so the engine's
//!   forward direction with defaults coincides with the chase.
//!
//! Multiple tgds producing the same relation fold into a union lens
//! (with an insertion-routing hole). The compiler REFUSES (with
//! reasons) anything it cannot translate faithfully, and reports
//! per-tgd fidelity — the executable form of the paper's requested
//! “completeness proof of that compiler”.

use crate::error::CoreError;
use crate::template::{
    CompileReport, Fidelity, Hole, HoleBinding, HoleSite, MappingTemplate, RelationLens, Step,
};
use dex_logic::{Mapping, StTgd, Term};
use dex_relational::{Constant, Expr, Name, RelSchema};
use dex_rellens::{JoinPolicy, RelLensExpr, UnionPolicy, UpdatePolicy};
use std::collections::{BTreeMap, BTreeSet};

/// A hole not yet assigned a global id, with a path relative to the
/// contribution root.
struct PendingHole {
    question: String,
    column: Option<Name>,
    kind: PendingKind,
    path: Vec<Step>,
}

enum PendingKind {
    SourceColumn,
    TargetColumn,
    Join,
    Union,
}

fn prepend(holes: &mut [PendingHole], step: Step) {
    for h in holes.iter_mut() {
        h.path.insert(0, step);
    }
}

/// The shape of one target atom: which positions are determined,
/// constant, or existential.
#[derive(PartialEq, Eq, Debug, Clone)]
struct TargetShape {
    rel: Name,
    /// `(position, attr)` for frontier-variable positions.
    frontier: Vec<(usize, Name)>,
    /// `(position, attr, constant)` positions.
    consts: Vec<(usize, Name, Constant)>,
    /// `(position, attr)` existential positions.
    existentials: Vec<(usize, Name)>,
    /// `(position, attr, first-occurrence attr)` for repeated variables:
    /// the column provably equals an earlier column of the same atom.
    copies: Vec<(usize, Name, Name)>,
}

struct Contribution {
    source_expr: RelLensExpr,
    shape: TargetShape,
    holes: Vec<PendingHole>,
}

/// Compile a mapping's st-tgds into a lens template.
///
/// ```
/// use dex_core::{compile, Engine};
/// use dex_logic::parse_mapping;
/// use dex_rellens::Environment;
/// use dex_relational::{tuple, Instance};
///
/// let m = parse_mapping(r#"
///     source Emp(name);
///     target Manager(emp, mgr);
///     Emp(x) -> Manager(x, y);
/// "#).unwrap();
/// let template = compile(&m).unwrap();
/// // One policy question: what to do with the undetermined column.
/// assert_eq!(template.holes.len(), 1);
/// assert!(template.holes[0].question.contains("Manager.mgr"));
///
/// let engine = Engine::new(template, Environment::new()).unwrap();
/// let src = Instance::with_facts(
///     m.source().clone(),
///     vec![("Emp", vec![tuple!["Alice"]])],
/// ).unwrap();
/// let tgt = engine.forward(&src, None).unwrap();
/// assert!(m.is_solution(&src, &tgt));
/// ```
pub fn compile(mapping: &Mapping) -> Result<MappingTemplate, CoreError> {
    let mut reasons: Vec<String> = Vec::new();
    let mut contributions: Vec<(usize, Contribution)> = Vec::new();
    let mut report = CompileReport::default();

    if !mapping.target_tgds().is_empty() {
        reasons.push(
            "target tgds (within-target implications) are not part of the compilable \
             fragment; enforce them with the chase instead. Target egds (keys) ARE \
             supported — the engine chases them after each forward pass"
                .into(),
        );
    }

    for (ti, tgd) in mapping.st_tgds().iter().enumerate() {
        let mut tgd_reasons: Vec<String> = Vec::new();

        // Self-joins in the premise are outside the fragment (the lens
        // trees address base tables by name).
        let mut lhs_rels = BTreeSet::new();
        for a in &tgd.lhs {
            if !lhs_rels.insert(a.relation.clone()) {
                reasons.push(format!(
                    "tgd `{tgd}` joins relation `{}` with itself; self-joins need aliasing, \
                     which the lens fragment does not support",
                    a.relation
                ));
            }
        }

        // Shared existentials across target atoms lose correlation.
        if tgd.rhs.len() > 1 {
            let ex: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
            let mut counts: BTreeMap<Name, usize> = BTreeMap::new();
            for atom in &tgd.rhs {
                let mut vs = Vec::new();
                atom.collect_vars(&mut vs);
                for v in vs.into_iter().filter(|v| ex.contains(v)) {
                    *counts.entry(v).or_default() += 1;
                }
            }
            for (v, n) in counts {
                if n > 1 {
                    tgd_reasons.push(format!(
                        "existential variable `{v}` is shared between target atoms; the \
                         compiled lenses invent its value independently per relation"
                    ));
                }
            }
        }

        for atom in &tgd.rhs {
            match compile_target_atom(mapping, tgd, atom) {
                Ok(c) => contributions.push((ti, c)),
                Err(rs) => reasons.extend(rs),
            }
        }

        report.entries.push((
            tgd.to_string(),
            if tgd_reasons.is_empty() {
                Fidelity::Exact
            } else {
                Fidelity::Approximate(tgd_reasons)
            },
        ));
    }

    if !reasons.is_empty() {
        return Err(CoreError::Unsupported { reasons });
    }

    // Group contributions by target relation and fold unions.
    let mut by_rel: BTreeMap<Name, Vec<Contribution>> = BTreeMap::new();
    for (_, c) in contributions {
        by_rel.entry(c.shape.rel.clone()).or_default().push(c);
    }

    let mut lenses = Vec::new();
    let mut holes: Vec<Hole> = Vec::new();
    for (rel, contribs) in by_rel {
        // All contributions must agree on the shape.
        let shape = contribs[0].shape.clone();
        for c in &contribs[1..] {
            if c.shape != shape {
                return Err(CoreError::Unsupported {
                    reasons: vec![format!(
                        "tgds producing `{rel}` disagree on which columns are determined \
                         ({:?} vs {:?}); a single view lens cannot serve both",
                        shape, c.shape
                    )],
                });
            }
        }

        // Fold source expressions with Union (insertion-routing holes).
        let mut iter = contribs.into_iter();
        let Some(first) = iter.next() else {
            continue;
        };
        let mut source_expr = first.source_expr;
        let mut pending = first.holes;
        for (k, c) in iter.enumerate() {
            prepend(&mut pending, Step::Left);
            let mut right_holes = c.holes;
            prepend(&mut right_holes, Step::Right);
            pending.extend(right_holes);
            source_expr = source_expr.union(c.source_expr, UnionPolicy::InsertLeft);
            pending.push(PendingHole {
                question: format!(
                    "relation `{rel}` is produced by several rules (union #{k}); which \
                     branch should receive rows inserted into `{rel}`?"
                ),
                column: None,
                kind: PendingKind::Union,
                path: vec![],
            });
        }

        // Target lens: select the constant and copy positions, project
        // onto the frontier.
        let mut target_expr = RelLensExpr::base(rel.clone());
        let mut pred: Option<Expr> = None;
        for (_, attr, c) in &shape.consts {
            let e = Expr::attr(attr.clone()).eq(Expr::Lit(c.clone()));
            pred = Some(match pred {
                None => e,
                Some(p) => p.and(e),
            });
        }
        for (_, attr, of) in &shape.copies {
            let e = Expr::attr(attr.clone()).eq(Expr::attr(of.clone()));
            pred = Some(match pred {
                None => e,
                Some(p) => p.and(e),
            });
        }
        if let Some(p) = pred {
            target_expr = target_expr.select(p);
        }
        let mut target_holes: Vec<PendingHole> = Vec::new();
        if !shape.consts.is_empty() || !shape.existentials.is_empty() || !shape.copies.is_empty() {
            let kept: Vec<&str> = shape.frontier.iter().map(|(_, a)| a.as_str()).collect();
            let mut policies: Vec<(&str, UpdatePolicy)> = Vec::new();
            for (_, attr, c) in &shape.consts {
                policies.push((attr.as_str(), UpdatePolicy::Const(c.clone())));
            }
            for (_, attr, of) in &shape.copies {
                // Copies of frontier columns restore from the kept copy;
                // copies of existential columns can only be re-invented
                // alongside their original — CopyOf works when the
                // original is kept, otherwise fall back to Null (the
                // pair is regenerated consistently only on the forward
                // path, which fills both from the same policy source).
                let kept_has_of = shape.frontier.iter().any(|(_, a)| a == of);
                if kept_has_of {
                    policies.push((attr.as_str(), UpdatePolicy::CopyOf(of.clone())));
                } else {
                    policies.push((attr.as_str(), UpdatePolicy::Null));
                }
            }
            for (_, attr) in &shape.existentials {
                policies.push((attr.as_str(), UpdatePolicy::Null));
                target_holes.push(PendingHole {
                    question: format!("how does one populate the `{rel}.{attr}` field?"),
                    column: Some(attr.clone()),
                    kind: PendingKind::TargetColumn,
                    path: vec![],
                });
            }
            target_expr = target_expr.project(kept, policies);
        }

        // Assign global hole ids.
        for ph in pending {
            let (site, current) = match (&ph.kind, ph.column.clone()) {
                (PendingKind::SourceColumn, Some(column)) => (
                    HoleSite::SourceColumn {
                        target_rel: rel.clone(),
                        column,
                        path: ph.path.clone(),
                    },
                    HoleBinding::Column(UpdatePolicy::Null),
                ),
                (PendingKind::Join, _) => (
                    HoleSite::Join {
                        target_rel: rel.clone(),
                        path: ph.path.clone(),
                    },
                    HoleBinding::Join(JoinPolicy::DeleteBoth),
                ),
                (PendingKind::Union, _) => (
                    HoleSite::Union {
                        target_rel: rel.clone(),
                        path: ph.path.clone(),
                    },
                    HoleBinding::Union(UnionPolicy::InsertLeft),
                ),
                // Source-side pending holes always carry their column and
                // never the target-column kind.
                (PendingKind::SourceColumn, None) | (PendingKind::TargetColumn, _) => continue,
            };
            let id = holes.len();
            holes.push(Hole {
                id,
                question: ph.question,
                site,
                current,
            });
        }
        for ph in target_holes {
            // Target-column pending holes always carry their column.
            let Some(column) = ph.column.clone() else {
                continue;
            };
            let id = holes.len();
            holes.push(Hole {
                id,
                question: ph.question,
                site: HoleSite::TargetColumn {
                    target_rel: rel.clone(),
                    column,
                    path: ph.path.clone(),
                },
                current: HoleBinding::Column(UpdatePolicy::Null),
            });
        }

        // The shared view header.
        let view = RelSchema::untyped(
            rel.clone(),
            shape
                .frontier
                .iter()
                .map(|(_, a)| a.clone())
                .collect::<Vec<Name>>(),
        )
        .map_err(CoreError::Relational)?;

        lenses.push(RelationLens {
            target_rel: rel,
            view,
            source_expr,
            target_expr,
        });
    }

    let template = MappingTemplate {
        source: mapping.source().clone(),
        target: mapping.target().clone(),
        lenses,
        holes,
        target_egds: mapping.target_egds().to_vec(),
        report,
    };

    // Sanity: every lens pair validates and the headers agree.
    for lens in &template.lenses {
        let sv = lens
            .source_expr
            .view_schema(&template.source)
            .map_err(|e| CoreError::Unsupported {
                reasons: vec![format!(
                    "internal: source lens for `{}` failed validation: {e}",
                    lens.target_rel
                )],
            })?;
        let tv = lens
            .target_expr
            .view_schema(&template.target)
            .map_err(|e| CoreError::Unsupported {
                reasons: vec![format!(
                    "internal: target lens for `{}` failed validation: {e}",
                    lens.target_rel
                )],
            })?;
        let sa: Vec<&Name> = sv.attr_names().collect();
        let ta: Vec<&Name> = tv.attr_names().collect();
        if sa != ta {
            return Err(CoreError::Unsupported {
                reasons: vec![format!(
                    "internal: view headers disagree for `{}`: {sv} vs {tv}",
                    lens.target_rel
                )],
            });
        }
    }

    Ok(template)
}

/// Compile one `(tgd, target atom)` pair into a contribution.
fn compile_target_atom(
    mapping: &Mapping,
    tgd: &StTgd,
    atom: &dex_logic::Atom,
) -> Result<Contribution, Vec<String>> {
    let mut errs = Vec::new();
    let target_schema = match mapping.target().relation(atom.relation.as_str()) {
        Some(s) => s.clone(),
        None => {
            return Err(vec![format!(
                "target relation `{}` missing from schema",
                atom.relation
            )])
        }
    };
    let lhs_vars: BTreeSet<Name> = tgd.lhs_vars().into_iter().collect();

    // Classify the target atom's positions.
    let mut shape = TargetShape {
        rel: atom.relation.clone(),
        frontier: vec![],
        consts: vec![],
        existentials: vec![],
        copies: vec![],
    };
    // First-occurrence attribute per variable (for repeated variables).
    let mut first_attr: BTreeMap<Name, Name> = BTreeMap::new();
    let mut frontier_vars: Vec<Name> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        let attr = target_schema.attrs()[i].0.clone();
        match t {
            Term::Var(v) if lhs_vars.contains(v.as_str()) => {
                if let Some(fa) = first_attr.get(v.as_str()) {
                    // Repeated frontier variable: the column equals the
                    // first occurrence — compiled as a copy, exactly.
                    shape.copies.push((i, attr, fa.clone()));
                    continue;
                }
                first_attr.insert(v.clone(), attr.clone());
                shape.frontier.push((i, attr));
                frontier_vars.push(v.clone());
            }
            Term::Var(v) => {
                if let Some(fa) = first_attr.get(v.as_str()) {
                    // Repeated existential: both columns carry the same
                    // invented value — also a copy.
                    shape.copies.push((i, attr, fa.clone()));
                    continue;
                }
                first_attr.insert(v.clone(), attr.clone());
                shape.existentials.push((i, attr));
            }
            Term::Const(c) => shape.consts.push((i, attr, c.clone())),
            Term::Func(..) => errs.push(format!(
                "tgd `{tgd}` has a function term in `{atom}`; SO-tgds are executed by the \
                 chase, not compiled to lenses"
            )),
        }
    }
    if !errs.is_empty() {
        return Err(errs);
    }

    // Per-premise-atom lens: Base → (Select) → (Project) → (Rename).
    let mut atom_exprs: Vec<(RelLensExpr, Vec<PendingHole>)> = Vec::new();
    for latom in &tgd.lhs {
        let src_schema = match mapping.source().relation(latom.relation.as_str()) {
            Some(s) => s.clone(),
            None => {
                return Err(vec![format!(
                    "source relation `{}` missing from schema",
                    latom.relation
                )])
            }
        };
        let mut expr = RelLensExpr::base(latom.relation.clone());
        let mut pred: Option<Expr> = None;
        // first occurrence attr per variable
        let mut first_attr: BTreeMap<Name, Name> = BTreeMap::new();
        let mut kept: Vec<Name> = Vec::new(); // original attr names to keep
        let mut dropped: Vec<(Name, UpdatePolicy)> = Vec::new();
        for (i, t) in latom.args.iter().enumerate() {
            let attr = src_schema.attrs()[i].0.clone();
            match t {
                Term::Var(v) => {
                    if let Some(fa) = first_attr.get(v.as_str()) {
                        // Duplicate variable: equality select + CopyOf.
                        let e = Expr::attr(fa.clone()).eq(Expr::attr(attr.clone()));
                        pred = Some(match pred {
                            None => e,
                            Some(p) => p.and(e),
                        });
                        dropped.push((attr, UpdatePolicy::CopyOf(fa.clone())));
                    } else {
                        first_attr.insert(v.clone(), attr.clone());
                        kept.push(attr);
                    }
                }
                Term::Const(c) => {
                    let e = Expr::attr(attr.clone()).eq(Expr::Lit(c.clone()));
                    pred = Some(match pred {
                        None => e,
                        Some(p) => p.and(e),
                    });
                    dropped.push((attr, UpdatePolicy::Const(c.clone())));
                }
                Term::Func(..) => {
                    return Err(vec![format!(
                        "function term in premise atom `{latom}` of `{tgd}`"
                    )])
                }
            }
        }
        if let Some(p) = pred {
            expr = expr.select(p);
        }
        if !dropped.is_empty() {
            expr = expr.project(
                kept.iter().map(Name::as_str).collect(),
                dropped
                    .iter()
                    .map(|(a, p)| (a.as_str(), p.clone()))
                    .collect(),
            );
        }
        // Rename kept attrs to their variable names (skipping
        // identities).
        let renames: Vec<(Name, Name)> = first_attr
            .iter()
            .filter(|(v, a)| v != a)
            .map(|(v, a)| (a.clone(), v.clone()))
            .collect();
        if !renames.is_empty() {
            expr = RelLensExpr::Rename {
                input: Box::new(expr),
                renaming: renames.into_iter().collect(),
            };
        }
        atom_exprs.push((expr, Vec::new()));
    }

    // Join the premise atoms (tgd joins = natural joins on variable
    // columns).
    let mut iter = atom_exprs.into_iter();
    let Some((mut source_expr, mut holes)) = iter.next() else {
        return Err(vec![format!("tgd `{tgd}` has an empty premise")]);
    };
    for (k, (e, hs)) in iter.enumerate() {
        prepend(&mut holes, Step::Left);
        let mut right = hs;
        prepend(&mut right, Step::Right);
        holes.extend(right);
        source_expr = source_expr.join(e, JoinPolicy::DeleteBoth);
        holes.push(PendingHole {
            question: format!(
                "a row deleted from `{}`'s view joins source relations (join #{k} in \
                 `{tgd}`); through which input should the deletion propagate?",
                atom.relation
            ),
            column: None,
            kind: PendingKind::Join,
            path: vec![],
        });
    }

    // Final projection to the frontier variables (in target-atom
    // order); dropped source variables get policy holes.
    let all_vars: Vec<Name> = tgd.lhs_vars();
    let dropped_vars: Vec<Name> = all_vars
        .iter()
        .filter(|v| !frontier_vars.contains(v))
        .cloned()
        .collect();
    if !dropped_vars.is_empty() || needs_reorder(&all_vars, &frontier_vars) {
        prepend(&mut holes, Step::Left);
        let mut policies: Vec<(&str, UpdatePolicy)> = Vec::new();
        for v in &dropped_vars {
            policies.push((v.as_str(), UpdatePolicy::Null));
            holes.push(PendingHole {
                question: format!(
                    "source variable `{v}` (of `{tgd}`) is not represented in `{}`; \
                     how should it be filled when rows flow back from the target?",
                    atom.relation
                ),
                column: Some(v.clone()),
                kind: PendingKind::SourceColumn,
                path: vec![],
            });
        }
        source_expr =
            source_expr.project(frontier_vars.iter().map(Name::as_str).collect(), policies);
    }

    // Rename variables to the target attribute names.
    let renames: Vec<(Name, Name)> = frontier_vars
        .iter()
        .zip(shape.frontier.iter())
        .filter(|(v, (_, a))| v != &a)
        .map(|(v, (_, a))| (v.clone(), a.clone()))
        .collect();
    if !renames.is_empty() {
        prepend(&mut holes, Step::Left);
        source_expr = RelLensExpr::Rename {
            input: Box::new(source_expr),
            renaming: renames.into_iter().collect(),
        };
    }

    Ok(Contribution {
        source_expr,
        shape,
        holes,
    })
}

fn needs_reorder(all_vars: &[Name], frontier: &[Name]) -> bool {
    // Projection is also needed when the frontier is a strict prefix
    // permutation; cheap check: identical sequences?
    all_vars != frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;

    #[test]
    fn example1_compiles_with_one_target_hole() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        assert_eq!(t.lenses.len(), 1);
        assert_eq!(t.holes.len(), 1);
        assert!(t.holes[0].question.contains("Manager.mgr"));
        assert!(matches!(t.holes[0].site, HoleSite::TargetColumn { .. }));
        assert!(t.report.all_exact());
        // The source lens renames name→emp; the target lens projects
        // away mgr with a null default.
        let lens = t.lens_for("Manager").unwrap();
        // name → x (variable naming) then x → emp (target naming).
        let plan = lens.source_expr.plan_string();
        assert!(plan.contains("Rename[x→emp]"), "{plan}");
        assert!(plan.contains("Rename[name→x]"), "{plan}");
        assert!(lens
            .target_expr
            .plan_string()
            .contains("Project[emp | mgr := null]"));
    }

    #[test]
    fn persons_example_has_holes_both_directions() {
        // The introduction's Person1/Person2 scenario.
        let m = parse_mapping(
            r#"
            source Person1(id, name, age, city);
            target Person2(id, name, salary, zipcode);
            Person1(i, n, a, c) -> Person2(i, n, s, z);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        // Target holes: salary, zipcode. Source holes: age, city.
        assert_eq!(t.holes.len(), 4);
        let questions: Vec<&str> = t.holes.iter().map(|h| h.question.as_str()).collect();
        assert!(questions.iter().any(|q| q.contains("Person2.salary")));
        assert!(questions.iter().any(|q| q.contains("Person2.zipcode")));
        assert!(questions.iter().any(|q| q.contains("`a`")));
        assert!(questions.iter().any(|q| q.contains("`c`")));
        assert!(t.report.all_exact());
    }

    #[test]
    fn union_of_two_tgds_gets_union_hole() {
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        assert_eq!(t.lenses.len(), 1);
        let union_holes: Vec<&Hole> = t
            .holes
            .iter()
            .filter(|h| matches!(h.site, HoleSite::Union { .. }))
            .collect();
        assert_eq!(union_holes.len(), 1);
        assert!(union_holes[0].question.contains("which"));
        let lens = t.lens_for("Parent").unwrap();
        assert!(lens
            .source_expr
            .plan_string()
            .contains("Union[insert-left]"));
    }

    #[test]
    fn join_premise_gets_join_hole() {
        let m = parse_mapping(
            r#"
            source Student(id, name);
            source Assgn(name, course);
            target Enrollment(id, course);
            Student(x, y) & Assgn(y, w) -> Enrollment(x, w);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        let join_holes: Vec<&Hole> = t
            .holes
            .iter()
            .filter(|h| matches!(h.site, HoleSite::Join { .. }))
            .collect();
        assert_eq!(join_holes.len(), 1);
        // The shared variable y is dropped by the final projection →
        // one source-column hole.
        let src_holes: Vec<&Hole> = t
            .holes
            .iter()
            .filter(|h| matches!(h.site, HoleSite::SourceColumn { .. }))
            .collect();
        assert_eq!(src_holes.len(), 1);
        assert!(src_holes[0].question.contains("`y`"));
    }

    #[test]
    fn figure1_upper_is_approximate_when_existential_shared() {
        // Student(z, x) & StudentCard(z): z shared → approximate.
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target StudentCard(id);
            Takes(x, y) -> Student(z, x) & StudentCard(z);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        assert!(!t.report.all_exact());
        let (_, fid) = &t.report.entries[0];
        match fid {
            Fidelity::Approximate(rs) => {
                assert!(rs[0].contains("`z`"));
            }
            Fidelity::Exact => panic!("expected approximate"),
        }
    }

    #[test]
    fn figure1_upper_unshared_existentials_exact() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        assert!(t.report.all_exact());
        assert_eq!(t.lenses.len(), 2);
        // Student: one target hole (id); Assgn: none.
        let student = t.lens_for("Student").unwrap();
        assert!(student
            .target_expr
            .plan_string()
            .contains("Project[name | id := null]"));
        let assgn = t.lens_for("Assgn").unwrap();
        assert_eq!(assgn.target_expr, RelLensExpr::base("Assgn"));
    }

    #[test]
    fn constants_compile_to_selects_and_const_policies() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, tag);
            R(x) -> S(x, 'imported');
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        let lens = t.lens_for("S").unwrap();
        let plan = lens.target_expr.plan_string();
        assert!(plan.contains("Select[tag = \"imported\"]"), "{plan}");
        assert!(plan.contains("tag := const \"imported\""), "{plan}");
        assert!(t.holes.is_empty(), "constants are exact, no holes");
    }

    #[test]
    fn self_join_rejected_with_reason() {
        let m = parse_mapping(
            r#"
            source S(a, b);
            target T(a, c);
            S(x, y) & S(y, z) -> T(x, z);
            "#,
        )
        .unwrap();
        let err = compile(&m).unwrap_err();
        match err {
            CoreError::Unsupported { reasons } => {
                assert!(reasons[0].contains("self-join"), "{reasons:?}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn repeated_target_variable_compiles_as_copy() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, x);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        assert!(t.report.all_exact());
        assert!(t.holes.is_empty(), "the copy is determined — no hole");
        let lens = t.lens_for("S").unwrap();
        let plan = lens.target_expr.plan_string();
        assert!(plan.contains("Select[b = a]"), "{plan}");
        assert!(plan.contains("b := copy of a"), "{plan}");
    }

    #[test]
    fn repeated_existential_compiles_with_diagonal_select() {
        // R(x) -> S(x, z, z): both z-columns must agree; the target
        // lens selects the diagonal.
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b, c);
            R(x) -> S(x, z, z);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        let lens = t.lens_for("S").unwrap();
        let plan = lens.target_expr.plan_string();
        assert!(plan.contains("Select[c = b]"), "{plan}");
        assert_eq!(t.holes.len(), 1, "one hole for the existential b");
    }

    #[test]
    fn duplicate_source_variable_compiles_with_copyof() {
        // Manager(x, x) -> SelfMngr(x): the duplicate premise variable
        // becomes an equality select plus a CopyOf policy.
        let m = parse_mapping(
            r#"
            source Manager(emp, mgr);
            target SelfMngr(emp);
            Manager(x, x) -> SelfMngr(x);
            "#,
        )
        .unwrap();
        let t = compile(&m).unwrap();
        let lens = t.lens_for("SelfMngr").unwrap();
        let plan = lens.source_expr.plan_string();
        assert!(plan.contains("Select[emp = mgr]"), "{plan}");
        assert!(plan.contains("mgr := copy of emp"), "{plan}");
        assert!(t.report.all_exact());
    }

    #[test]
    fn hole_paths_bind_after_union_folding() {
        // Two joining tgds into one relation: join holes sit under the
        // union; binding through the recorded paths must land on the
        // right nodes.
        let m = parse_mapping(
            r#"
            source A(k, v);
            source B(k, w);
            source C(k, v);
            source D(k, w);
            target Out(v, w);
            A(k, x) & B(k, y) -> Out(x, y);
            C(k, x) & D(k, y) -> Out(x, y);
            "#,
        )
        .unwrap();
        let mut t = compile(&m).unwrap();
        let join_holes: Vec<usize> = t
            .holes
            .iter()
            .filter(|h| matches!(h.site, HoleSite::Join { .. }))
            .map(|h| h.id)
            .collect();
        assert_eq!(join_holes.len(), 2);
        for id in join_holes {
            t.bind(id, HoleBinding::Join(JoinPolicy::DeleteLeft))
                .unwrap();
        }
        let plan = t.lens_for("Out").unwrap().source_expr.plan_string();
        assert_eq!(plan.matches("Join[delete-left]").count(), 2, "{plan}");
        assert!(!plan.contains("Join[delete-both]"), "{plan}");
    }

    #[test]
    fn shape_mismatch_between_tgds_rejected() {
        // tgd1 determines S.b, tgd2 leaves it existential.
        let m = parse_mapping(
            r#"
            source R1(a, b);
            source R2(a);
            target S(a, b);
            R1(x, y) -> S(x, y);
            R2(x) -> S(x, y);
            "#,
        )
        .unwrap();
        let err = compile(&m).unwrap_err();
        match err {
            CoreError::Unsupported { reasons } => {
                assert!(reasons[0].contains("disagree"), "{reasons:?}");
            }
            other => panic!("{other}"),
        }
    }
}
