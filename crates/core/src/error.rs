//! Compiler and engine failure modes.

use std::fmt;

/// Errors from compiling st-tgds to lens templates or running the
/// exchange engine.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// The mapping falls outside the compilable fragment; every reason
    /// is listed (the compiler never silently mis-compiles).
    Unsupported {
        /// One entry per blocking construct.
        reasons: Vec<String>,
    },
    /// A hole id that does not exist.
    UnknownHole(usize),
    /// A binding of the wrong kind for the hole (e.g. a column policy
    /// for a join hole).
    WrongBindingKind {
        /// The hole id.
        hole: usize,
        /// What the hole expects.
        expected: &'static str,
    },
    /// A target key (egd) failed during enforcement — the exchange has
    /// no solution for this source/edit.
    Chase(dex_chase::ChaseError),
    /// An underlying relational-lens error.
    Rellens(dex_rellens::RellensError),
    /// An underlying relational error.
    Relational(dex_relational::RelationalError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Unsupported { reasons } => {
                writeln!(f, "mapping not compilable to lens templates:")?;
                for r in reasons {
                    writeln!(f, "  - {r}")?;
                }
                Ok(())
            }
            CoreError::UnknownHole(id) => write!(f, "no hole with id {id}"),
            CoreError::WrongBindingKind { hole, expected } => {
                write!(f, "hole {hole} expects a {expected} binding")
            }
            CoreError::Chase(e) => write!(f, "{e}"),
            CoreError::Rellens(e) => write!(f, "{e}"),
            CoreError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<dex_chase::ChaseError> for CoreError {
    fn from(e: dex_chase::ChaseError) -> Self {
        CoreError::Chase(e)
    }
}

impl From<dex_rellens::RellensError> for CoreError {
    fn from(e: dex_rellens::RellensError) -> Self {
        CoreError::Rellens(e)
    }
}

impl From<dex_relational::RelationalError> for CoreError {
    fn from(e: dex_relational::RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_reasons() {
        let e = CoreError::Unsupported {
            reasons: vec!["self-join".into(), "repeated target variable".into()],
        };
        let s = e.to_string();
        assert!(s.contains("self-join"));
        assert!(s.contains("repeated target variable"));
    }
}
