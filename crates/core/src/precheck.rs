//! Static prediction of [`crate::compile`]'s verdict — the compiler's
//! refusal reasons exposed as inspectable data, without building any
//! lens machinery.
//!
//! [`precheck`] walks a [`Mapping`] and answers two questions the
//! compiler would otherwise only answer by running:
//!
//! 1. **Will [`crate::compile`] accept?** Every fragment restriction
//!    the compiler enforces is mirrored as a structured
//!    [`PrecheckReason`] carrying the offending tgd index, so
//!    diagnostics can point at source spans.
//! 2. **With what fidelity?** Each st-tgd is classified
//!    [`Fidelity::Exact`] or [`Fidelity::Approximate`] exactly as the
//!    compiler's [`crate::CompileReport`] would.
//!
//! The agreement `precheck(m).accepts() ⇔ compile(m).is_ok()` (and the
//! per-tgd fidelity agreement) is pinned by a property test in
//! `dex-analyze` over generated mappings. `compile` ends with a
//! lens-validation pass; its one *reachable* failure — a base relation
//! appearing twice in a folded union lens — is mirrored here as
//! [`PrecheckReason::DuplicateBase`]. Its remaining failure modes
//! indicate compiler bugs, not fragment violations, and are not
//! modeled.

use crate::template::Fidelity;
use dex_logic::{Mapping, Term};
use dex_relational::Name;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One structured reason why [`crate::compile`] will refuse a mapping.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PrecheckReason {
    /// The mapping has target tgds, which are outside the compilable
    /// fragment (target *egds* are fine).
    TargetTgds {
        /// How many target tgds there are.
        count: usize,
    },
    /// A tgd joins a relation with itself in the premise.
    SelfJoin {
        /// Index into `mapping.st_tgds()`.
        tgd: usize,
        /// The relation joined with itself.
        relation: Name,
    },
    /// A tgd contains a function (Skolem) term.
    FunctionTerm {
        /// Index into `mapping.st_tgds()`.
        tgd: usize,
        /// Rendered atom containing the term.
        atom: String,
    },
    /// Two tgds produce the same target relation but disagree on which
    /// columns are determined / constant / existential.
    ShapeDisagreement {
        /// The target relation produced with conflicting shapes.
        relation: Name,
        /// Indices of the tgds involved (first the reference shape,
        /// then each dissenter).
        tgds: Vec<usize>,
    },
    /// A source relation feeds the same target relation through more
    /// than one rule (or twice from one rule producing the relation in
    /// two conjuncts). The per-relation union lens would then mention
    /// the base table twice, making `put` ambiguous.
    DuplicateBase {
        /// The target relation whose union lens would be ambiguous.
        relation: Name,
        /// The source relation appearing more than once.
        source: Name,
        /// Tgd index of every contribution whose premise uses `source`,
        /// in rule order (repeated when one rule contributes twice).
        tgds: Vec<usize>,
    },
}

impl PrecheckReason {
    /// The primary offending st-tgd index, when the reason is tied to
    /// one (`ShapeDisagreement` points at the first dissenting tgd).
    pub fn tgd_index(&self) -> Option<usize> {
        match self {
            PrecheckReason::TargetTgds { .. } => None,
            PrecheckReason::SelfJoin { tgd, .. } | PrecheckReason::FunctionTerm { tgd, .. } => {
                Some(*tgd)
            }
            PrecheckReason::ShapeDisagreement { tgds, .. } => tgds.get(1).copied(),
            PrecheckReason::DuplicateBase { tgds, .. } => tgds.last().copied(),
        }
    }
}

impl fmt::Display for PrecheckReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecheckReason::TargetTgds { count } => write!(
                f,
                "{count} target tgd(s) are outside the compilable fragment; \
                 enforce them with the chase instead"
            ),
            PrecheckReason::SelfJoin { relation, .. } => write!(
                f,
                "premise joins relation `{relation}` with itself; self-joins need \
                 aliasing, which the lens fragment does not support"
            ),
            PrecheckReason::FunctionTerm { atom, .. } => write!(
                f,
                "function term in `{atom}`; SO-tgds are executed by the chase, \
                 not compiled to lenses"
            ),
            PrecheckReason::ShapeDisagreement { relation, tgds } => write!(
                f,
                "tgds {tgds:?} producing `{relation}` disagree on which columns \
                 are determined; a single view lens cannot serve both"
            ),
            PrecheckReason::DuplicateBase {
                relation,
                source,
                tgds,
            } => write!(
                f,
                "source relation `{source}` feeds `{relation}` through several \
                 conjuncts (tgds {tgds:?}); the union lens would mention the base \
                 table twice, making put ambiguous"
            ),
        }
    }
}

/// The precheck's full verdict.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PrecheckReport {
    /// Every predicted refusal reason (empty iff `compile` accepts).
    pub reasons: Vec<PrecheckReason>,
    /// Predicted fidelity of each st-tgd, aligned with
    /// `mapping.st_tgds()`. `Approximate` lists the shared existential
    /// variables, matching the compiler's report classes.
    pub fidelity: Vec<Fidelity>,
}

impl PrecheckReport {
    /// Will [`crate::compile`] accept this mapping?
    pub fn accepts(&self) -> bool {
        self.reasons.is_empty()
    }
}

/// The statically computed shape of one target atom — which positions
/// a produced relation gets from the frontier, constants, existentials,
/// or earlier columns. Mirrors the compiler's internal classification;
/// two tgds producing the same relation must agree on it.
#[derive(Clone, PartialEq, Eq, Debug)]
enum PosKind {
    Frontier,
    Const(dex_relational::Constant),
    Existential,
    /// Copy of the first occurrence at the given earlier position.
    CopyOf(usize),
}

/// Statically predict [`crate::compile`]'s verdict on a mapping.
pub fn precheck(mapping: &Mapping) -> PrecheckReport {
    let mut reasons = Vec::new();
    let mut fidelity = Vec::new();

    if !mapping.target_tgds().is_empty() {
        reasons.push(PrecheckReason::TargetTgds {
            count: mapping.target_tgds().len(),
        });
    }

    // (relation → (first tgd index, shape)) for disagreement checks;
    // and the dissenters per relation, in discovery order.
    let mut shapes: BTreeMap<Name, (usize, Vec<PosKind>)> = BTreeMap::new();
    let mut disagreements: BTreeMap<Name, Vec<usize>> = BTreeMap::new();
    // (target rel, source rel) → tgd index of each contribution whose
    // premise reads the source relation. More than one entry means the
    // folded union lens mentions the base table twice.
    let mut base_uses: BTreeMap<(Name, Name), Vec<usize>> = BTreeMap::new();

    for (ti, tgd) in mapping.st_tgds().iter().enumerate() {
        // Self-joins in the premise.
        let mut lhs_rels = BTreeSet::new();
        for a in &tgd.lhs {
            if !lhs_rels.insert(a.relation.clone()) {
                reasons.push(PrecheckReason::SelfJoin {
                    tgd: ti,
                    relation: a.relation.clone(),
                });
            }
        }

        // Function terms anywhere in the rule.
        let mut func_atoms = false;
        for atom in tgd.lhs.iter().chain(tgd.rhs.iter()) {
            if atom.args.iter().any(|t| matches!(t, Term::Func(..))) {
                reasons.push(PrecheckReason::FunctionTerm {
                    tgd: ti,
                    atom: atom.to_string(),
                });
                func_atoms = true;
            }
        }

        // Shared existentials: approximate iff an existential variable
        // occurs in two or more distinct rhs atoms (the compiler counts
        // each variable once per atom).
        let ex: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
        let mut shared: Vec<Name> = Vec::new();
        if tgd.rhs.len() > 1 {
            let mut counts: BTreeMap<Name, usize> = BTreeMap::new();
            for atom in &tgd.rhs {
                for v in atom.variables().into_iter().filter(|v| ex.contains(v)) {
                    *counts.entry(v).or_default() += 1;
                }
            }
            shared = counts
                .into_iter()
                .filter(|(_, n)| *n > 1)
                .map(|(v, _)| v)
                .collect();
        }
        fidelity.push(if shared.is_empty() {
            Fidelity::Exact
        } else {
            Fidelity::Approximate(
                shared
                    .into_iter()
                    .map(|v| {
                        format!(
                            "existential variable `{v}` is shared between target atoms; the \
                             compiled lenses invent its value independently per relation"
                        )
                    })
                    .collect(),
            )
        });

        // Shape classification per target atom — skipped when the tgd
        // carries function terms, matching the compiler (which refuses
        // the atom before shaping it).
        if func_atoms {
            continue;
        }
        let lhs_vars: BTreeSet<Name> = tgd.lhs_vars().into_iter().collect();
        for atom in &tgd.rhs {
            let mut shape: Vec<PosKind> = Vec::with_capacity(atom.args.len());
            let mut first_pos: BTreeMap<Name, usize> = BTreeMap::new();
            for (i, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Var(v) => {
                        if let Some(&fp) = first_pos.get(v.as_str()) {
                            shape.push(PosKind::CopyOf(fp));
                        } else {
                            first_pos.insert(v.clone(), i);
                            shape.push(if lhs_vars.contains(v.as_str()) {
                                PosKind::Frontier
                            } else {
                                PosKind::Existential
                            });
                        }
                    }
                    Term::Const(c) => shape.push(PosKind::Const(c.clone())),
                    Term::Func(..) => unreachable!("func tgds skipped above"),
                }
            }
            match shapes.get(&atom.relation) {
                None => {
                    shapes.insert(atom.relation.clone(), (ti, shape));
                }
                Some((_, reference)) if *reference == shape => {}
                Some(_) => disagreements
                    .entry(atom.relation.clone())
                    .or_default()
                    .push(ti),
            }
            // Each conjunct producing `atom.relation` contributes a lens
            // tree over every premise relation of its rule.
            for src in &lhs_rels {
                base_uses
                    .entry((atom.relation.clone(), src.clone()))
                    .or_default()
                    .push(ti);
            }
        }
    }

    for (rel, mut dissenters) in disagreements {
        let first = shapes[&rel].0;
        dissenters.dedup();
        let mut tgds = vec![first];
        tgds.extend(dissenters);
        reasons.push(PrecheckReason::ShapeDisagreement {
            relation: rel,
            tgds,
        });
    }

    for ((rel, source), tgds) in base_uses {
        if tgds.len() > 1 {
            reasons.push(PrecheckReason::DuplicateBase {
                relation: rel,
                source,
                tgds,
            });
        }
    }

    PrecheckReport { reasons, fidelity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use dex_logic::parse_mapping;

    fn agree(src: &str) {
        let m = parse_mapping(src).unwrap();
        let pre = precheck(&m);
        match compile(&m) {
            Ok(t) => {
                assert!(pre.accepts(), "precheck refused, compile accepted: {pre:?}");
                for (i, (_, fid)) in t.report.entries.iter().enumerate() {
                    assert_eq!(
                        matches!(fid, Fidelity::Exact),
                        matches!(pre.fidelity[i], Fidelity::Exact),
                        "fidelity class disagrees on tgd {i}"
                    );
                }
            }
            Err(e) => assert!(!pre.accepts(), "precheck accepted, compile refused: {e}"),
        }
    }

    #[test]
    fn accepts_what_compile_accepts() {
        agree(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        agree(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        );
    }

    #[test]
    fn predicts_self_join_refusal() {
        let m = parse_mapping(
            r#"
            source S(a, b);
            target T(a, c);
            S(x, y) & S(y, z) -> T(x, z);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert!(!pre.accepts());
        assert_eq!(
            pre.reasons[0],
            PrecheckReason::SelfJoin {
                tgd: 0,
                relation: dex_relational::Name::new("S"),
            }
        );
        assert_eq!(pre.reasons[0].tgd_index(), Some(0));
        assert!(compile(&m).is_err());
    }

    #[test]
    fn predicts_target_tgd_refusal() {
        let m = parse_mapping(
            r#"
            source S(a);
            target T(a);
            target U(a);
            S(x) -> T(x);
            T(x) -> U(x);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert_eq!(pre.reasons, vec![PrecheckReason::TargetTgds { count: 1 }]);
        assert!(compile(&m).is_err());
    }

    #[test]
    fn predicts_shape_disagreement() {
        let m = parse_mapping(
            r#"
            source R1(a, b);
            source R2(a);
            target S(a, b);
            R1(x, y) -> S(x, y);
            R2(x) -> S(x, y);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert!(!pre.accepts());
        match &pre.reasons[0] {
            PrecheckReason::ShapeDisagreement { relation, tgds } => {
                assert_eq!(relation.as_str(), "S");
                assert_eq!(tgds, &vec![0, 1]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(pre.reasons[0].tgd_index(), Some(1));
        assert!(compile(&m).is_err());
    }

    #[test]
    fn predicts_duplicate_base_across_tgds() {
        // Two rules with the same premise relation feed `T`: same
        // shape, but the union lens would mention `S` twice.
        let m = parse_mapping(
            r#"
            source S(a, b);
            target T(c, d);
            S(x, y) -> T(x, y);
            S(x, y) -> T(y, x);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert_eq!(
            pre.reasons,
            vec![PrecheckReason::DuplicateBase {
                relation: dex_relational::Name::new("T"),
                source: dex_relational::Name::new("S"),
                tgds: vec![0, 1],
            }]
        );
        assert_eq!(pre.reasons[0].tgd_index(), Some(1));
        assert!(compile(&m).is_err());
    }

    #[test]
    fn predicts_duplicate_base_within_one_tgd() {
        // One rule producing `T` in two conjuncts duplicates its own
        // premise relation in the folded union.
        agree(
            r#"
            source S(a, b);
            target T(c, d);
            S(x, y) -> T(x, z) & T(y, z);
            "#,
        );
        let m = parse_mapping(
            r#"
            source S(a, b);
            target T(c, d);
            S(x, y) -> T(x, z) & T(y, z);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert!(pre.reasons.iter().any(
            |r| matches!(r, PrecheckReason::DuplicateBase { tgds, .. } if tgds == &vec![0, 0])
        ));
    }

    #[test]
    fn distinct_premises_feeding_one_target_stay_accepted() {
        // The classic Father/Mother union is fine: different base
        // tables, one view lens. (Also covered by agree() above, but
        // pinned here against the new DuplicateBase rule.)
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        )
        .unwrap();
        assert!(precheck(&m).accepts());
        assert!(compile(&m).is_ok());
    }

    #[test]
    fn predicts_approximate_fidelity() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target StudentCard(id);
            Takes(x, y) -> Student(z, x) & StudentCard(z);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        assert!(pre.accepts());
        assert!(matches!(pre.fidelity[0], Fidelity::Approximate(_)));
        let t = compile(&m).unwrap();
        assert!(matches!(t.report.entries[0].1, Fidelity::Approximate(_)));
    }

    #[test]
    fn repeated_existential_within_one_atom_stays_exact() {
        // R(x) -> S(x, z, z): z repeats inside a single atom — the
        // compiler counts it once per atom, so the tgd is Exact.
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b, c);
            R(x) -> S(x, z, z);
            "#,
        )
        .unwrap();
        agree(
            r#"
            source R(a);
            target S(a, b, c);
            R(x) -> S(x, z, z);
            "#,
        );
        let pre = precheck(&m);
        assert!(matches!(pre.fidelity[0], Fidelity::Exact));
    }

    #[test]
    fn report_serde_round_trip() {
        let m = parse_mapping(
            r#"
            source S(a, b);
            target T(a, c);
            S(x, y) & S(y, z) -> T(x, z);
            "#,
        )
        .unwrap();
        let pre = precheck(&m);
        let json = serde_json::to_string(&pre).unwrap();
        let back: PrecheckReport = serde_json::from_str(&json).unwrap();
        assert_eq!(pre, back);
    }
}
