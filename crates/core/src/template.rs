//! Lens templates: compiled mappings with policy **holes**.
//!
//! Paper §4: “one can equally consider a relational lens template as a
//! way to describe a family of potential lenses corresponding to a
//! specific relational operator but missing its update policy … With
//! the data exchange scenario, one would need to somehow fill in the
//! relational lens template parameters, needing answers to questions
//! like ‘what do I do with this extra column’.”
//!
//! A [`MappingTemplate`] is the compiled form of a set of st-tgds: one
//! [`RelationLens`] per produced target relation, plus the list of
//! [`Hole`]s — each hole carries the user-facing *question*, its
//! current (default) binding, and a path to the tree node it
//! configures. Binding a hole rewrites the plan in place.

use crate::error::CoreError;
use dex_logic::Egd;
use dex_relational::{Name, RelSchema, Schema};
use dex_rellens::{JoinPolicy, RelLensExpr, UnionPolicy, UpdatePolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A step into a [`RelLensExpr`] tree: which child to descend into.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Step {
    /// The unary child (Select/Project/Rename input) or a binary
    /// node's left child.
    Left,
    /// A binary node's right child.
    Right,
}

/// Where in the template a hole lives.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HoleSite {
    /// A dropped column in the *source* lens of `target_rel` — the
    /// “what happens to this source column when rows come back”
    /// question (the intro's “Is the Age field preserved?”).
    SourceColumn {
        /// Which relation lens.
        target_rel: Name,
        /// The dropped source column (variable name).
        column: Name,
        /// Path to the Project node.
        path: Vec<Step>,
    },
    /// A dropped (existentially quantified) column in the *target*
    /// lens — “How does one populate the Salary field?”.
    TargetColumn {
        /// Which relation lens.
        target_rel: Name,
        /// The target column.
        column: Name,
        /// Path to the Project node.
        path: Vec<Step>,
    },
    /// A join node in the source lens — through which input does a
    /// deletion propagate?
    Join {
        /// Which relation lens.
        target_rel: Name,
        /// Path to the Join node.
        path: Vec<Step>,
    },
    /// A union node in the source lens — which input receives
    /// insertions?
    Union {
        /// Which relation lens.
        target_rel: Name,
        /// Path to the Union node.
        path: Vec<Step>,
    },
}

impl HoleSite {
    fn target_rel(&self) -> &Name {
        match self {
            HoleSite::SourceColumn { target_rel, .. }
            | HoleSite::TargetColumn { target_rel, .. }
            | HoleSite::Join { target_rel, .. }
            | HoleSite::Union { target_rel, .. } => target_rel,
        }
    }

    /// Is this hole in the source lens (as opposed to the target lens)?
    fn in_source_lens(&self) -> bool {
        !matches!(self, HoleSite::TargetColumn { .. })
    }
}

/// A value for a hole.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum HoleBinding {
    /// A column-fill policy.
    Column(UpdatePolicy),
    /// A join deletion policy.
    Join(JoinPolicy),
    /// A union insertion-routing policy.
    Union(UnionPolicy),
}

impl fmt::Display for HoleBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoleBinding::Column(p) => write!(f, "{p}"),
            HoleBinding::Join(p) => write!(f, "{p}"),
            HoleBinding::Union(p) => write!(f, "{p}"),
        }
    }
}

/// One open template parameter.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Hole {
    /// Stable id (index into the template's hole list).
    pub id: usize,
    /// The user-facing question.
    pub question: String,
    /// Where the hole lives.
    pub site: HoleSite,
    /// The current binding (defaults are chase-like: nulls, delete-both,
    /// insert-left).
    pub current: HoleBinding,
}

impl fmt::Display for Hole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hole #{}: {} [current: {}]",
            self.id, self.question, self.current
        )
    }
}

/// How faithfully a tgd compiled.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Fidelity {
    /// The lens pair reproduces the tgd's chase semantics exactly.
    Exact,
    /// Compiled, but with listed deviations.
    Approximate(Vec<String>),
}

/// The compiler's completeness statement, per tgd.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CompileReport {
    /// `(tgd display, fidelity)` pairs, in input order.
    pub entries: Vec<(String, Fidelity)>,
}

impl CompileReport {
    /// Did every tgd compile exactly?
    pub fn all_exact(&self) -> bool {
        self.entries
            .iter()
            .all(|(_, f)| matches!(f, Fidelity::Exact))
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tgd, fid) in &self.entries {
            match fid {
                Fidelity::Exact => writeln!(f, "[exact]       {tgd}")?,
                Fidelity::Approximate(rs) => {
                    writeln!(f, "[approximate] {tgd}")?;
                    for r in rs {
                        writeln!(f, "              · {r}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The compiled lens pair for one target relation: the **cospan**
/// `source —source_expr→ view ←target_expr— target`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RelationLens {
    /// The target relation this pair produces/consumes.
    pub target_rel: Name,
    /// The shared determined view's header.
    pub view: RelSchema,
    /// Lens from the source instance to the view.
    pub source_expr: RelLensExpr,
    /// Lens from the target instance (relation `target_rel`) to the
    /// view.
    pub target_expr: RelLensExpr,
}

/// A compiled mapping: relation lenses + holes + the completeness
/// report.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MappingTemplate {
    /// The source schema.
    pub source: Schema,
    /// The target schema.
    pub target: Schema,
    /// One lens pair per produced target relation, in name order.
    pub lenses: Vec<RelationLens>,
    /// The open template parameters.
    pub holes: Vec<Hole>,
    /// Target key constraints (egds), enforced by the engine after
    /// every forward pass.
    pub target_egds: Vec<Egd>,
    /// Per-tgd fidelity.
    pub report: CompileReport,
}

impl MappingTemplate {
    /// Bind hole `id` to a new value, rewriting the plan.
    pub fn bind(&mut self, id: usize, binding: HoleBinding) -> Result<(), CoreError> {
        let hole = self
            .holes
            .get(id)
            .cloned()
            .ok_or(CoreError::UnknownHole(id))?;
        // Kind check.
        match (&hole.current, &binding) {
            (HoleBinding::Column(_), HoleBinding::Column(_))
            | (HoleBinding::Join(_), HoleBinding::Join(_))
            | (HoleBinding::Union(_), HoleBinding::Union(_)) => {}
            (HoleBinding::Column(_), _) => {
                return Err(CoreError::WrongBindingKind {
                    hole: id,
                    expected: "column policy",
                })
            }
            (HoleBinding::Join(_), _) => {
                return Err(CoreError::WrongBindingKind {
                    hole: id,
                    expected: "join policy",
                })
            }
            (HoleBinding::Union(_), _) => {
                return Err(CoreError::WrongBindingKind {
                    hole: id,
                    expected: "union policy",
                })
            }
        }
        let rel = hole.site.target_rel().clone();
        let lens = self
            .lenses
            .iter_mut()
            .find(|l| l.target_rel == rel)
            .ok_or(CoreError::UnknownHole(id))?;
        let (expr, path, column): (&mut RelLensExpr, &[Step], Option<&Name>) = match &hole.site {
            HoleSite::SourceColumn { path, column, .. } => {
                (&mut lens.source_expr, path, Some(column))
            }
            HoleSite::TargetColumn { path, column, .. } => {
                (&mut lens.target_expr, path, Some(column))
            }
            HoleSite::Join { path, .. } | HoleSite::Union { path, .. } => {
                let e = if hole.site.in_source_lens() {
                    &mut lens.source_expr
                } else {
                    &mut lens.target_expr
                };
                (e, path, None)
            }
        };
        let node = descend(expr, path)?;
        match (&binding, node) {
            (HoleBinding::Column(p), RelLensExpr::Project { policies, .. }) => {
                // Column hole sites always carry their column.
                let Some(col) = column else {
                    return Err(CoreError::WrongBindingKind {
                        hole: id,
                        expected: "a column hole naming its column",
                    });
                };
                policies.insert(col.clone(), p.clone());
            }
            (HoleBinding::Join(p), RelLensExpr::Join { policy, .. }) => {
                *policy = *p;
            }
            (HoleBinding::Union(p), RelLensExpr::Union { policy, .. }) => {
                *policy = *p;
            }
            _ => {
                return Err(CoreError::WrongBindingKind {
                    hole: id,
                    expected: "a binding matching the node at the hole's path",
                })
            }
        }
        self.holes[id].current = binding;
        Ok(())
    }

    /// The lens pair for `target_rel`, if produced by the mapping.
    pub fn lens_for(&self, target_rel: &str) -> Option<&RelationLens> {
        self.lenses.iter().find(|l| l.target_rel == target_rel)
    }
}

fn descend<'a>(expr: &'a mut RelLensExpr, path: &[Step]) -> Result<&'a mut RelLensExpr, CoreError> {
    let mut node = expr;
    for step in path {
        node = match (node, step) {
            (RelLensExpr::Select { input, .. }, Step::Left)
            | (RelLensExpr::Project { input, .. }, Step::Left)
            | (RelLensExpr::Rename { input, .. }, Step::Left) => input,
            (RelLensExpr::Join { left, .. }, Step::Left)
            | (RelLensExpr::Union { left, .. }, Step::Left) => left,
            (RelLensExpr::Join { right, .. }, Step::Right)
            | (RelLensExpr::Union { right, .. }, Step::Right) => right,
            _ => {
                return Err(CoreError::Unsupported {
                    reasons: vec!["internal: hole path does not match plan shape".into()],
                })
            }
        };
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::RelSchema;

    fn tiny_template() -> MappingTemplate {
        // source Emp(name); target Manager(emp, mgr); Emp(x) -> Manager(x, y)
        let source =
            Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap();
        let target =
            Schema::with_relations(vec![
                RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
            ])
            .unwrap();
        let source_expr = RelLensExpr::base("Emp")
            .project(vec!["name"], vec![])
            .rename(vec![("name", "emp")]);
        let target_expr =
            RelLensExpr::base("Manager").project(vec!["emp"], vec![("mgr", UpdatePolicy::Null)]);
        let view = RelSchema::untyped("Manager", vec!["emp"]).unwrap();
        MappingTemplate {
            source,
            target,
            lenses: vec![RelationLens {
                target_rel: Name::new("Manager"),
                view,
                source_expr,
                target_expr,
            }],
            holes: vec![Hole {
                id: 0,
                question: "what do I do with column `Manager.mgr`?".into(),
                site: HoleSite::TargetColumn {
                    target_rel: Name::new("Manager"),
                    column: Name::new("mgr"),
                    path: vec![],
                },
                current: HoleBinding::Column(UpdatePolicy::Null),
            }],
            target_egds: vec![],
            report: CompileReport::default(),
        }
    }

    #[test]
    fn bind_rewrites_target_policy() {
        let mut t = tiny_template();
        t.bind(0, HoleBinding::Column(UpdatePolicy::Const("TBD".into())))
            .unwrap();
        match &t.lenses[0].target_expr {
            RelLensExpr::Project { policies, .. } => {
                assert_eq!(
                    policies.get("mgr"),
                    Some(&UpdatePolicy::Const("TBD".into()))
                );
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(
            t.holes[0].current,
            HoleBinding::Column(UpdatePolicy::Const("TBD".into()))
        );
    }

    #[test]
    fn bind_unknown_hole_rejected() {
        let mut t = tiny_template();
        assert!(matches!(
            t.bind(7, HoleBinding::Column(UpdatePolicy::Null)),
            Err(CoreError::UnknownHole(7))
        ));
    }

    #[test]
    fn bind_wrong_kind_rejected() {
        let mut t = tiny_template();
        assert!(matches!(
            t.bind(0, HoleBinding::Join(JoinPolicy::DeleteLeft)),
            Err(CoreError::WrongBindingKind { .. })
        ));
    }

    #[test]
    fn report_display() {
        let report = CompileReport {
            entries: vec![
                ("tgd1".into(), Fidelity::Exact),
                (
                    "tgd2".into(),
                    Fidelity::Approximate(vec!["shared existential".into()]),
                ),
            ],
        };
        assert!(!report.all_exact());
        let s = report.to_string();
        assert!(s.contains("[exact]"));
        assert!(s.contains("shared existential"));
    }

    #[test]
    fn hole_display() {
        let t = tiny_template();
        let s = t.holes[0].to_string();
        assert!(s.contains("hole #0"));
        assert!(s.contains("current: null"));
    }
}
