//! The mapping-plan IR — the paper's "show plan" made structural.
//!
//! [`plan`] lowers a [`Mapping`] into a [`MappingPlan`]: a serializable
//! description of how the exchange pipeline would execute it, instead
//! of the opaque closures the engine runs. Per dependency it records
//! the static premise-matching strategy ([`dex_logic::premise_plan`]:
//! greedy atom order plus index-probe positions), the matcher phase
//! (st-tgds fire in a full pass over the source; target tgds re-fire
//! delta-driven, semi-naive), and how many nulls each firing invents.
//! The lens section embeds the compiled [`MappingTemplate`]'s per-
//! relation trees — flattened via
//! [`dex_rellens::RelLensExpr::summarize_nodes`] so update policies are
//! visible per node — or, when the mapping is outside the compilable
//! fragment, the compiler's refusal reasons.
//!
//! `dexcli explain` renders this IR (annotated with spans and the
//! dataflow graph from `dex-analyze`) as a tree, JSON, or DOT.

use crate::compiler::compile;
use crate::error::CoreError;
use crate::template::{Fidelity, MappingTemplate};
use dex_chase::TerminationClass;
use dex_logic::{premise_plan, Mapping, PremisePlan, StTgd};
use dex_relational::{Bound, ChaseBounds, Name};
use dex_rellens::NodeSummary;
use serde::Serialize;
use std::collections::BTreeMap;

/// Which matcher phase executes a dependency (see `dex-chase`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum MatcherChoice {
    /// Matched once in a full indexed pass over the source instance
    /// (st-tgds: their premises never change during the chase).
    FullPass,
    /// Re-matched each round, seeded from the previous round's delta
    /// (semi-naive evaluation of target tgds and egds).
    DeltaDriven,
}

impl MatcherChoice {
    /// Stable display form.
    pub fn as_str(&self) -> &'static str {
        match self {
            MatcherChoice::FullPass => "indexed full pass",
            MatcherChoice::DeltaDriven => "indexed, delta-driven (semi-naive)",
        }
    }

    /// How this matcher phase shards across worker threads when the
    /// chase runs with `threads > 1` (see `ChaseOptions::threads`).
    /// Matching parallelizes; firing and null invention stay
    /// sequential, so output is identical at any thread count.
    pub fn sharding(&self) -> &'static str {
        match self {
            // Phase 1 decomposes the premise into per-candidate seeds
            // of its first atom and deals them round-robin, so merging
            // shard outputs in seed order reproduces the sequential
            // enumeration exactly.
            MatcherChoice::FullPass => "seed-sharded over first-atom candidates",
            // Phase 2 partitions the round's delta tuples by hash, one
            // shard per worker; outputs merge in (shard, delta) order
            // before the deterministic firing sort.
            MatcherChoice::DeltaDriven => "hash-partitioned over the round delta",
        }
    }
}

/// The plan for one tgd.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct TgdPlan {
    /// Index into the mapping's st-tgd (or target-tgd) list.
    pub index: usize,
    /// Paper-style display of the dependency.
    pub display: String,
    /// Display form of each premise atom (aligned with
    /// `premise.steps[*].atom` indices).
    pub premise_atoms: Vec<String>,
    /// Static premise-matching plan: greedy atom order and per-step
    /// index-probe positions.
    pub premise: PremisePlan,
    /// Which matcher phase runs this dependency.
    pub matcher: MatcherChoice,
    /// How premise matching for this dependency shards across worker
    /// threads under `--threads N` (matching only — firing and null
    /// invention remain sequential, keeping output deterministic).
    pub sharding: String,
    /// Existential variables — each firing invents one labeled null
    /// per entry.
    pub existentials: Vec<Name>,
    /// Nulls invented per firing (`existentials.len()`).
    pub nulls_per_firing: usize,
    /// Compiler fidelity for this tgd (`None` when the lens section is
    /// unavailable or the dependency is not an st-tgd).
    pub fidelity: Option<String>,
}

/// The plan for one egd (premise matching + enforced equalities).
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct EgdPlan {
    /// Index into the mapping's target-egd list.
    pub index: usize,
    /// Display of the egd.
    pub display: String,
    /// Static premise-matching plan for the body.
    pub premise: PremisePlan,
}

/// One compiled relation lens, flattened for rendering.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct RelationPlan {
    /// The produced target relation.
    pub target_rel: Name,
    /// The determined view's attribute names.
    pub view: Vec<Name>,
    /// Pre-order node summaries of the source lens (source → view).
    pub source_nodes: Vec<NodeSummary>,
    /// Pre-order node summaries of the target lens (target → view).
    pub target_nodes: Vec<NodeSummary>,
}

/// An open policy hole, flattened for rendering.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct HolePlan {
    /// Stable hole id.
    pub id: usize,
    /// The user-facing question.
    pub question: String,
    /// Display of the current (default) binding.
    pub current: String,
    /// The target relation whose lens the hole configures.
    pub target_rel: Name,
}

/// The bidirectional (lens) section of a plan.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub enum LensSection {
    /// The mapping compiled; per-relation lens trees and holes follow.
    Available {
        /// One entry per produced target relation, in name order.
        relations: Vec<RelationPlan>,
        /// The template's open policy holes.
        holes: Vec<HolePlan>,
    },
    /// The mapping is outside the compilable fragment.
    Unavailable {
        /// The compiler's refusal reasons.
        reasons: Vec<String>,
    },
}

/// Static chase-cost section of the plan: per-dependency and per-
/// relation upper bounds derived from acyclicity structure, evaluated
/// at assumed source cardinalities. Pure data — the analysis lives in
/// `dex-analyze`'s cost pass, which fills this in for `dexcli explain`;
/// [`plan`] itself leaves the field `None`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct CostSection {
    /// The termination certificate the bounds rest on. `Unknown` makes
    /// every chase-side bound `unbounded`.
    pub class: TerminationClass,
    /// Null "generations" the chase can cascade through: the maximum
    /// position rank (weakly acyclic) or the existential-dependency
    /// depth (jointly acyclic).
    pub strata: Bound,
    /// Upper bound on the number of distinct values (constants +
    /// invented nulls) ever live in the target instance.
    pub value_universe: Bound,
    /// Per-relation cardinalities the bounds were evaluated at.
    pub assumed_cards: BTreeMap<Name, u64>,
    /// Cardinality assumed for relations absent from `assumed_cards`.
    pub default_card: u64,
    /// Per-st-tgd firing bounds, in mapping order.
    pub st_tgd_firings: Vec<Bound>,
    /// Per-target-tgd firing bounds, in mapping order.
    pub target_tgd_firings: Vec<Bound>,
    /// Invented-null bounds per existential position (`"T.1"`-style
    /// keys, 0-based).
    pub nulls_per_position: BTreeMap<String, Bound>,
    /// Tuple bounds per target relation.
    pub tuples_per_relation: BTreeMap<Name, Bound>,
    /// The aggregate bounds (`Budget::from_bounds` consumes these).
    pub bounds: ChaseBounds,
}

/// Verified-optimizer section of the plan: what `dexcli optimize`
/// would do to this mapping. Pure data — the semantic analysis lives
/// in `dex-analyze`'s containment checker, which fills this in for
/// `dexcli explain`; [`plan`] itself leaves the field `None`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct OptimizedSection {
    /// Descriptions of the verified rewrites, in application order;
    /// empty when the mapping is already minimal.
    pub rewrites: Vec<String>,
    /// `(total atoms, dependencies)` before optimization.
    pub original_size: (usize, usize),
    /// `(total atoms, dependencies)` after optimization.
    pub optimized_size: (usize, usize),
    /// Why the optimizer refused to run, when it did (non-terminating
    /// target tgds); the sizes are then equal and `rewrites` empty.
    pub refused: Option<String>,
}

/// A complete, serializable execution plan for a mapping.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct MappingPlan {
    /// St-tgd plans, in mapping order.
    pub st_tgds: Vec<TgdPlan>,
    /// Target-tgd plans, in mapping order.
    pub target_tgds: Vec<TgdPlan>,
    /// Target-egd plans, in mapping order.
    pub target_egds: Vec<EgdPlan>,
    /// The lens section (compiled template or refusal reasons).
    pub lens: LensSection,
    /// Static cost bounds (filled by the analyzer's cost pass; `None`
    /// straight out of [`plan`]).
    pub cost: Option<CostSection>,
    /// Verified-optimizer summary (filled by the analyzer's semantic
    /// pass; `None` straight out of [`plan`]).
    pub optimized: Option<OptimizedSection>,
}

fn tgd_plan(
    index: usize,
    tgd: &StTgd,
    matcher: MatcherChoice,
    fidelity: Option<String>,
) -> TgdPlan {
    let existentials = tgd.existential_vars();
    TgdPlan {
        index,
        display: tgd.to_string(),
        premise_atoms: tgd.lhs.iter().map(|a| a.to_string()).collect(),
        premise: premise_plan(&tgd.lhs, &[]),
        matcher,
        sharding: matcher.sharding().to_string(),
        nulls_per_firing: existentials.len(),
        existentials,
        fidelity,
    }
}

fn lens_section(
    template: Result<MappingTemplate, CoreError>,
) -> (LensSection, Vec<Option<String>>) {
    match template {
        Ok(t) => {
            let fidelities = t
                .report
                .entries
                .iter()
                .map(|(_, f)| {
                    Some(match f {
                        Fidelity::Exact => "exact".to_string(),
                        Fidelity::Approximate(rs) => format!("approximate: {}", rs.join("; ")),
                    })
                })
                .collect();
            let relations = t
                .lenses
                .iter()
                .map(|l| RelationPlan {
                    target_rel: l.target_rel.clone(),
                    view: l.view.attrs().iter().map(|(a, _)| a.clone()).collect(),
                    source_nodes: l.source_expr.summarize_nodes(),
                    target_nodes: l.target_expr.summarize_nodes(),
                })
                .collect();
            let holes = t
                .holes
                .iter()
                .map(|h| HolePlan {
                    id: h.id,
                    question: h.question.clone(),
                    current: h.current.to_string(),
                    target_rel: match &h.site {
                        crate::template::HoleSite::SourceColumn { target_rel, .. }
                        | crate::template::HoleSite::TargetColumn { target_rel, .. }
                        | crate::template::HoleSite::Join { target_rel, .. }
                        | crate::template::HoleSite::Union { target_rel, .. } => target_rel.clone(),
                    },
                })
                .collect();
            (LensSection::Available { relations, holes }, fidelities)
        }
        Err(CoreError::Unsupported { reasons }) => (LensSection::Unavailable { reasons }, vec![]),
        Err(e) => (
            LensSection::Unavailable {
                reasons: vec![e.to_string()],
            },
            vec![],
        ),
    }
}

/// Lower `mapping` into its execution plan. Always succeeds: when the
/// mapping is outside the compilable fragment the lens section carries
/// the refusal reasons and the chase-side plans are still produced.
pub fn plan(mapping: &Mapping) -> MappingPlan {
    let (lens, mut fidelities) = lens_section(compile(mapping));
    fidelities.resize(mapping.st_tgds().len(), None);
    let st_tgds = mapping
        .st_tgds()
        .iter()
        .enumerate()
        .map(|(i, t)| tgd_plan(i, t, MatcherChoice::FullPass, fidelities[i].clone()))
        .collect();
    let target_tgds = mapping
        .target_tgds()
        .iter()
        .enumerate()
        .map(|(i, t)| tgd_plan(i, t, MatcherChoice::DeltaDriven, None))
        .collect();
    let target_egds = mapping
        .target_egds()
        .iter()
        .enumerate()
        .map(|(i, e)| EgdPlan {
            index: i,
            display: e.to_string(),
            premise: premise_plan(&e.lhs, &[]),
        })
        .collect();
    MappingPlan {
        st_tgds,
        target_tgds,
        target_egds,
        lens,
        cost: None,
        optimized: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;

    #[test]
    fn plan_for_compilable_mapping() {
        let m = parse_mapping(
            "source Emp(name, dept);\nsource Dept(dept, mgr);\n\
             target Worker(name, dept, mgr);\n\
             Emp(n, d) & Dept(d, m) -> Worker(n, d, m);",
        )
        .unwrap();
        let p = plan(&m);
        assert_eq!(p.st_tgds.len(), 1);
        let t = &p.st_tgds[0];
        assert_eq!(t.matcher, MatcherChoice::FullPass);
        assert_eq!(t.nulls_per_firing, 0);
        assert_eq!(t.fidelity.as_deref(), Some("exact"));
        // Two premise steps; the second probes the join column.
        assert_eq!(t.premise.steps.len(), 2);
        assert!(!t.premise.steps[1].probe_positions.is_empty());
        match &p.lens {
            LensSection::Available { relations, .. } => {
                assert_eq!(relations.len(), 1);
                assert_eq!(relations[0].target_rel, Name::new("Worker"));
                assert!(!relations[0].source_nodes.is_empty());
            }
            other => panic!("expected available lens: {other:?}"),
        }
    }

    #[test]
    fn plan_survives_uncompilable_mapping() {
        let m = parse_mapping("source S(a, b);\ntarget T(a, c);\nS(x, y) & S(y, z) -> T(x, z);")
            .unwrap();
        let p = plan(&m);
        assert_eq!(p.st_tgds.len(), 1);
        assert_eq!(p.st_tgds[0].fidelity, None);
        match &p.lens {
            LensSection::Unavailable { reasons } => {
                assert!(reasons[0].contains("self-join"), "{reasons:?}");
            }
            other => panic!("expected unavailable lens: {other:?}"),
        }
    }

    #[test]
    fn plan_covers_target_dependencies() {
        let m = parse_mapping(
            "source R(a);\ntarget S(a);\ntarget T(a, b);\n\
             key T(a);\nR(x) -> S(x);\nS(x) -> T(x, y);",
        )
        .unwrap();
        let p = plan(&m);
        assert_eq!(p.target_tgds.len(), 1);
        assert_eq!(p.target_tgds[0].matcher, MatcherChoice::DeltaDriven);
        assert_eq!(p.target_tgds[0].nulls_per_firing, 1);
        assert_eq!(p.target_egds.len(), 1);
        assert_eq!(p.target_egds[0].premise.steps.len(), 2);
    }

    #[test]
    fn plan_serializes() {
        let m = parse_mapping("source R(a);\ntarget T(a);\nR(x) -> T(x);").unwrap();
        let json = serde_json::to_value(&plan(&m)).unwrap();
        assert!(json["st_tgds"][0]["premise"]["steps"].as_array().is_some());
    }
}
