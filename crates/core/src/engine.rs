//! The bidirectional exchange engine: a bound template, executed.

use crate::error::CoreError;
use crate::template::MappingTemplate;
use dex_lens::edit::Delta;
use dex_lens::SymLens;
use dex_relational::{ExhaustionReport, Governor, Instance, Relation};
use dex_rellens::{Environment, InstanceLens};
use std::time::{Duration, Instant};

/// The outcome of a governed forward pass
/// ([`Engine::forward_governed`]).
#[derive(Debug)]
pub enum EngineForward {
    /// The forward pass ran to completion within budget.
    Complete {
        /// The materialized target.
        target: Instance,
        /// Per-relation and egd statistics.
        stats: ForwardStats,
    },
    /// A budget or cancellation stopped the pass early.
    Exhausted {
        /// The target built so far (a prefix of whole relation passes,
        /// possibly with egds not yet enforced).
        partial: Instance,
        /// Which budget tripped and the consumption so far.
        report: ExhaustionReport,
    },
}

/// An executable bidirectional data-exchange engine.
///
/// * [`Engine::forward`] — materialize (or refresh) the target from the
///   source. With the default hole bindings (fresh nulls) this is
///   chase-equivalent on the exact fragment; with bound policies it
///   answers the intro's questions (“should Salary be filled by nulls,
///   or as a function of the ZipCode field?”) operationally.
/// * [`Engine::backward`] — propagate target edits to the source; the
///   per-relation lens puts are merged as deltas (all deletions apply,
///   then all insertions).
/// * [`Engine::sym`] — both directions packaged as a well-behaved
///   symmetric lens whose complement remembers the last two states
///   (the stateful-cospan construction of `dex_lens::span`).
pub struct Engine {
    template: MappingTemplate,
    source_lenses: Vec<(dex_relational::Name, InstanceLens)>,
    target_lenses: Vec<(dex_relational::Name, InstanceLens)>,
}

impl Engine {
    /// Validate and instantiate a (bound) template with an environment.
    pub fn new(template: MappingTemplate, env: Environment) -> Result<Self, CoreError> {
        let mut source_lenses = Vec::new();
        let mut target_lenses = Vec::new();
        for lens in &template.lenses {
            source_lenses.push((
                lens.target_rel.clone(),
                InstanceLens::new(
                    lens.source_expr.clone(),
                    template.source.clone(),
                    env.clone(),
                )?,
            ));
            target_lenses.push((
                lens.target_rel.clone(),
                InstanceLens::new(
                    lens.target_expr.clone(),
                    template.target.clone(),
                    env.clone(),
                )?,
            ));
        }
        Ok(Engine {
            template,
            source_lenses,
            target_lenses,
        })
    }

    /// The compiled template.
    pub fn template(&self) -> &MappingTemplate {
        &self.template
    }

    /// Materialize the target from `src`. When `prev_target` is given,
    /// the exchange is an *update*: target rows whose determined part
    /// survives keep their policy-filled columns; otherwise every
    /// underdetermined column is filled per policy (nulls by default).
    pub fn forward(
        &self,
        src: &Instance,
        prev_target: Option<&Instance>,
    ) -> Result<Instance, CoreError> {
        Ok(self.forward_with_stats(src, prev_target)?.0)
    }

    /// Like [`Engine::forward`], but also gathers per-relation
    /// execution statistics — the paper's plan process is “highly
    /// informed by gathered statistics”, and this is where they come
    /// from.
    pub fn forward_with_stats(
        &self,
        src: &Instance,
        prev_target: Option<&Instance>,
    ) -> Result<(Instance, ForwardStats), CoreError> {
        match self.forward_governed(src, prev_target, &Governor::unlimited())? {
            EngineForward::Complete { target, stats } => Ok((target, stats)),
            // Unreachable with an unlimited governor.
            EngineForward::Exhausted { report, .. } => Err(CoreError::Chase(
                dex_chase::ChaseError::Exhausted(Box::new(dex_chase::Exhausted {
                    partial: Instance::empty(self.template.target.clone()),
                    report,
                    stats: Default::default(),
                })),
            )),
        }
    }

    /// [`Engine::forward_with_stats`] under a resource budget and/or
    /// cancellation token. The governor is checked between per-relation
    /// lens passes (each pass is get + put for one target relation, an
    /// atomic step) and threaded through the final egd enforcement. A
    /// trip hands back the target built so far: a consistent prefix of
    /// whole relation passes — with egds possibly not yet enforced, as
    /// the report's trip point records.
    pub fn forward_governed(
        &self,
        src: &Instance,
        prev_target: Option<&Instance>,
        gov: &Governor,
    ) -> Result<EngineForward, CoreError> {
        let mut tgt = match prev_target {
            Some(t) => t.clone(),
            None => Instance::empty(self.template.target.clone()),
        };
        let mut stats = ForwardStats::default();
        for ((rel, s_lens), (_, t_lens)) in self.source_lenses.iter().zip(self.target_lenses.iter())
        {
            if let Err(reason) = gov.check() {
                return Ok(EngineForward::Exhausted {
                    partial: tgt,
                    report: gov.report(reason),
                });
            }
            let t0 = Instant::now();
            let view: Relation = s_lens.try_get(src)?;
            let get_time = t0.elapsed();
            gov.note_tuples(view.len());
            let t1 = Instant::now();
            tgt = t_lens.try_put(&view, &tgt)?;
            let put_time = t1.elapsed();
            stats.per_relation.push(RelationStats {
                relation: rel.clone(),
                view_rows: view.len(),
                get_time,
                put_time,
            });
        }
        if !self.template.target_egds.is_empty() {
            let t0 = Instant::now();
            match dex_chase::enforce_egds_governed(&tgt, &self.template.target_egds, gov)? {
                dex_chase::EgdOutcome::Complete {
                    instance,
                    stats: egd_stats,
                } => {
                    tgt = instance;
                    stats.egd_time = t0.elapsed();
                    stats.egd_rounds = egd_stats.rounds;
                    stats.egd_merges = egd_stats.merges;
                    stats.index_builds += egd_stats.index_builds;
                    stats.index_probes += egd_stats.index_probes;
                }
                dex_chase::EgdOutcome::Exhausted(e) => {
                    return Ok(EngineForward::Exhausted {
                        partial: e.partial,
                        report: e.report,
                    });
                }
            }
        }
        Ok(EngineForward::Complete { target: tgt, stats })
    }

    /// Propagate an edited target back to the source. Per-relation lens
    /// puts are computed against `prev_source` and merged: a source row
    /// is deleted if **any** lens deletes it, inserted if any inserts
    /// it (insertions win over deletions of the same row).
    pub fn backward(&self, tgt: &Instance, prev_source: &Instance) -> Result<Instance, CoreError> {
        let mut merged = Delta::empty();
        for ((_, s_lens), (_, t_lens)) in self.source_lenses.iter().zip(self.target_lenses.iter()) {
            let view = t_lens.try_get(tgt)?;
            let candidate = s_lens.try_put(&view, prev_source)?;
            let delta = Delta::diff(prev_source, &candidate);
            merged.deletes.extend(delta.deletes);
            merged.inserts.extend(delta.inserts);
        }
        merged.deletes.sort();
        merged.deletes.dedup();
        merged.inserts.sort();
        merged.inserts.dedup();
        // Deletions first, then insertions (Delta::apply order).
        let mut out = prev_source.clone();
        for (rel, t) in &merged.deletes {
            out.remove(rel.as_str(), t).map_err(CoreError::Relational)?;
        }
        for (rel, t) in &merged.inserts {
            out.insert(rel.as_str(), t.clone())
                .map_err(CoreError::Relational)?;
        }
        Ok(out)
    }

    /// Render the full mapping plan: per target relation the source and
    /// target lens trees, the open/bound policy questions, and the
    /// per-tgd fidelity report — the paper's “show plan” capability.
    pub fn show_plan(&self) -> String {
        let mut out = String::new();
        out.push_str("== mapping plan ==\n");
        for lens in &self.template.lenses {
            out.push_str(&format!(
                "target {}  (view: {})\n",
                lens.target_rel, lens.view
            ));
            out.push_str("  source lens:\n");
            for line in lens.source_expr.plan_string().lines() {
                out.push_str(&format!("    {line}\n"));
            }
            out.push_str("  target lens:\n");
            for line in lens.target_expr.plan_string().lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        if !self.template.holes.is_empty() {
            out.push_str("== policy questions ==\n");
            for h in &self.template.holes {
                out.push_str(&format!("  {h}\n"));
            }
        }
        out.push_str("== fidelity ==\n");
        out.push_str(&self.template.report.to_string());
        out
    }

    /// Wrap as a symmetric lens (source on the left, target on the
    /// right); the complement remembers the last states of both sides.
    pub fn sym(&self) -> EngineSymLens<'_> {
        EngineSymLens { engine: self }
    }
}

/// Per-relation execution statistics from a forward pass.
#[derive(Clone, Debug)]
pub struct RelationStats {
    /// The target relation this lens pair serves.
    pub relation: dex_relational::Name,
    /// Rows in the determined view.
    pub view_rows: usize,
    /// Time spent in the source lens's `get`.
    pub get_time: Duration,
    /// Time spent in the target lens's `put`.
    pub put_time: Duration,
}

/// Statistics for one forward pass.
#[derive(Clone, Debug, Default)]
pub struct ForwardStats {
    /// One entry per relation lens, in execution order.
    pub per_relation: Vec<RelationStats>,
    /// Time spent enforcing target keys (zero when there are none).
    pub egd_time: Duration,
    /// Key-enforcement fixpoint rounds (including the no-op round).
    pub egd_rounds: usize,
    /// Null merges applied while enforcing keys.
    pub egd_merges: usize,
    /// Index structures (re)built by the indexed matcher.
    pub index_builds: u64,
    /// Index probes served by the indexed matcher.
    pub index_probes: u64,
}

impl std::fmt::Display for ForwardStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "-- forward execution statistics --")?;
        for s in &self.per_relation {
            writeln!(
                f,
                "  {:<20} view rows: {:>7}   get: {:>10.1?}   put: {:>10.1?}",
                s.relation.as_str(),
                s.view_rows,
                s.get_time,
                s.put_time
            )?;
        }
        if self.egd_time > Duration::ZERO {
            writeln!(
                f,
                "  key enforcement: {:.1?}  ({} round(s), {} merge(s))",
                self.egd_time, self.egd_rounds, self.egd_merges
            )?;
        }
        writeln!(
            f,
            "  index builds: {}   index probes: {}",
            self.index_builds, self.index_probes
        )?;
        Ok(())
    }
}

/// The engine as a [`SymLens`] — composable and invertible with the
/// generic combinators.
///
/// The `SymLens` trait is infallible, so evaluation errors (e.g. a
/// missing environment value) panic here; run [`Engine::forward`] /
/// [`Engine::backward`] directly where errors must be handled.
pub struct EngineSymLens<'e> {
    engine: &'e Engine,
}

// The `SymLens` trait is infallible by design (lens laws are stated
// over total functions); the documented contract of `EngineSymLens` is
// that evaluation errors panic. Callers needing fallibility use
// `Engine::forward` / `Engine::backward` directly.
#[allow(clippy::expect_used)]
impl SymLens for EngineSymLens<'_> {
    type Left = Instance;
    type Right = Instance;
    type Compl = (Option<Instance>, Option<Instance>);

    fn missing(&self) -> Self::Compl {
        (None, None)
    }

    fn put_r(&self, src: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let tgt = self
            .engine
            .forward(src, c.1.as_ref())
            .expect("engine forward failed");
        (tgt.clone(), (Some(src.clone()), Some(tgt)))
    }

    fn put_l(&self, tgt: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let base = match &c.0 {
            Some(s) => s.clone(),
            None => Instance::empty(self.engine.template.source.clone()),
        };
        let src = self
            .engine
            .backward(tgt, &base)
            .expect("engine backward failed");
        (src.clone(), (Some(src), Some(tgt.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::template::HoleBinding;
    use dex_chase::exchange;
    use dex_logic::parse_mapping;
    use dex_relational::homomorphism::homomorphically_equivalent;
    use dex_relational::{tuple, Name, Tuple, Value};
    use dex_rellens::UpdatePolicy;

    fn engine_for(text: &str) -> (dex_logic::Mapping, Engine) {
        let m = parse_mapping(text).unwrap();
        let t = compile(&m).unwrap();
        let e = Engine::new(t, Environment::new()).unwrap();
        (m, e)
    }

    /// E7's core claim: with default (null) policies the compiled
    /// lens's forward agrees with the chase up to homomorphic
    /// equivalence.
    #[test]
    fn forward_matches_chase_example1() {
        let (m, e) = engine_for(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        let via_lens = e.forward(&src, None).unwrap();
        let via_chase = exchange(&m, &src).unwrap().target;
        assert!(m.is_solution(&src, &via_lens), "{via_lens}");
        assert!(
            homomorphically_equivalent(&via_lens, &via_chase),
            "lens:\n{via_lens}\nchase:\n{via_chase}"
        );
    }

    #[test]
    fn forward_matches_chase_figure1() {
        let (m, e) = engine_for(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        );
        let src = Instance::with_facts(
            m.source().clone(),
            vec![(
                "Takes",
                vec![
                    tuple!["Alice", "DB"],
                    tuple!["Alice", "PL"],
                    tuple!["Bob", "DB"],
                ],
            )],
        )
        .unwrap();
        let via_lens = e.forward(&src, None).unwrap();
        let via_chase = exchange(&m, &src).unwrap().target;
        assert!(m.is_solution(&src, &via_lens));
        assert!(homomorphically_equivalent(&via_lens, &via_chase));
    }

    #[test]
    fn forward_union_matches_chase() {
        let (m, e) = engine_for(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        );
        let src = Instance::with_facts(
            m.source().clone(),
            vec![
                ("Father", vec![tuple!["Leslie", "Alice"]]),
                ("Mother", vec![tuple!["Robin", "Sam"]]),
            ],
        )
        .unwrap();
        let via_lens = e.forward(&src, None).unwrap();
        let via_chase = exchange(&m, &src).unwrap().target;
        assert_eq!(via_lens, via_chase, "full mapping: exact equality");
    }

    /// Backward propagation: delete a target row, the source row goes;
    /// insert a target row, a source row appears (with policy fills).
    #[test]
    fn backward_propagates_edits_example1() {
        let (m, e) = engine_for(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        let tgt = e.forward(&src, None).unwrap();
        // Delete Bob's manager fact; add Carol with a concrete manager.
        let mut tgt2 = tgt.clone();
        let bob_row = tgt2
            .relation("Manager")
            .unwrap()
            .iter()
            .find(|t| t[0] == Value::str("Bob"))
            .unwrap()
            .clone();
        tgt2.remove("Manager", &bob_row).unwrap();
        tgt2.insert("Manager", tuple!["Carol", "Ted"]).unwrap();
        let src2 = e.backward(&tgt2, &src).unwrap();
        assert!(!src2.contains("Emp", &tuple!["Bob"]));
        assert!(src2.contains("Emp", &tuple!["Carol"]));
        assert!(src2.contains("Emp", &tuple!["Alice"]));
        // Round-trip: forward again reflects the edit.
        let tgt3 = e.forward(&src2, Some(&tgt2)).unwrap();
        assert!(m.is_solution(&src2, &tgt3));
        let emps: Vec<Value> = tgt3
            .relation("Manager")
            .unwrap()
            .iter()
            .map(|t| t[0].clone())
            .collect();
        assert_eq!(emps, vec![Value::str("Alice"), Value::str("Carol")]);
    }

    /// The stateful symmetric wrapper: target-private data (a manually
    /// set manager) survives a source push.
    #[test]
    fn forward_update_preserves_target_private_columns() {
        let (m, e) = engine_for(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        let src =
            Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let tgt = e.forward(&src, None).unwrap();
        // Someone fills in Alice's manager on the target side.
        let alice_row = tgt
            .relation("Manager")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .clone();
        let mut tgt2 = tgt.clone();
        tgt2.remove("Manager", &alice_row).unwrap();
        tgt2.insert("Manager", tuple!["Alice", "Ted"]).unwrap();
        // Source gains Bob; pushing forward as an *update* keeps Ted.
        let mut src2 = src.clone();
        src2.insert("Emp", tuple!["Bob"]).unwrap();
        let tgt3 = e.forward(&src2, Some(&tgt2)).unwrap();
        assert!(tgt3.contains("Manager", &tuple!["Alice", "Ted"]));
        let bob = tgt3
            .relation("Manager")
            .unwrap()
            .iter()
            .find(|t| t[0] == Value::str("Bob"))
            .unwrap()
            .clone();
        assert!(bob[1].is_null(), "new row gets the default policy");
    }

    #[test]
    fn bound_policy_changes_forward_fill() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut t = compile(&m).unwrap();
        t.bind(0, HoleBinding::Column(UpdatePolicy::Const("TBD".into())))
            .unwrap();
        let e = Engine::new(t, Environment::new()).unwrap();
        let src =
            Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let tgt = e.forward(&src, None).unwrap();
        assert!(tgt.contains("Manager", &tuple!["Alice", "TBD"]));
    }

    #[test]
    fn env_policy_through_engine() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut t = compile(&m).unwrap();
        t.bind(
            0,
            HoleBinding::Column(UpdatePolicy::Env(Name::new("default_mgr"))),
        )
        .unwrap();
        let mut env = Environment::new();
        env.insert(Name::new("default_mgr"), Value::str("TheBoss"));
        let e = Engine::new(t, env).unwrap();
        let src =
            Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let tgt = e.forward(&src, None).unwrap();
        assert!(tgt.contains("Manager", &tuple!["Alice", "TheBoss"]));
    }

    #[test]
    fn symmetric_wrapper_round_trips() {
        let (m, e) = engine_for(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        let sym = e.sym();
        let src =
            Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let (tgt, c1) = sym.put_r(&src, &sym.missing());
        assert_eq!(tgt.fact_count(), 1);
        // Push the target back unchanged: source unchanged (PutRL).
        let (src2, c2) = sym.put_l(&tgt, &c1);
        assert_eq!(src2, src);
        let (tgt2, _) = sym.put_r(&src2, &c2);
        assert_eq!(tgt2, tgt);
    }

    #[test]
    fn backward_through_join_and_union() {
        let (m, e) = engine_for(
            r#"
            source Student(id, name);
            source Assgn(name, course);
            target Enrollment(id, course);
            Student(x, y) & Assgn(y, w) -> Enrollment(x, w);
            "#,
        );
        let src = Instance::with_facts(
            m.source().clone(),
            vec![
                ("Student", vec![tuple![1i64, "Alice"], tuple![2i64, "Bob"]]),
                ("Assgn", vec![tuple!["Alice", "DB"], tuple!["Bob", "PL"]]),
            ],
        )
        .unwrap();
        let tgt = e.forward(&src, None).unwrap();
        assert!(tgt.contains("Enrollment", &tuple![1i64, "DB"]));
        assert!(tgt.contains("Enrollment", &tuple![2i64, "PL"]));
        // Delete Bob's enrollment: default join policy removes both
        // component rows.
        let mut tgt2 = tgt.clone();
        tgt2.remove("Enrollment", &tuple![2i64, "PL"]).unwrap();
        let src2 = e.backward(&tgt2, &src).unwrap();
        assert!(!src2.contains("Student", &tuple![2i64, "Bob"]));
        assert!(!src2.contains("Assgn", &tuple!["Bob", "PL"]));
        assert!(src2.contains("Student", &tuple![1i64, "Alice"]));
    }

    /// Target keys declared in the mapping are enforced by the engine:
    /// a stale null-managed row merges with the manually assigned one
    /// on a forward update, and conflicting constants are a loud error.
    #[test]
    fn forward_enforces_target_keys() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            key Manager(emp);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let e = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        let src =
            Instance::with_facts(m.source().clone(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        // A target that drifted into a key violation: Alice has a null
        // manager row AND a manually entered one.
        let mut prev = Instance::empty(m.target().clone());
        prev.insert(
            "Manager",
            Tuple::new(vec![Value::str("Alice"), Value::null(0)]),
        )
        .unwrap();
        prev.insert("Manager", tuple!["Alice", "Ted"]).unwrap();
        let tgt = e.forward(&src, Some(&prev)).unwrap();
        let rel = tgt.relation("Manager").unwrap();
        assert_eq!(rel.len(), 1, "key merged the null row into Ted's:\n{tgt}");
        assert!(rel.contains(&tuple!["Alice", "Ted"]));
        assert!(m.is_solution(&src, &tgt));

        // Conflicting constants: no solution, loud failure.
        let m2 = parse_mapping(
            r#"
            source B1(name, boss);
            source B2(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            B1(x, b) -> Manager(x, b);
            B2(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let e2 = Engine::new(compile(&m2).unwrap(), Environment::new()).unwrap();
        let mut src2 = Instance::empty(m2.source().clone());
        src2.insert("B1", tuple!["Alice", "Ted"]).unwrap();
        src2.insert("B2", tuple!["Alice", "Bob"]).unwrap();
        let err = e2.forward(&src2, None).unwrap_err();
        assert!(matches!(err, crate::error::CoreError::Chase(_)));
    }

    #[test]
    fn show_plan_mentions_everything() {
        let (_, e) = engine_for(
            r#"
            source Person1(id, name, age, city);
            target Person2(id, name, salary, zipcode);
            Person1(i, n, a, c) -> Person2(i, n, s, z);
            "#,
        );
        let plan = e.show_plan();
        assert!(plan.contains("== mapping plan =="), "{plan}");
        assert!(plan.contains("target Person2"), "{plan}");
        assert!(plan.contains("source lens:"), "{plan}");
        assert!(plan.contains("target lens:"), "{plan}");
        assert!(plan.contains("== policy questions =="), "{plan}");
        assert!(plan.contains("Person2.salary"), "{plan}");
        assert!(plan.contains("== fidelity =="), "{plan}");
        assert!(plan.contains("[exact]"), "{plan}");
    }

    #[test]
    fn backward_create_from_scratch() {
        // No previous source: backward against the empty instance uses
        // the policy fills.
        let (m, e) = engine_for(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        );
        let tgt = Instance::with_facts(
            m.target().clone(),
            vec![("Manager", vec![tuple!["Zed", "Ted"]])],
        )
        .unwrap();
        let src = e
            .backward(&tgt, &Instance::empty(m.source().clone()))
            .unwrap();
        assert!(src.contains("Emp", &tuple!["Zed"]));
        let _ = Tuple::new(vec![]);
    }
}
