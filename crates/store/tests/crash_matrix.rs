//! The crash matrix — the store's acceptance property.
//!
//! For every store IO fail-point site, every fault action (typed
//! error, torn short write at several byte cuts, panic), and every
//! hit ordinal until the fault stops firing: run a store-backed
//! chase into the fault, reopen the directory as a fresh process
//! would, and require that
//!
//! 1. recovery lands **bit-identically** on some committed round
//!    boundary of the uninterrupted run (same instance, same round,
//!    same null-generator position) — or on "nothing committed yet";
//! 2. `fsck` names every torn tail, and `repair` truncates it so a
//!    second fsck is clean;
//! 3. resuming from the recovered boundary finishes with the exact
//!    final instance of the uninterrupted run — same tuples, same
//!    null allocation order.
//!
//! Compiled only with `--features failpoints`.
#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use dex_chase::{
    exchange_checkpointed, resume_exchange, ChaseOptions, Checkpoint, CheckpointSink, ResumeState,
};
use dex_logic::{parse_mapping, Mapping};
use dex_relational::fail::{arm, clear, exclusive, FailAction, STORE_SITES};
use dex_relational::{tuple, Governor, Instance};
use dex_store::{fsck, ChaseState, Store, StoreMode, StoreOptions, StoreSink};

const MAPPING: &str = r#"
    source E1(name);
    source E2(name);
    target Manager(emp, mgr);
    target Chain(mgr, top);
    target Peer(mgr);
    key Manager(emp);
    E1(x) -> Manager(x, y);
    E2(x) -> Manager(x, y);
    Manager(x, y) -> Chain(y, z);
    Chain(y, z) -> Peer(z);
"#;

fn fixture() -> (Mapping, Instance) {
    let m = parse_mapping(MAPPING).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![
            ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
            ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
        ],
    )
    .unwrap();
    (m, src)
}

fn opts() -> StoreOptions {
    StoreOptions {
        // Snapshot every other round so the matrix exercises WAL
        // appends, periodic snapshots, and WAL truncation.
        snapshot_every: 2,
        sync: false,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Records every committed boundary of the uninterrupted run.
#[derive(Default)]
struct Recorder {
    boundaries: Vec<ChaseState>,
}

impl CheckpointSink for Recorder {
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
        self.boundaries.push(ChaseState {
            instance: cp.target.clone(),
            round: cp.round,
            next_null: cp.next_null,
            complete: cp.complete,
        });
        Ok(())
    }
}

/// The recovered state must be bit-identical to one of the committed
/// boundaries: same round, same instance, same next-null position.
fn assert_is_a_boundary(state: &ChaseState, boundaries: &[ChaseState], ctx: &str) {
    let hit = boundaries
        .iter()
        .find(|b| b.round == state.round)
        .unwrap_or_else(|| {
            panic!(
                "{ctx}: recovered round {} is not a committed boundary",
                state.round
            )
        });
    assert_eq!(
        state.instance, hit.instance,
        "{ctx}: instance differs at round {}",
        state.round
    );
    assert_eq!(
        state.next_null, hit.next_null,
        "{ctx}: null generator differs"
    );
}

#[test]
fn fault_at_every_site_action_and_ordinal_recovers_to_a_committed_round() {
    let _gate = exclusive();
    clear();

    let (m, src) = fixture();
    // Ground truth: every committed boundary and the final instance.
    let mut rec = Recorder::default();
    let truth = exchange_checkpointed(
        &m,
        &src,
        ChaseOptions::default(),
        &Governor::unlimited(),
        &mut rec,
    )
    .unwrap()
    .into_result()
    .unwrap();
    assert!(
        rec.boundaries.len() >= 3,
        "fixture must commit several rounds"
    );

    let actions = [
        FailAction::Error,
        FailAction::ShortWrite(0),
        FailAction::ShortWrite(3),
        FailAction::ShortWrite(11),
        FailAction::Panic,
    ];

    let mut faulted_runs = 0usize;
    for &site in STORE_SITES {
        for action in actions {
            // Sweep the hit ordinal until the run stops faulting —
            // that covers every boundary the site participates in.
            for nth in 1..=16u64 {
                let dir = tempdir(&format!("{}_{action:?}_{nth}", site.replace('.', "_")));
                clear();
                arm(site, action, nth);

                let (m, src) = fixture();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut store =
                        Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts()).unwrap();
                    let mut sink = StoreSink::new(&mut store);
                    exchange_checkpointed(
                        &m,
                        &src,
                        ChaseOptions::default(),
                        &Governor::unlimited(),
                        &mut sink,
                    )
                }));
                clear();

                let ctx = format!("{site}/{action:?}/hit {nth}");
                let faulted = match outcome {
                    // Panic action unwound mid-checkpoint.
                    Err(_) => true,
                    // Error/ShortWrite surface as a typed sink failure.
                    Ok(Err(dex_chase::ChaseError::Checkpoint(msg))) => {
                        assert!(msg.contains(site), "{ctx}: error names the site: {msg}");
                        true
                    }
                    Ok(Err(e)) => panic!("{ctx}: unexpected error {e}"),
                    // The ordinal exceeded the site's hits: clean run.
                    Ok(Ok(out)) => {
                        let res = out.into_result().unwrap();
                        assert_eq!(res.target, truth.target, "{ctx}: unfaulted run must agree");
                        false
                    }
                };
                if !faulted {
                    std::fs::remove_dir_all(&dir).ok();
                    break; // higher ordinals can't fire either
                }
                faulted_runs += 1;

                // ---- A crashed process restarts ----
                let report = fsck::fsck(&dir).unwrap();
                if report.wal_torn {
                    // Torn tails are repairable; everything else must
                    // already verify.
                    let actions = fsck::repair(&dir).unwrap();
                    assert!(!actions.is_empty(), "{ctx}: torn WAL repairs");
                    assert!(
                        !fsck::fsck(&dir).unwrap().wal_torn,
                        "{ctx}: repair clears tear"
                    );
                }

                let mut store = Store::open(&dir, opts()).unwrap();
                let recovered = store.recover().unwrap();
                let final_target = match recovered {
                    None => {
                        // Crash before the first checkpoint: restart
                        // the whole exchange from the durable source.
                        let src = store.source().unwrap();
                        assert_eq!(src, fixture().1, "{ctx}: source survives");
                        let mut sink = StoreSink::new(&mut store);
                        exchange_checkpointed(
                            &m,
                            &src,
                            ChaseOptions::default(),
                            &Governor::unlimited(),
                            &mut sink,
                        )
                        .unwrap()
                        .into_result()
                        .unwrap()
                        .target
                    }
                    Some(r) => {
                        assert_is_a_boundary(&r.state, &rec.boundaries, &ctx);
                        if r.state.complete {
                            r.state.instance
                        } else {
                            store.prepare_resume(&r.state).unwrap();
                            let mut sink = StoreSink::new(&mut store);
                            resume_exchange(
                                &m,
                                ResumeState {
                                    target: r.state.instance.clone(),
                                    next_null: r.state.next_null,
                                    rounds: r.state.round,
                                },
                                ChaseOptions::default(),
                                &Governor::unlimited(),
                                Some(&mut sink),
                            )
                            .unwrap()
                            .into_result()
                            .unwrap()
                            .target
                        }
                    }
                };
                assert_eq!(
                    final_target, truth.target,
                    "{ctx}: recovery + resume ≡ uninterrupted (same tuples, same nulls)"
                );

                // The store now holds the finished state durably.
                let done = Store::open(&dir, opts())
                    .unwrap()
                    .recover()
                    .unwrap()
                    .unwrap();
                assert!(done.state.complete, "{ctx}: final checkpoint durable");
                assert_eq!(done.state.instance, truth.target);
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
    assert!(
        faulted_runs >= STORE_SITES.len() * actions.len(),
        "matrix must actually inject faults (got {faulted_runs})"
    );
}

/// A torn WAL append must never resurrect: after recovery + resume,
/// re-running recovery from the finished store sees no tear.
#[test]
fn short_write_lengths_cover_the_record_framing() {
    let _gate = exclusive();
    clear();
    // Cut inside the length field (2), inside the checksum (6), and
    // inside the payload (20): all three must scan as torn tails.
    for cut in [2u64, 6, 20] {
        let dir = tempdir(&format!("framing_{cut}"));
        clear();
        // Hit 2 skips the round-0 snapshot path; the first WAL append
        // is for round 1.
        arm("store.wal_append", FailAction::ShortWrite(cut), 1);
        let (m, src) = fixture();
        let mut store = Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts()).unwrap();
        let mut sink = StoreSink::new(&mut store);
        let err = exchange_checkpointed(
            &m,
            &src,
            ChaseOptions::default(),
            &Governor::unlimited(),
            &mut sink,
        )
        .expect_err("short write must abort the run");
        assert!(matches!(err, dex_chase::ChaseError::Checkpoint(_)));
        clear();

        let report = fsck::fsck(&dir).unwrap();
        assert!(report.wal_torn, "cut at {cut} bytes is a torn tail");
        assert_eq!(report.wal_records, 0, "no complete record survives");
        fsck::repair(&dir).unwrap();
        let clean = fsck::fsck(&dir).unwrap();
        assert!(
            !clean.wal_torn && clean.is_clean(),
            "repaired store is clean"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
