//! Fuzzing the on-disk formats: arbitrary, truncated, and bit-flipped
//! bytes fed to every decoder and to `open`/`recover`/`fsck` must
//! produce typed [`StoreError`]s (or valid data), never a panic and
//! never an implausible allocation. The crate itself denies
//! `unwrap`/`expect`; these properties pin the behavior down from the
//! outside.

use std::path::PathBuf;

use dex_chase::exchange_checkpointed;
use dex_logic::parse_mapping;
use dex_relational::{tuple, Governor, Instance};
use dex_store::{codec, fsck, wal, Store, StoreMode, StoreOptions, StoreSink};
use proptest::prelude::*;

fn tempdir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Build one real store on disk and return its directory.
fn build_store(tag: u64) -> PathBuf {
    let dir = tempdir(tag);
    let text = r#"
        source R(a);
        target S(a, b);
        target T(b);
        R(x) -> S(x, y);
        S(x, y) -> T(y);
    "#;
    let m = parse_mapping(text).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("R", vec![tuple!["u"], tuple!["v"]])],
    )
    .unwrap();
    let mut store = Store::create(
        &dir,
        StoreMode::Chase,
        text,
        &src,
        StoreOptions {
            snapshot_every: 64, // keep rounds in the WAL, not snapshots
            sync: false,
        },
    )
    .unwrap();
    let mut sink = StoreSink::new(&mut store);
    exchange_checkpointed(
        &m,
        &src,
        Default::default(),
        &Governor::unlimited(),
        &mut sink,
    )
    .unwrap();
    dir
}

/// Every file a store contains, as (name, bytes).
fn store_files(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        out.push((
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        ));
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes through the instance decoder: typed error or a
    /// valid instance, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_codec(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode_instance(&bytes, "fuzz");
    }

    /// Arbitrary bytes through the WAL scanner.
    #[test]
    fn arbitrary_bytes_never_panic_the_wal_scan(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wal::scan(&bytes, "fuzz");
    }

    /// A real store with one file bit-flipped: `open`, `recover`, and
    /// `fsck` return (typed results), never panic — and a flip that
    /// lands in file content is *detected* somewhere: fsck reports a
    /// problem, recovery errors, or the WAL scan shortens.
    #[test]
    fn bit_flipped_store_files_are_detected_or_harmless(
        seed in 0u64..1 << 32,
    ) {
        let dir = build_store(seed % 7);
        let files = store_files(&dir);
        // Pick a file and a bit deterministically from the seed.
        let (name, bytes) = &files[(seed as usize) % files.len()];
        prop_assert!(!bytes.is_empty(), "store files always carry a header");
        let bit = (seed as usize / files.len()) % (bytes.len() * 8);
        let mut mutated = bytes.clone();
        mutated[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(dir.join(name), &mutated).unwrap();

        // None of these may panic.
        let opened = Store::open(&dir, StoreOptions::default());
        let recovered = opened.as_ref().ok().map(|s| s.recover());
        let report = fsck::fsck(&dir);

        // The flip must be *noticed* unless it landed in the WAL's
        // torn-tail region semantics (then the scan shortens, which
        // fsck reports as a tear) — every byte is under a checksum.
        let noticed = opened.is_err()
            || matches!(&recovered, Some(Err(_)))
            || report.is_err()
            || matches!(&report, Ok(r) if !r.is_clean() || r.wal_torn || r.stale_records > 0);
        prop_assert!(noticed, "flip at bit {bit} of {name} went unnoticed");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating any store file at any point never panics recovery.
    #[test]
    fn truncated_store_files_never_panic(seed in 0u64..1 << 32) {
        let dir = build_store(7 + seed % 7);
        let files = store_files(&dir);
        let (name, bytes) = &files[(seed as usize) % files.len()];
        let cut = (seed as usize / files.len()) % (bytes.len() + 1);
        std::fs::write(dir.join(name), &bytes[..cut]).unwrap();

        if let Ok(s) = Store::open(&dir, StoreOptions::default()) {
            let _ = s.recover();
            let _ = s.source();
        }
        if fsck::fsck(&dir).is_ok() {
            // Repair must also hold up against truncated inputs.
            let _ = fsck::repair(&dir);
            let _ = fsck::fsck(&dir);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Garbage files posing as a store: `open` yields `NotAStore` or
    /// `Corrupt`, `fsck` never panics.
    #[test]
    fn garbage_directories_yield_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let dir = tempdir(99);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("store.meta"), &bytes).unwrap();
        std::fs::write(dir.join("wal.log"), &bytes).unwrap();
        match Store::open(&dir, StoreOptions::default()) {
            Ok(s) => {
                let _ = s.recover();
            }
            Err(e) => {
                // Typed, displayable error.
                let _ = e.to_string();
            }
        }
        let _ = fsck::fsck(&dir);
        let _ = fsck::repair(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}
