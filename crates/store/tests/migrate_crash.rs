//! The migration crash matrix — live migration's acceptance property.
//!
//! For every migration fail-point site (`migrate.plan`,
//! `migrate.round_commit`, `migrate.finalize`) *and* every nested
//! store IO site (the staging chase fires `store.*` too), every fault
//! action (typed error, torn short writes at several byte cuts,
//! panic), and every hit ordinal until the fault stops firing: run a
//! live migration into the fault, then require that
//!
//! 1. while no commit marker verifies, the **old store's bytes are
//!    untouched** — bit-identical to before the migration began — and
//!    `fsck` reports a *clean* store with a "resumable migration in
//!    progress" note, never spurious corruption;
//! 2. whatever staging chase state is durable is **bit-identical to a
//!    committed boundary** of the uninterrupted migration (same
//!    instance, same round, same null-generator position);
//! 3. resuming — `Migration::resume` when the plan is durable, a
//!    fresh `begin` when the crash tore the very first write,
//!    `roll_forward` once the marker verifies — completes to the
//!    exact store the uninterrupted migration produces: same mapping
//!    text, same tuples, same null allocation order.
//!
//! Compiled only with `--features failpoints`.
#![cfg(feature = "failpoints")]

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use dex_chase::{exchange_checkpointed, ChaseOptions, Checkpoint, CheckpointSink};
use dex_logic::parse_mapping;
use dex_relational::fail::{arm, clear, exclusive, FailAction, MIGRATE_SITES, STORE_SITES};
use dex_relational::{tuple, Governor, Instance, RelSchema, Schema};
use dex_store::migrate::{self, MigrateStatus};
use dex_store::{
    fsck, ChaseState, MigrateError, MigratePlan, MigrateRun, Migration, Store, StoreError,
    StoreMode, StoreOptions,
};

const OLD_SCHEMA: &str = "target T(a, b);\n";
const NEW_SCHEMA: &str = "target T2(a, b, c);\ntarget Aud(a);\ntarget Aud2(a);\n";
// Several target-tgd rounds so `migrate.round_commit` and the nested
// `store.*` sites each fire more than once.
const MIGRATION: &str = r#"
    source v0__T(a, b);
    target T2(a, b, c);
    target Aud(a);
    target Aud2(a);
    v0__T(a, b) -> T2(a, b, c);
    T2(a, b, c) -> Aud(a);
    Aud(a) -> Aud2(a);
"#;

fn plan() -> MigratePlan {
    MigratePlan {
        schema_text: NEW_SCHEMA.to_string(),
        mapping_text: MIGRATION.to_string(),
    }
}

fn old_instance() -> Instance {
    let schema =
        Schema::with_relations(vec![RelSchema::untyped("T", vec!["a", "b"]).unwrap()]).unwrap();
    Instance::with_facts(
        schema,
        vec![("T", vec![tuple!["x", 1i64], tuple!["y", 2i64]])],
    )
    .unwrap()
}

/// The old instance renamed into the migration's source vocabulary —
/// what `dexcli migrate` computes via `dex_evolution::prefix_instance`.
fn prefixed_source() -> Instance {
    let schema =
        Schema::with_relations(vec![RelSchema::untyped("v0__T", vec!["a", "b"]).unwrap()]).unwrap();
    Instance::with_facts(
        schema,
        vec![("v0__T", vec![tuple!["x", 1i64], tuple!["y", 2i64]])],
    )
    .unwrap()
}

fn opts() -> StoreOptions {
    StoreOptions {
        snapshot_every: 2,
        sync: false,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_migcrash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Build a live store holding a completed exchange over the old
/// schema: the thing a migration migrates.
fn build_old_store(dir: &Path) {
    let inst = old_instance();
    let mut store = Store::create(dir, StoreMode::Exchange, OLD_SCHEMA, &inst, opts()).unwrap();
    let mut sink = dex_store::StoreSink::new(&mut store);
    sink.on_checkpoint(Checkpoint {
        round: 0,
        next_null: 0,
        target: &inst,
        delta: None,
        complete: true,
    })
    .unwrap();
}

/// Bytes of every live (top-level) store file, keyed by name.
fn live_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    ["store.meta", "source.bin", "snapshot.bin", "wal.log"]
        .iter()
        .filter_map(|f| std::fs::read(dir.join(f)).ok().map(|b| (f.to_string(), b)))
        .collect()
}

#[derive(Default)]
struct Recorder {
    boundaries: Vec<ChaseState>,
}

impl CheckpointSink for Recorder {
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
        self.boundaries.push(ChaseState {
            instance: cp.target.clone(),
            round: cp.round,
            next_null: cp.next_null,
            complete: cp.complete,
        });
        Ok(())
    }
}

fn assert_is_a_boundary(state: &ChaseState, boundaries: &[ChaseState], ctx: &str) {
    let hit = boundaries
        .iter()
        .find(|b| b.round == state.round)
        .unwrap_or_else(|| {
            panic!(
                "{ctx}: recovered round {} is not a committed boundary",
                state.round
            )
        });
    assert_eq!(
        state.instance, hit.instance,
        "{ctx}: staged instance differs at round {}",
        state.round
    );
    assert_eq!(
        state.next_null, hit.next_null,
        "{ctx}: null generator differs"
    );
}

/// Drive the migration front to back; the fault makes this return an
/// error (or unwind) somewhere along the way.
fn drive(dir: &Path) -> Result<(), MigrateError> {
    let mut mig = Migration::begin(dir, &plan(), &prefixed_source(), opts())?;
    match mig.run(ChaseOptions::default(), &Governor::unlimited())? {
        MigrateRun::Done(_) => mig.finalize(),
        MigrateRun::Suspended(r) => panic!("unlimited run suspended: {r:?}"),
    }
}

/// Recover as a restarted process would and finish the migration.
fn recover_and_finish(dir: &Path, ctx: &str, boundaries: &[ChaseState]) {
    match migrate::status(dir).unwrap() {
        MigrateStatus::Committed => {
            assert!(migrate::roll_forward(dir, false).unwrap(), "{ctx}");
        }
        _ => {
            // Whatever staging chase state survived must be a real
            // committed boundary of the uninterrupted run.
            if let Ok(mig) = Migration::resume(dir, opts()) {
                if let Some(r) = mig.recover().unwrap() {
                    assert_is_a_boundary(&r.state, boundaries, ctx);
                }
            }
            let mut mig = match Migration::resume(dir, opts()) {
                Ok(m) => m,
                // The crash tore plan.bin before any chase data became
                // durable: start the migration over.
                Err(MigrateError::Plan { .. }) => {
                    Migration::begin(dir, &plan(), &prefixed_source(), opts()).unwrap()
                }
                Err(e) => panic!("{ctx}: resume failed: {e}"),
            };
            match mig
                .run(ChaseOptions::default(), &Governor::unlimited())
                .unwrap()
            {
                MigrateRun::Done(_) => mig.finalize().unwrap(),
                MigrateRun::Suspended(r) => panic!("{ctx}: unlimited resume suspended: {r:?}"),
            }
        }
    }
}

/// Open the migrated store and pin the full outcome.
fn assert_migrated(dir: &Path, truth: &ChaseState, ctx: &str) {
    assert_eq!(
        migrate::status(dir).unwrap(),
        MigrateStatus::None,
        "{ctx}: staging cleaned up"
    );
    let store = Store::open(dir, opts()).unwrap();
    assert_eq!(
        store.mapping_text(),
        NEW_SCHEMA,
        "{ctx}: meta is the new schema"
    );
    assert!(
        store.source().unwrap().facts().next().is_none(),
        "{ctx}: migrated store's source is empty"
    );
    let rec = store.recover().unwrap().unwrap();
    assert!(rec.state.complete, "{ctx}: snapshot marks a finished chase");
    assert_eq!(
        rec.state.instance, truth.instance,
        "{ctx}: migrated instance ≡ uninterrupted (same tuples, same nulls)"
    );
    let report = fsck::fsck(dir).unwrap();
    assert!(
        report.is_clean(),
        "{ctx}: migrated store fscks clean: {report}"
    );
}

#[test]
fn fault_at_every_site_action_and_ordinal_leaves_old_store_intact_and_resumes() {
    let _gate = exclusive();
    clear();

    // Ground truth: the uninterrupted migration chase's boundaries and
    // final state (same mapping, same source, same options as the
    // staged runs — determinism makes them comparable).
    let mapping = parse_mapping(MIGRATION).unwrap();
    let mut rec = Recorder::default();
    exchange_checkpointed(
        &mapping,
        &prefixed_source(),
        ChaseOptions::default(),
        &Governor::unlimited(),
        &mut rec,
    )
    .unwrap()
    .into_result()
    .unwrap();
    assert!(
        rec.boundaries.len() >= 3,
        "fixture must commit several rounds"
    );
    let truth = rec.boundaries.last().unwrap().clone();
    assert!(truth.complete);

    let actions = [
        FailAction::Error,
        FailAction::ShortWrite(0),
        FailAction::ShortWrite(3),
        FailAction::ShortWrite(11),
        FailAction::Panic,
    ];

    let sites: Vec<&str> = MIGRATE_SITES.iter().chain(STORE_SITES).copied().collect();
    let mut faulted_runs = 0usize;
    for &site in &sites {
        for action in actions {
            for nth in 1..=16u64 {
                let dir = tempdir(&format!("{}_{action:?}_{nth}", site.replace('.', "_")));
                build_old_store(&dir);
                let before = live_bytes(&dir);

                clear();
                arm(site, action, nth);
                let outcome = catch_unwind(AssertUnwindSafe(|| drive(&dir)));
                clear();

                let ctx = format!("{site}/{action:?}/hit {nth}");
                let faulted = match outcome {
                    Err(_) => true, // injected panic unwound
                    Ok(Err(e)) => {
                        let msg = e.to_string();
                        assert!(
                            msg.contains(site) || msg.contains("injected"),
                            "{ctx}: error names the injection: {msg}"
                        );
                        true
                    }
                    Ok(Ok(())) => {
                        // Ordinal exceeded the site's hits: clean run.
                        assert_migrated(&dir, &truth, &ctx);
                        false
                    }
                };
                if !faulted {
                    std::fs::remove_dir_all(&dir).ok();
                    break; // higher ordinals can't fire either
                }
                faulted_runs += 1;

                // ---- A crashed process restarts ----
                let status = migrate::status(&dir).unwrap();
                if status != MigrateStatus::Committed {
                    assert_eq!(
                        live_bytes(&dir),
                        before,
                        "{ctx}: old store bytes untouched before commit"
                    );
                    let report = fsck::fsck(&dir).unwrap();
                    assert!(
                        report.is_clean(),
                        "{ctx}: in-progress migration is not corruption: {report}"
                    );
                    if matches!(status, MigrateStatus::InProgress { .. }) {
                        assert!(
                            report
                                .notes
                                .iter()
                                .any(|n| n.contains("migration in progress")),
                            "{ctx}: fsck notes the resumable migration"
                        );
                    }
                } else {
                    let report = fsck::fsck(&dir).unwrap();
                    assert!(
                        report
                            .problems
                            .iter()
                            .any(|p| p.contains("committed migration")),
                        "{ctx}: fsck flags the pending roll-forward: {report}"
                    );
                }

                recover_and_finish(&dir, &ctx, &rec.boundaries);
                assert_migrated(&dir, &truth, &ctx);
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
    assert!(
        faulted_runs >= sites.len() * actions.len(),
        "matrix must actually inject faults (got {faulted_runs})"
    );
}

/// `fsck --repair` semantics: repairing a store with a committed
/// migration completes the roll-forward; repairing one with an
/// in-progress migration leaves the resumable staging alone.
#[test]
fn repair_rolls_forward_committed_but_preserves_in_progress() {
    let _gate = exclusive();
    clear();

    // In progress: block the commit marker so the migration stays
    // uncommitted, then repair.
    let dir = tempdir("repair_inprogress");
    build_old_store(&dir);
    let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
    let MigrateRun::Done(_) = mig
        .run(ChaseOptions::default(), &Governor::unlimited())
        .unwrap()
    else {
        panic!("unlimited run must complete");
    };
    arm("migrate.finalize", FailAction::Error, 1);
    assert!(mig.commit().is_err());
    clear();
    let actions = fsck::repair(&dir).unwrap();
    assert!(actions.is_empty(), "nothing to repair: {actions:?}");
    assert!(matches!(
        migrate::status(&dir).unwrap(),
        MigrateStatus::InProgress {
            chase_complete: true,
            ..
        }
    ));

    // Committed: the marker verifies; repair finishes the job.
    mig.commit().unwrap();
    let actions = fsck::repair(&dir).unwrap();
    assert!(
        actions.iter().any(|a| a.contains("roll-forward")),
        "repair completes the roll-forward: {actions:?}"
    );
    assert_eq!(migrate::status(&dir).unwrap(), MigrateStatus::None);
    assert_eq!(
        Store::open(&dir, opts()).unwrap().mapping_text(),
        NEW_SCHEMA
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn `COMMIT` marker (short write) is *not* a commit: the old
/// store stays authoritative and the next finalize rewrites it.
#[test]
fn torn_commit_marker_is_no_commit() {
    let _gate = exclusive();
    clear();
    let dir = tempdir("torn_commit");
    build_old_store(&dir);
    let before = live_bytes(&dir);
    let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
    mig.run(ChaseOptions::default(), &Governor::unlimited())
        .unwrap();
    arm("migrate.finalize", FailAction::ShortWrite(13), 1);
    let err = mig.commit().expect_err("short write must surface");
    assert!(matches!(
        err,
        MigrateError::Store(StoreError::Injected { .. })
    ));
    clear();
    assert!(
        dir.join("migrate").join("COMMIT").exists(),
        "a torn marker file exists"
    );
    assert_ne!(
        migrate::status(&dir).unwrap(),
        MigrateStatus::Committed,
        "a torn marker does not verify"
    );
    assert_eq!(live_bytes(&dir), before, "old store untouched");
    assert!(!migrate::roll_forward(&dir, false).unwrap());
    mig.finalize().unwrap();
    assert_eq!(
        Store::open(&dir, opts()).unwrap().mapping_text(),
        NEW_SCHEMA
    );
    std::fs::remove_dir_all(&dir).ok();
}
