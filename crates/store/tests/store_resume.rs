//! End-to-end persistence: a store-backed chase survives a restart.
//!
//! Pinned properties:
//!
//! * a completed store-backed run recovers to exactly the in-memory
//!   result (same tuples, same null ids);
//! * a budget-exhausted run resumes from disk and finishes with the
//!   *identical* final instance an uninterrupted run produces —
//!   including total-round accounting under a round cap;
//! * recovery is a pure read: recovering twice gives the same state;
//! * snapshot cadence is invisible: every `snapshot_every` yields the
//!   same recovered states.

use std::path::PathBuf;

use dex_chase::{
    exchange, exchange_checkpointed, resume_exchange, ChaseOptions, ChaseOutcome, ResumeState,
};
use dex_logic::{parse_mapping, Mapping};
use dex_relational::{tuple, Budget, Governor, Instance};
use dex_store::{fsck, ChaseState, Store, StoreMode, StoreOptions};

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_store_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(snapshot_every: u64) -> StoreOptions {
    StoreOptions {
        snapshot_every,
        // Tests hammer tiny files; skipping fsync keeps them fast
        // without changing any code path being tested.
        sync: false,
    }
}

/// Chained tgds with a key egd: phase 2 runs several rounds and (under
/// the oblivious variant) at least one egd-merge round.
const MAPPING: &str = r#"
    source E1(name);
    source E2(name);
    target Manager(emp, mgr);
    target Chain(mgr, top);
    target Peer(mgr);
    key Manager(emp);
    E1(x) -> Manager(x, y);
    E2(x) -> Manager(x, y);
    Manager(x, y) -> Chain(y, z);
    Chain(y, z) -> Peer(z);
"#;

fn fixture() -> (Mapping, Instance) {
    let m = parse_mapping(MAPPING).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![
            ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
            ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
        ],
    )
    .unwrap();
    (m, src)
}

/// Non-terminating without a cap: each round invents a fresh null
/// (`S` ping-pongs into itself).
const PING_PONG: &str = r#"
    source R(a);
    target S(a, b);
    R(x) -> S(x, y);
    S(x, y) -> S(y, z);
"#;

fn run_to_store(dir: &std::path::Path, snapshot_every: u64, gov: &Governor) -> ChaseOutcome {
    let (m, src) = fixture();
    let mut store =
        Store::create(dir, StoreMode::Chase, MAPPING, &src, opts(snapshot_every)).unwrap();
    let mut sink = dex_store::StoreSink::new(&mut store);
    exchange_checkpointed(&m, &src, ChaseOptions::default(), gov, &mut sink).unwrap()
}

#[test]
fn completed_run_recovers_bit_identically() {
    let dir = tempdir("complete");
    let (m, src) = fixture();
    let plain = exchange(&m, &src).unwrap();

    let out = run_to_store(&dir, 2, &Governor::unlimited());
    let ChaseOutcome::Complete(res) = out else {
        panic!("unlimited run must complete")
    };
    assert_eq!(res.target, plain.target);

    // A different process opens the store.
    let store = Store::open(&dir, opts(2)).unwrap();
    assert_eq!(store.mode(), StoreMode::Chase);
    assert_eq!(store.mapping_text(), MAPPING);
    assert_eq!(store.source().unwrap(), src);

    let rec = store.recover().unwrap().expect("snapshot exists");
    assert!(rec.state.complete);
    assert_eq!(rec.state.instance, plain.target, "recovered ≡ in-memory");
    assert!(fsck::fsck(&dir).unwrap().is_clean());

    // Recovery does not mutate the store.
    let again = store.recover().unwrap().unwrap();
    assert_eq!(again.state, rec.state);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_run_resumes_to_the_uninterrupted_result() {
    for snapshot_every in [1, 2, 64] {
        let dir = tempdir(&format!("resume_{snapshot_every}"));
        let (m, src) = fixture();
        let uninterrupted = exchange(&m, &src).unwrap();

        // Trip the governor mid-phase-2.
        let gov = Governor::new(Budget::unlimited().with_max_rounds(1));
        let out = run_to_store(&dir, snapshot_every, &gov);
        let ChaseOutcome::Exhausted(ex) = out else {
            panic!("round cap must trip")
        };
        assert!(ex.report.rounds_committed >= 1);

        // Restart: recover the last committed round and finish.
        let mut store = Store::open(&dir, opts(snapshot_every)).unwrap();
        let rec = store.recover().unwrap().expect("checkpointed");
        assert!(!rec.state.complete);
        store.prepare_resume(&rec.state).unwrap();
        let mut sink = dex_store::StoreSink::new(&mut store);
        let resumed = resume_exchange(
            &m,
            ResumeState {
                target: rec.state.instance.clone(),
                next_null: rec.state.next_null,
                rounds: rec.state.round,
            },
            ChaseOptions::default(),
            &Governor::unlimited(),
            Some(&mut sink),
        )
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(
            resumed.target, uninterrupted.target,
            "resume (snapshot_every={snapshot_every}) ≡ uninterrupted: same tuples, same nulls"
        );

        // And the finished state is durable in turn.
        let rec = store.recover().unwrap().unwrap();
        assert!(rec.state.complete);
        assert_eq!(rec.state.instance, uninterrupted.target);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resumed_round_caps_count_total_rounds_across_restarts() {
    let dir = tempdir("cap_total");
    let m = parse_mapping(PING_PONG).unwrap();
    let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["u"]])]).unwrap();

    // Uninterrupted under a total cap of 6 rounds.
    let gov = Governor::new(Budget::unlimited().with_max_rounds(6));
    let ChaseOutcome::Exhausted(whole) =
        dex_chase::exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap()
    else {
        panic!("ping-pong must exhaust")
    };

    // Same cap, split across a restart at round 3.
    let mut store = Store::create(&dir, StoreMode::Chase, PING_PONG, &src, opts(2)).unwrap();
    let gov1 = Governor::new(Budget::unlimited().with_max_rounds(3));
    let mut sink = dex_store::StoreSink::new(&mut store);
    let ChaseOutcome::Exhausted(_) =
        exchange_checkpointed(&m, &src, ChaseOptions::default(), &gov1, &mut sink).unwrap()
    else {
        panic!("first leg must exhaust")
    };

    let rec = store.recover().unwrap().unwrap();
    store.prepare_resume(&rec.state).unwrap();
    let gov2 = Governor::new(Budget::unlimited().with_max_rounds(6));
    let mut sink = dex_store::StoreSink::new(&mut store);
    let ChaseOutcome::Exhausted(second) = resume_exchange(
        &m,
        ResumeState {
            target: rec.state.instance,
            next_null: rec.state.next_null,
            rounds: rec.state.round,
        },
        ChaseOptions::default(),
        &gov2,
        Some(&mut sink),
    )
    .unwrap() else {
        panic!("second leg must exhaust at the same total cap")
    };

    assert_eq!(
        second.report.rounds_committed,
        whole.report.rounds_committed
    );
    assert_eq!(second.partial, whole.partial, "split run ≡ whole run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn create_refuses_to_overwrite_and_open_rejects_non_stores() {
    let dir = tempdir("occupied");
    let (_, src) = fixture();
    Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts(8)).unwrap();
    assert!(matches!(
        Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts(8)),
        Err(dex_store::StoreError::StoreExists { .. })
    ));

    let empty = tempdir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(matches!(
        Store::open(&empty, opts(8)),
        Err(dex_store::StoreError::NotAStore { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn prepare_resume_is_idempotent() {
    let dir = tempdir("idem");
    let gov = Governor::new(Budget::unlimited().with_max_rounds(1));
    run_to_store(&dir, 64, &gov);

    let mut store = Store::open(&dir, opts(64)).unwrap();
    let rec1: ChaseState = store.recover().unwrap().unwrap().state;
    store.prepare_resume(&rec1).unwrap();
    let rec2 = store.recover().unwrap().unwrap().state;
    store.prepare_resume(&rec2).unwrap();
    let rec3 = store.recover().unwrap().unwrap().state;
    assert_eq!(rec1, rec2);
    assert_eq!(rec2, rec3);
    std::fs::remove_dir_all(&dir).ok();
}
