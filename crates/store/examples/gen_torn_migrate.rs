//! Regenerates `examples/store_fixtures/torn_migrate/`: a store whose
//! migration crashed **after** the checksummed `COMMIT` marker became
//! durable but **before** the staged files were renamed into place —
//! the "torn" window where the live files may mix old and new and only
//! the idempotent roll-forward can finish the job.
//!
//! ```sh
//! cargo run -p dex-store --example gen_torn_migrate -- \
//!     examples/store_fixtures/torn_migrate
//! ```
//!
//! Expected behaviour (pinned by CI's fsck smoke job):
//! `dexcli fsck` exits 1 naming the committed migration; either
//! `dexcli fsck --repair` or `dexcli migrate --resume` rolls it
//! forward; afterwards the store is clean and serves the new schema.

use dex_chase::{exchange_checkpointed, ChaseOptions};
use dex_logic::parse_mapping;
use dex_relational::{tuple, Governor, Instance, RelSchema, Schema};
use dex_store::{MigratePlan, MigrateRun, Migration, Store, StoreMode, StoreOptions, StoreSink};
use std::path::PathBuf;

const OLD_MAPPING: &str =
    "source Emp(id, name);\ntarget Staff(id, name);\nEmp(i, n) -> Staff(i, n);\n";
const NEW_SCHEMA: &str = "target Staff(id, name, grade);\n";
/// What `dexcli migrate` compiles for `ADD COLUMN Staff.grade`: the
/// stored instance, renamed into the `v0__` source vocabulary, chased
/// onto the new schema with a constant default.
const MIG_MAPPING: &str = "source v0__Staff(id, name);\ntarget Staff(id, name, grade);\nv0__Staff(i, n) -> Staff(i, n, \"none\");\n";

fn main() {
    let dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .expect("usage: gen_torn_migrate <dir>"),
    );
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions {
        snapshot_every: u64::MAX,
        sync: false,
    };

    // The live store: two employees exchanged onto Staff(id, name).
    let m = parse_mapping(OLD_MAPPING).unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("Emp", vec![tuple!["1", "ada"], tuple!["2", "bob"]])],
    )
    .unwrap();
    let mut store = Store::create(&dir, StoreMode::Chase, OLD_MAPPING, &src, opts).unwrap();
    let mut sink = StoreSink::new(&mut store);
    exchange_checkpointed(
        &m,
        &src,
        ChaseOptions::default(),
        &Governor::unlimited(),
        &mut sink,
    )
    .unwrap();
    let state = store.recover().unwrap().unwrap().state;
    drop(store);

    // The stored instance in the v0__ source vocabulary.
    let v0 = Schema::with_relations(vec![
        RelSchema::untyped("v0__Staff", vec!["id", "name"]).unwrap()
    ])
    .unwrap();
    let mut prefixed = Instance::empty(v0);
    for (rel, t) in state.instance.facts() {
        prefixed.insert(&format!("v0__{rel}"), t).unwrap();
    }

    // Stage the migration, chase it to completion, write the COMMIT
    // marker — and "crash" before the roll-forward renames.
    let plan = MigratePlan {
        schema_text: NEW_SCHEMA.to_string(),
        mapping_text: MIG_MAPPING.to_string(),
    };
    let mut mig = Migration::begin(&dir, &plan, &prefixed, opts).unwrap();
    match mig
        .run(ChaseOptions::default(), &Governor::unlimited())
        .unwrap()
    {
        MigrateRun::Done(_) => {}
        MigrateRun::Suspended(r) => panic!("unbudgeted migration suspended: {r:?}"),
    }
    mig.commit().unwrap();
    println!(
        "torn (committed, not rolled forward) migration fixture at {}",
        dir.display()
    );
}
