//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant), computed
//! with a compile-time lookup table. Hand-rolled because the build is
//! offline; the constants match the standard `crc32fast`/zlib output,
//! pinned by the test vectors below.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard test vectors (zlib's crc32).
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"hello, world");
        let mut bytes = *b"hello, world";
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
