//! # dex-store — crash-safe instance persistence
//!
//! Durable storage for chase runs: a checksummed binary codec for the
//! relational vocabulary (labeled nulls keep their stable ids), a
//! write-ahead log of committed rounds, periodic atomic snapshots, and
//! recovery that replays the WAL's longest valid prefix. Together with
//! `dex-chase`'s checkpoint sink this makes an interrupted chase —
//! budget-exhausted or crashed mid-round — resumable from disk, with
//! the resumed run producing the *same* final instance (same tuples,
//! same null allocation order) as an uninterrupted one.
//!
//! Layout of a store directory and the durability protocol are
//! documented in DESIGN.md §9; the crash-matrix test in
//! `tests/crash_matrix.rs` pins the recovery invariant under injected
//! IO faults at every record boundary.
//!
//! Every byte read back from disk is treated as untrusted input:
//! decoding returns typed [`StoreError`]s, never panics (the crate
//! denies `unwrap`/`expect` outside tests).

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod blob;
pub mod codec;
pub mod crc;
pub mod error;
pub mod fsck;
pub mod migrate;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{decode_instance, encode_instance, Decoder, Encoder};
pub use crc::crc32;
pub use error::StoreError;
pub use fsck::{fsck, repair, FsckReport, SnapshotStatus};
pub use migrate::{MigrateError, MigratePlan, MigrateRun, MigrateStatus, Migration};
pub use snapshot::ChaseState;
pub use store::{Recovered, Store, StoreMode, StoreOptions, StoreSink};
pub use wal::{WalRecord, WalScan};
