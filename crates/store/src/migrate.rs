//! Crash-safe live schema migration of a persisted store.
//!
//! A migration rewrites the store's materialized instance under a
//! *migration mapping* (compiled by `dex-evolution` from a catalog
//! diff) without ever putting the old store at risk: all work happens
//! in a staging directory beside the live files, and the live files
//! change only after a checksummed commit marker is durable.
//!
//! ```text
//! <dir>/migrate/              staging (absent when no migration runs)
//! <dir>/migrate/plan.bin      framed: new-schema text + mapping text
//! <dir>/migrate/store/        a nested Store chasing the migration
//! <dir>/migrate/progress.bin  advisory: last committed round
//! <dir>/migrate/next/         the finished replacement store files
//! <dir>/migrate/COMMIT        framed marker — THE commit point
//! ```
//!
//! Protocol, in write order:
//!
//! 1. **Plan** (`migrate.plan` fail site): `plan.bin` records what the
//!    migration is doing, so a crashed process can resume without the
//!    caller re-deriving the diff. A nested [`Store`] is created with
//!    the migration mapping and the version-prefixed old instance as
//!    its source.
//! 2. **Chase** (`migrate.round_commit` fail site): the migration runs
//!    as an ordinary governed, checkpointed chase into the nested
//!    store — every committed round is durable (WAL + periodic
//!    snapshots), budget exhaustion and SIGTERM-style cancellation
//!    leave a resumable boundary, and after each round an advisory
//!    `progress.bin` is rewritten (a torn one is harmless: the nested
//!    store's own recovery is authoritative).
//! 3. **Commit** (`migrate.finalize` fail site): the four replacement
//!    store files are built and fsynced under `next/`, then the
//!    `COMMIT` marker is written. A marker that does not verify is no
//!    marker: the migration is still merely in progress.
//! 4. **Roll-forward**: each file under `next/` is renamed over its
//!    live counterpart, then the staging directory is removed. Every
//!    step is idempotent — a crash mid-roll-forward leaves the marker
//!    in place, and the next [`roll_forward`] call (from `resume`,
//!    `fsck --repair`, or the daemon) converges to the same result.
//!
//! Until step 3 completes, the old store's bytes are untouched; after
//! it, the new store is the only possible outcome. There is no state
//! from which recovery cannot proceed.

use std::fs;
use std::path::{Path, PathBuf};

use crate::blob;
use crate::codec::{Decoder, Encoder};
use crate::error::StoreError;
use crate::snapshot::{self, ChaseState, SNAPSHOT_FILE};
use crate::store::{
    write_file_faulted, write_plain, Recovered, Store, StoreMode, StoreOptions, META_FILE,
    META_MAGIC, SOURCE_FILE, SOURCE_MAGIC, WAL_FILE,
};
use crate::wal;
use dex_chase::{
    exchange_checkpointed, resume_exchange, ChaseError, ChaseOptions, ChaseOutcome, Checkpoint,
    CheckpointSink, ResumeState,
};
use dex_relational::{ExhaustionReport, Governor, Instance};

/// Staging directory name, under the live store directory.
pub const MIGRATE_DIR: &str = "migrate";
/// Plan file name, under the staging directory.
pub const PLAN_FILE: &str = "plan.bin";
/// Advisory progress file name, under the staging directory.
pub const PROGRESS_FILE: &str = "progress.bin";
/// Replacement-store directory name, under the staging directory.
pub const NEXT_DIR: &str = "next";
/// Nested chase-store directory name, under the staging directory.
pub const STAGE_STORE_DIR: &str = "store";
/// Commit-marker file name, under the staging directory.
pub const COMMIT_FILE: &str = "COMMIT";

/// Magic bytes opening `plan.bin`.
pub const PLAN_MAGIC: &[u8; 8] = b"DEXPLAN1";
/// Magic bytes opening `progress.bin`.
pub const PROGRESS_MAGIC: &[u8; 8] = b"DEXPROG1";
/// Magic bytes opening `COMMIT`.
pub const COMMIT_MAGIC: &[u8; 8] = b"DEXCMT01";

/// What a staged migration is doing: the evolved schema the store is
/// moving to, and the compiled migration mapping that moves the data.
/// Both are stored as `.dex` source text so a resuming process (or a
/// human reading the staging directory) needs no other context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigratePlan {
    /// The evolved schema, as re-parseable `.dex` declarations. This
    /// becomes the committed store's `store.meta` mapping text.
    pub schema_text: String,
    /// The compiled migration mapping (`v0__`-prefixed old schema →
    /// evolved schema), as re-parseable `.dex` source.
    pub mapping_text: String,
}

/// Where a store stands with respect to live migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateStatus {
    /// No staging directory: the store is not migrating.
    None,
    /// A staged migration exists but has not committed. The live store
    /// files are untouched and authoritative; the staging chase can be
    /// resumed (or the whole directory aborted) at any time.
    InProgress {
        /// Last committed chase round, when any boundary is durable.
        round: Option<u64>,
        /// Whether the staged chase already reached fixpoint (only
        /// the commit marker itself is missing).
        chase_complete: bool,
    },
    /// The `COMMIT` marker verifies: the migration is decided and only
    /// the idempotent roll-forward remains. The live files may be a
    /// mix of old and new until [`roll_forward`] completes.
    Committed,
}

/// Errors running a live migration (beyond plain [`StoreError`]s).
#[derive(Debug)]
pub enum MigrateError {
    /// An underlying store failure.
    Store(StoreError),
    /// The staged plan is unusable (mapping text does not parse, or
    /// the staging directory is torn beyond what resume can use).
    Plan {
        /// What was wrong with the plan.
        detail: String,
    },
    /// The migration chase itself failed.
    Chase(ChaseError),
    /// `finalize` was called before the staged chase reached fixpoint.
    Incomplete {
        /// The last committed round.
        round: u64,
    },
    /// The migration has already committed; only [`roll_forward`]
    /// applies now.
    Committed,
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Store(e) => write!(f, "{e}"),
            MigrateError::Plan { detail } => write!(f, "unusable migration plan: {detail}"),
            MigrateError::Chase(e) => write!(f, "migration chase failed: {e}"),
            MigrateError::Incomplete { round } => write!(
                f,
                "the staged migration has not reached fixpoint (round {round}); run it to completion before finalizing"
            ),
            MigrateError::Committed => write!(
                f,
                "the migration has already committed; roll-forward is the only remaining step"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<StoreError> for MigrateError {
    fn from(e: StoreError) -> Self {
        MigrateError::Store(e)
    }
}

impl From<ChaseError> for MigrateError {
    fn from(e: ChaseError) -> Self {
        MigrateError::Chase(e)
    }
}

/// How a [`Migration::run`] call ended.
#[derive(Debug)]
pub enum MigrateRun {
    /// The migration chase reached fixpoint; [`Migration::finalize`]
    /// may now commit. Carries the final staged state.
    Done(ChaseState),
    /// A budget or cancellation stopped the chase at a durable
    /// boundary; re-run (possibly in another process) to continue.
    Suspended(ExhaustionReport),
}

fn encode_plan(plan: &MigratePlan) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(&plan.schema_text);
    e.put_str(&plan.mapping_text);
    blob::frame(PLAN_MAGIC, &e.into_bytes())
}

fn decode_plan(bytes: &[u8]) -> Result<MigratePlan, StoreError> {
    let payload = blob::unframe(PLAN_MAGIC, bytes, PLAN_FILE)?;
    let mut d = Decoder::new(payload, PLAN_FILE);
    let schema_text = d.get_str("plan schema text")?;
    let mapping_text = d.get_str("plan mapping text")?;
    d.finish()?;
    Ok(MigratePlan {
        schema_text,
        mapping_text,
    })
}

fn encode_progress(round: u64, complete: bool) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(round);
    e.put_u8(u8::from(complete));
    blob::frame(PROGRESS_MAGIC, &e.into_bytes())
}

fn decode_progress(bytes: &[u8]) -> Result<(u64, bool), StoreError> {
    let payload = blob::unframe(PROGRESS_MAGIC, bytes, PROGRESS_FILE)?;
    let mut d = Decoder::new(payload, PROGRESS_FILE);
    let round = d.get_u64("progress round")?;
    let complete = d.get_u8("progress complete flag")? != 0;
    d.finish()?;
    Ok((round, complete))
}

fn encode_commit(round: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(round);
    blob::frame(COMMIT_MAGIC, &e.into_bytes())
}

fn commit_verifies(staging: &Path) -> bool {
    match fs::read(staging.join(COMMIT_FILE)) {
        Ok(bytes) => blob::unframe(COMMIT_MAGIC, &bytes, COMMIT_FILE).is_ok(),
        Err(_) => false,
    }
}

/// Where the store at `dir` stands with respect to live migration.
/// Read-only, and deliberately forgiving: torn staging internals
/// (a half-written plan, a torn progress file) still classify as
/// [`MigrateStatus::InProgress`] — only a *verifying* commit marker
/// means [`MigrateStatus::Committed`].
pub fn status(dir: &Path) -> Result<MigrateStatus, StoreError> {
    let staging = dir.join(MIGRATE_DIR);
    if !staging.is_dir() {
        return Ok(MigrateStatus::None);
    }
    if commit_verifies(&staging) {
        return Ok(MigrateStatus::Committed);
    }
    // Advisory progress first, the nested store's snapshot as the
    // authoritative fallback. Any of this may be torn; that is still
    // just "in progress".
    let mut round = None;
    let mut chase_complete = false;
    if let Ok(bytes) = fs::read(staging.join(PROGRESS_FILE)) {
        if let Ok((r, c)) = decode_progress(&bytes) {
            round = Some(r);
            chase_complete = c;
        }
    }
    if round.is_none() {
        if let Ok(Some(s)) = snapshot::read(&staging.join(STAGE_STORE_DIR)) {
            round = Some(s.round);
            chase_complete = s.complete;
        }
    }
    Ok(MigrateStatus::InProgress {
        round,
        chase_complete,
    })
}

/// The staged plan at `dir`, if a usable one exists. `Ok(None)` when
/// there is no staging directory *or* the plan never became durable
/// and no chase data exists either (a crash inside the very first
/// write) — in that case [`Migration::begin`] may simply start over.
pub fn staged_plan(dir: &Path) -> Result<Option<MigratePlan>, StoreError> {
    let staging = dir.join(MIGRATE_DIR);
    if !staging.is_dir() {
        return Ok(None);
    }
    match fs::read(staging.join(PLAN_FILE)) {
        Ok(bytes) => match decode_plan(&bytes) {
            Ok(plan) => Ok(Some(plan)),
            // A torn plan with no chase data behind it is wreckage
            // from a crash inside the very first write — recoverable
            // by starting over, so not corruption. With chase data
            // present the plan really is lost: surface it.
            Err(e) if staging.join(STAGE_STORE_DIR).join(META_FILE).exists() => Err(e),
            Err(_) => Ok(None),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StoreError::io(format!("read {PLAN_FILE}"))(e)),
    }
}

/// A live migration of the store at `dir`, staged under
/// `dir/migrate/`. Obtained from [`Migration::begin`] (fresh) or
/// [`Migration::resume`] (after a crash, restart, or budget stop).
pub struct Migration {
    dir: PathBuf,
    staging: PathBuf,
    plan: MigratePlan,
    store: Store,
    opts: StoreOptions,
}

impl Migration {
    /// Stage a fresh migration of the store at `dir`. `source` is the
    /// old store's materialized instance, already renamed into the
    /// migration mapping's source vocabulary (the `v0__` prefix).
    ///
    /// Refuses when a usable staging directory already exists
    /// ([`StoreError::MigrationInProgress`]) — resume or abort it
    /// first. Wreckage from a crash *before* anything became durable
    /// (a torn `plan.bin`, no chase data) is silently cleared.
    pub fn begin(
        dir: &Path,
        plan: &MigratePlan,
        source: &Instance,
        opts: StoreOptions,
    ) -> Result<Migration, MigrateError> {
        let staging = dir.join(MIGRATE_DIR);
        if staging.is_dir() {
            let usable = staged_plan(dir).map(|p| p.is_some()).unwrap_or(false)
                || staging.join(STAGE_STORE_DIR).join(META_FILE).exists()
                || commit_verifies(&staging);
            if usable {
                return Err(StoreError::MigrationInProgress {
                    dir: dir.to_path_buf(),
                }
                .into());
            }
            fs::remove_dir_all(&staging)
                .map_err(StoreError::io(format!("clear torn {MIGRATE_DIR}/")))?;
        }
        fs::create_dir_all(&staging)
            .map_err(StoreError::io(format!("create {}", staging.display())))?;

        write_file_faulted(
            &staging.join(PLAN_FILE),
            "migrate.plan",
            &encode_plan(plan),
            opts.sync,
        )?;
        let store = Store::create(
            &staging.join(STAGE_STORE_DIR),
            StoreMode::Exchange,
            &plan.mapping_text,
            source,
            opts,
        )?;
        if opts.sync {
            snapshot::sync_dir(&staging)?;
        }
        Ok(Migration {
            dir: dir.to_path_buf(),
            staging,
            plan: plan.clone(),
            store,
            opts,
        })
    }

    /// Reattach to the staged migration at `dir` (after a crash, a
    /// restart, or a budget stop). Errors when nothing resumable is
    /// staged, or when the migration has already committed (use
    /// [`roll_forward`] for that).
    pub fn resume(dir: &Path, opts: StoreOptions) -> Result<Migration, MigrateError> {
        let staging = dir.join(MIGRATE_DIR);
        if commit_verifies(&staging) {
            return Err(MigrateError::Committed);
        }
        let plan = staged_plan(dir)?.ok_or_else(|| MigrateError::Plan {
            detail: format!(
                "no staged migration at {} (nothing to resume)",
                staging.display()
            ),
        })?;
        let store = Store::open(&staging.join(STAGE_STORE_DIR), opts)?;
        Ok(Migration {
            dir: dir.to_path_buf(),
            staging,
            plan,
            store,
            opts,
        })
    }

    /// The staged plan.
    pub fn plan(&self) -> &MigratePlan {
        &self.plan
    }

    /// The live store directory being migrated.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Recover the nested staging store's last committed boundary
    /// (`None` before the first checkpoint).
    pub fn recover(&self) -> Result<Option<Recovered>, StoreError> {
        self.store.recover()
    }

    /// Run (or continue) the migration chase to fixpoint or budget
    /// exhaustion. Every committed round is durable before the chase
    /// proceeds; a [`MigrateRun::Suspended`] return leaves the staging
    /// area resumable by a later call — in this process or another.
    pub fn run(&mut self, opts: ChaseOptions, gov: &Governor) -> Result<MigrateRun, MigrateError> {
        let mapping =
            dex_logic::parse_mapping(&self.plan.mapping_text).map_err(|e| MigrateError::Plan {
                detail: format!("migration mapping does not parse: {e}"),
            })?;
        let recovered = self.store.recover()?;
        let outcome = match recovered {
            Some(r) if r.state.complete => return Ok(MigrateRun::Done(r.state)),
            Some(r) => {
                self.store.prepare_resume(&r.state)?;
                let resume = ResumeState {
                    target: r.state.instance,
                    next_null: r.state.next_null,
                    rounds: r.state.round,
                };
                let mut sink = MigrateSink {
                    store: &mut self.store,
                    staging: &self.staging,
                    sync: self.opts.sync,
                };
                resume_exchange(&mapping, resume, opts, gov, Some(&mut sink))?
            }
            None => {
                let src = self.store.source()?;
                let mut sink = MigrateSink {
                    store: &mut self.store,
                    staging: &self.staging,
                    sync: self.opts.sync,
                };
                exchange_checkpointed(&mapping, &src, opts, gov, &mut sink)?
            }
        };
        match outcome {
            ChaseOutcome::Complete(_) => {
                // The sink persisted the complete boundary; read it
                // back so the caller gets exactly what is on disk.
                let rec = self.store.recover()?.ok_or_else(|| MigrateError::Plan {
                    detail: "completed chase left no durable snapshot".into(),
                })?;
                Ok(MigrateRun::Done(rec.state))
            }
            ChaseOutcome::Exhausted(e) => Ok(MigrateRun::Suspended(e.report)),
        }
    }

    /// Decide the migration: build the replacement store files under
    /// `next/` and write the `COMMIT` marker (the commit point, behind
    /// the `migrate.finalize` fail site). Requires the staged chase to
    /// have reached fixpoint. Does **not** touch the live files — call
    /// [`roll_forward`] (or [`Migration::finalize`]) for that.
    pub fn commit(&mut self) -> Result<(), MigrateError> {
        if commit_verifies(&self.staging) {
            return Ok(());
        }
        let rec = self
            .store
            .recover()?
            .ok_or(MigrateError::Incomplete { round: 0 })?;
        if !rec.state.complete {
            return Err(MigrateError::Incomplete {
                round: rec.state.round,
            });
        }
        let state = rec.state;

        let next = self.staging.join(NEXT_DIR);
        fs::create_dir_all(&next).map_err(StoreError::io(format!("create {NEXT_DIR}/")))?;

        let mut e = Encoder::new();
        e.put_u8(StoreMode::Exchange.to_byte());
        e.put_str(&self.plan.schema_text);
        write_plain(
            &next.join(META_FILE),
            &blob::frame(META_MAGIC, &e.into_bytes()),
            self.opts.sync,
        )?;

        // The migrated data lives in the (complete) snapshot; the new
        // store's "source" is an empty instance over the new schema.
        let mut e = Encoder::new();
        e.put_instance(&Instance::empty(state.instance.schema().clone()));
        write_plain(
            &next.join(SOURCE_FILE),
            &blob::frame(SOURCE_MAGIC, &e.into_bytes()),
            self.opts.sync,
        )?;

        write_plain(
            &next.join(SNAPSHOT_FILE),
            &snapshot::encode(&state),
            self.opts.sync,
        )?;
        write_plain(&next.join(WAL_FILE), &wal::header_bytes(), self.opts.sync)?;
        if self.opts.sync {
            snapshot::sync_dir(&next)?;
        }

        write_file_faulted(
            &self.staging.join(COMMIT_FILE),
            "migrate.finalize",
            &encode_commit(state.round),
            self.opts.sync,
        )?;
        if self.opts.sync {
            snapshot::sync_dir(&self.staging)?;
        }
        Ok(())
    }

    /// [`Migration::commit`] followed by [`roll_forward`]: the normal
    /// way to finish a completed migration in one call.
    pub fn finalize(&mut self) -> Result<(), MigrateError> {
        self.commit()?;
        roll_forward(&self.dir, self.opts.sync)?;
        Ok(())
    }
}

/// Persists every migration-chase checkpoint into the nested staging
/// store, then rewrites the advisory `progress.bin` through the
/// `migrate.round_commit` fail site. The nested store's own WAL and
/// snapshots are the durable truth; progress is for `fsck` and humans.
struct MigrateSink<'a> {
    store: &'a mut Store,
    staging: &'a Path,
    sync: bool,
}

impl CheckpointSink for MigrateSink<'_> {
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
        self.store
            .record_checkpoint(&cp)
            .map_err(|e| e.to_string())?;
        write_file_faulted(
            &self.staging.join(PROGRESS_FILE),
            "migrate.round_commit",
            &encode_progress(cp.round, cp.complete),
            self.sync,
        )
        .map_err(|e| e.to_string())
    }
}

/// Finish a committed migration at `dir`: rename each replacement file
/// under `migrate/next/` over its live counterpart, then remove the
/// staging directory. Idempotent — call it as many times as crashes
/// demand; any interleaving converges to the fully-migrated store.
///
/// Returns `false` (and does nothing) when no verifying `COMMIT`
/// marker exists.
pub fn roll_forward(dir: &Path, sync: bool) -> Result<bool, StoreError> {
    let staging = dir.join(MIGRATE_DIR);
    if !commit_verifies(&staging) {
        return Ok(false);
    }
    let next = staging.join(NEXT_DIR);
    for file in [META_FILE, SOURCE_FILE, SNAPSHOT_FILE, WAL_FILE] {
        let src = next.join(file);
        if src.exists() {
            fs::rename(&src, dir.join(file))
                .map_err(StoreError::io(format!("roll forward {file}")))?;
        }
    }
    if sync {
        snapshot::sync_dir(dir)?;
    }
    fs::remove_dir_all(&staging).map_err(StoreError::io(format!("remove {MIGRATE_DIR}/")))?;
    if sync {
        snapshot::sync_dir(dir)?;
    }
    Ok(true)
}

/// Abandon an uncommitted staged migration at `dir`, deleting the
/// staging directory. The live store was never touched. Refuses once
/// the migration has committed — the decision is durable and only
/// [`roll_forward`] applies. Returns `false` when nothing was staged.
pub fn abort(dir: &Path) -> Result<bool, MigrateError> {
    let staging = dir.join(MIGRATE_DIR);
    if !staging.is_dir() {
        return Ok(false);
    }
    if commit_verifies(&staging) {
        return Err(MigrateError::Committed);
    }
    fs::remove_dir_all(&staging)
        .map_err(StoreError::io(format!("remove {MIGRATE_DIR}/")))
        .map_err(MigrateError::from)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::tuple;
    use dex_relational::{RelSchema, Schema};

    const OLD_SCHEMA: &str = "target T(a, b);\n";
    const NEW_SCHEMA: &str = "target T2(a, b, c);\ntarget Aud(a);\ntarget Aud2(a);\n";
    // Target tgds give the staged chase several committed rounds, so
    // budget stops land on a real boundary.
    const MIGRATION: &str = r#"
        source v0__T(a, b);
        target T2(a, b, c);
        target Aud(a);
        target Aud2(a);
        v0__T(a, b) -> T2(a, b, c);
        T2(a, b, c) -> Aud(a);
        Aud(a) -> Aud2(a);
    "#;

    fn prefixed_source() -> Instance {
        let schema =
            Schema::with_relations(vec![RelSchema::untyped("v0__T", vec!["a", "b"]).unwrap()])
                .unwrap();
        Instance::with_facts(
            schema,
            vec![("v0__T", vec![tuple!["x", 1i64], tuple!["y", 2i64]])],
        )
        .unwrap()
    }

    fn plan() -> MigratePlan {
        MigratePlan {
            schema_text: NEW_SCHEMA.to_string(),
            mapping_text: MIGRATION.to_string(),
        }
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            snapshot_every: 2,
            sync: false,
        }
    }

    fn old_store(dir: &Path) -> Store {
        Store::create(
            dir,
            StoreMode::Exchange,
            OLD_SCHEMA,
            &Instance::empty(
                Schema::with_relations(vec![RelSchema::untyped("T", vec!["a", "b"]).unwrap()])
                    .unwrap(),
            ),
            opts(),
        )
        .unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dex_migrate_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn plan_and_progress_round_trip() {
        let p = plan();
        assert_eq!(decode_plan(&encode_plan(&p)).unwrap(), p);
        assert_eq!(
            decode_progress(&encode_progress(7, true)).unwrap(),
            (7, true)
        );
    }

    #[test]
    fn full_migration_replaces_the_store_atomically() {
        let dir = tempdir("full");
        old_store(&dir);
        assert_eq!(status(&dir).unwrap(), MigrateStatus::None);

        let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        assert!(matches!(
            status(&dir).unwrap(),
            MigrateStatus::InProgress { .. }
        ));
        let run = mig
            .run(ChaseOptions::default(), &Governor::unlimited())
            .unwrap();
        let state = match run {
            MigrateRun::Done(s) => s,
            MigrateRun::Suspended(r) => panic!("unlimited run suspended: {r:?}"),
        };
        assert!(state.complete);
        mig.finalize().unwrap();

        assert_eq!(status(&dir).unwrap(), MigrateStatus::None);
        let store = Store::open(&dir, opts()).unwrap();
        assert_eq!(store.mapping_text(), NEW_SCHEMA);
        let rec = store.recover().unwrap().unwrap();
        assert!(rec.state.complete);
        assert_eq!(rec.state.instance, state.instance);
        assert_eq!(rec.state.instance.facts().count(), 6);
        assert!(store.source().unwrap().facts().next().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn begin_refuses_over_a_staged_migration_and_abort_clears_it() {
        let dir = tempdir("refuse");
        old_store(&dir);
        let _mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        let err = Migration::begin(&dir, &plan(), &prefixed_source(), opts())
            .err()
            .unwrap();
        assert!(matches!(
            err,
            MigrateError::Store(StoreError::MigrationInProgress { .. })
        ));
        assert!(abort(&dir).unwrap());
        assert_eq!(status(&dir).unwrap(), MigrateStatus::None);
        Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_roll_forward_converges() {
        let dir = tempdir("partial_rf");
        old_store(&dir);
        let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        let MigrateRun::Done(state) = mig
            .run(ChaseOptions::default(), &Governor::unlimited())
            .unwrap()
        else {
            panic!("unlimited run must complete");
        };
        mig.commit().unwrap();
        assert_eq!(status(&dir).unwrap(), MigrateStatus::Committed);

        // Simulate a crash after one rename of the roll-forward: the
        // live dir is a mix of old and new files.
        let next = dir.join(MIGRATE_DIR).join(NEXT_DIR);
        fs::rename(next.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(status(&dir).unwrap(), MigrateStatus::Committed);

        assert!(roll_forward(&dir, false).unwrap());
        assert_eq!(status(&dir).unwrap(), MigrateStatus::None);
        let store = Store::open(&dir, opts()).unwrap();
        assert_eq!(store.mapping_text(), NEW_SCHEMA);
        assert_eq!(
            store.recover().unwrap().unwrap().state.instance,
            state.instance
        );
        // A second roll-forward is a no-op.
        assert!(!roll_forward(&dir, false).unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abort_refuses_after_commit() {
        let dir = tempdir("abort_commit");
        old_store(&dir);
        let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        mig.run(ChaseOptions::default(), &Governor::unlimited())
            .unwrap();
        mig.commit().unwrap();
        assert!(matches!(abort(&dir), Err(MigrateError::Committed)));
        assert!(roll_forward(&dir, false).unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_stop_suspends_then_resume_completes() {
        use dex_relational::Budget;
        let dir = tempdir("suspend");
        old_store(&dir);
        let mut mig = Migration::begin(&dir, &plan(), &prefixed_source(), opts()).unwrap();
        // A one-round budget trips after the first committed target
        // round — a durable boundary.
        let gov = Governor::new(Budget::unlimited().with_max_rounds(1));
        let run = mig.run(ChaseOptions::default(), &gov).unwrap();
        assert!(matches!(run, MigrateRun::Suspended(_)));
        assert!(matches!(mig.commit(), Err(MigrateError::Incomplete { .. })));
        drop(mig);

        // Another "process" picks the staging back up.
        let mut mig = Migration::resume(&dir, opts()).unwrap();
        assert_eq!(mig.plan(), &plan());
        let MigrateRun::Done(state) = mig
            .run(ChaseOptions::default(), &Governor::unlimited())
            .unwrap()
        else {
            panic!("resumed run must complete");
        };
        mig.finalize().unwrap();
        let store = Store::open(&dir, opts()).unwrap();
        assert_eq!(
            store.recover().unwrap().unwrap().state.instance,
            state.instance
        );
        fs::remove_dir_all(&dir).ok();
    }
}
