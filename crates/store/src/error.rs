//! Typed store failures. Every byte the store reads back is untrusted:
//! decoding and recovery must surface corruption as [`StoreError`]
//! values, never as panics (the crate denies `unwrap`, and the fuzz
//! harness feeds arbitrary bytes through `open`/`fsck`).

use std::fmt;
use std::path::PathBuf;

/// Errors raised by the on-disk store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system IO failure, with what the store was doing.
    Io {
        /// What the store was doing (e.g. `append wal.log`).
        context: String,
        /// The underlying IO error.
        source: std::io::Error,
    },
    /// A file's bytes do not decode: bad magic, failed checksum,
    /// truncated payload, or malformed structure.
    Corrupt {
        /// File the corruption was found in (relative to the store).
        file: String,
        /// Byte offset of the failed read.
        offset: u64,
        /// What failed to decode.
        what: String,
    },
    /// The directory exists but holds no store (`store.meta` missing
    /// or unreadable as a store header).
    NotAStore {
        /// The offending directory.
        dir: PathBuf,
    },
    /// `create` refused to overwrite an existing store.
    StoreExists {
        /// The occupied directory.
        dir: PathBuf,
    },
    /// A migration is already staged under this store's `migrate/`
    /// directory; it must be resumed or aborted before a new one can
    /// begin.
    MigrationInProgress {
        /// The store directory holding the staged migration.
        dir: PathBuf,
    },
    /// An injected fault from the `failpoints` feature (the IO-layer
    /// analogue of `RelationalError::FaultInjected`).
    Injected {
        /// The fail-point site that fired.
        site: String,
    },
}

impl StoreError {
    /// Shorthand for a corruption error.
    pub(crate) fn corrupt(file: &str, offset: usize, what: impl Into<String>) -> Self {
        StoreError::Corrupt {
            file: file.to_string(),
            offset: offset as u64,
            what: what.into(),
        }
    }

    /// Adapter turning an `io::Error` into [`StoreError::Io`] with
    /// context, for use in `map_err`.
    pub(crate) fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Self {
        let context = context.into();
        move |source| StoreError::Io { context, source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "io error: {context}: {source}"),
            StoreError::Corrupt { file, offset, what } => {
                write!(f, "corrupt store file `{file}` at byte {offset}: {what}")
            }
            StoreError::NotAStore { dir } => {
                write!(f, "`{}` is not a dex store (no store.meta)", dir.display())
            }
            StoreError::StoreExists { dir } => write!(
                f,
                "`{}` already holds a store (use `dexcli resume`, or point --store at a fresh directory)",
                dir.display()
            ),
            StoreError::MigrationInProgress { dir } => write!(
                f,
                "`{}` has a staged migration under migrate/ (finish it with `dexcli migrate --resume`, or abort it)",
                dir.display()
            ),
            StoreError::Injected { site } => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = StoreError::corrupt("wal.log", 16, "bad record checksum");
        assert!(e.to_string().contains("wal.log"));
        assert!(e.to_string().contains("byte 16"));
        let e = StoreError::NotAStore {
            dir: PathBuf::from("/tmp/x"),
        };
        assert!(e.to_string().contains("not a dex store"));
    }
}
