//! Durable snapshots of chase state.
//!
//! A snapshot is written to `snapshot.tmp`, fsynced, atomically
//! renamed over `snapshot.bin`, and the directory fsynced — in that
//! order, so a crash at any point leaves either the old snapshot or
//! the new one intact, never a mix (see DESIGN.md §9 for the
//! ordering argument). The payload carries the instance plus the
//! chase position (round, null-generator) needed to resume.

use std::fs;
use std::path::Path;

use crate::blob;
use crate::codec::{Decoder, Encoder};
use crate::error::StoreError;
use dex_relational::Instance;

/// Magic bytes opening `snapshot.bin`.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DEXSNAP1";

/// File name of the current snapshot within a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const TMP_FILE: &str = "snapshot.tmp";

const FLAG_COMPLETE: u8 = 1;

/// A chase position durable enough to resume from: the instance as of
/// a committed round boundary, plus the counters that pin determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseState {
    /// The target instance at this boundary.
    pub instance: Instance,
    /// Committed rounds so far (0 = after phase-1 st-tgd firing).
    pub round: u64,
    /// Null-generator position — resuming from here allocates the
    /// same null ids an uninterrupted run would.
    pub next_null: u64,
    /// Whether the chase reached fixpoint (nothing left to resume).
    pub complete: bool,
}

/// Encode a chase state to framed snapshot bytes.
pub fn encode(state: &ChaseState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(if state.complete { FLAG_COMPLETE } else { 0 });
    e.put_u64(state.round);
    e.put_u64(state.next_null);
    e.put_instance(&state.instance);
    blob::frame(SNAPSHOT_MAGIC, &e.into_bytes())
}

/// Decode framed snapshot bytes.
pub fn decode(bytes: &[u8], file: &str) -> Result<ChaseState, StoreError> {
    let payload = blob::unframe(SNAPSHOT_MAGIC, bytes, file)?;
    let mut d = Decoder::new(payload, file);
    let flags = d.get_u8("snapshot flags")?;
    let round = d.get_u64("snapshot round")?;
    let next_null = d.get_u64("snapshot next_null")?;
    let instance = d.get_instance()?;
    d.finish()?;
    Ok(ChaseState {
        instance,
        round,
        next_null,
        complete: flags & FLAG_COMPLETE != 0,
    })
}

/// Durably replace the snapshot in `dir` with `state`.
///
/// Ordering: write `snapshot.tmp`, fsync it, rename over
/// `snapshot.bin`, fsync the directory. The rename is the commit
/// point; `sync` false (tests, `--no-sync`) skips the fsyncs but
/// keeps the ordering. The `store.snapshot_write` and
/// `store.snapshot_rename` fail-point sites fire here.
pub fn write(dir: &Path, state: &ChaseState, sync: bool) -> Result<(), StoreError> {
    let bytes = encode(state);
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(SNAPSHOT_FILE);

    crate::store::write_file_faulted(&tmp, "store.snapshot_write", &bytes, sync)?;

    if let Some(action) = dex_relational::fail::hit_io("store.snapshot_rename") {
        // Crash before the commit point: the tmp file exists but the
        // old snapshot (if any) is untouched.
        let _ = action;
        return Err(StoreError::Injected {
            site: "store.snapshot_rename".into(),
        });
    }

    fs::rename(&tmp, &dst).map_err(StoreError::io(format!(
        "rename {TMP_FILE} over {SNAPSHOT_FILE}"
    )))?;
    if sync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Read the snapshot in `dir`, if one exists. A present-but-corrupt
/// snapshot is an error, not `None` — recovery must not silently
/// restart from scratch when durable state existed.
pub fn read(dir: &Path) -> Result<Option<ChaseState>, StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(format!("read {SNAPSHOT_FILE}"))(e)),
    };
    decode(&bytes, SNAPSHOT_FILE).map(Some)
}

/// fsync a directory so a rename within it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(StoreError::io(format!("fsync {}", dir.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema, Value};

    fn state(complete: bool) -> ChaseState {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("T", vec!["a", "b"]).expect("schema")
        ])
        .expect("schema");
        let mut inst = Instance::empty(schema);
        inst.insert("T", tuple!["x", Value::null(4)])
            .expect("insert");
        ChaseState {
            instance: inst,
            round: 7,
            next_null: 5,
            complete,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for complete in [false, true] {
            let s = state(complete);
            let back = decode(&encode(&s), "snapshot.bin").expect("decode");
            assert_eq!(back, s);
        }
    }

    #[test]
    fn write_then_read_through_the_filesystem() {
        let dir = tempdir("snap_rw");
        write(&dir, &state(false), false).expect("write");
        let back = read(&dir).expect("read").expect("some");
        assert_eq!(back, state(false));
        // Overwrite is atomic-replace, not append.
        write(&dir, &state(true), true).expect("write");
        assert!(read(&dir).expect("read").expect("some").complete);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none_but_corrupt_is_an_error() {
        let dir = tempdir("snap_missing");
        assert!(read(&dir).expect("read").is_none());
        std::fs::write(dir.join(SNAPSHOT_FILE), b"garbage").expect("write");
        assert!(matches!(read(&dir), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dex_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }
}
