//! Offline store verification (`dexcli fsck`).
//!
//! `fsck` walks every file in a store directory and verifies its
//! framing, checksums, and structure without mutating anything.
//! `repair` applies the one safe repair: truncating the WAL back to
//! its last valid record (exactly what recovery does implicitly). A
//! corrupt snapshot or meta file is *reported*, never repaired — there
//! is no prefix of a snapshot worth keeping.

use std::fmt;
use std::fs;
use std::path::Path;

use crate::error::StoreError;
use crate::migrate::{self, MigrateStatus};
use crate::snapshot::{self, SNAPSHOT_FILE};
use crate::store::{Store, StoreOptions, META_FILE, SOURCE_FILE, WAL_FILE};
use crate::wal;

/// What fsck found in `snapshot.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// No snapshot yet (a store that never checkpointed).
    Missing,
    /// A valid snapshot at this round.
    Ok {
        /// The snapshot's committed round.
        round: u64,
        /// Whether it marks a finished chase.
        complete: bool,
    },
    /// The snapshot file exists but does not verify.
    Corrupt,
}

/// Result of verifying a store directory.
#[derive(Debug)]
pub struct FsckReport {
    /// `store.meta` verified.
    pub meta_ok: bool,
    /// `source.bin` verified.
    pub source_ok: bool,
    /// State of `snapshot.bin`.
    pub snapshot: SnapshotStatus,
    /// Valid records in the WAL prefix.
    pub wal_records: usize,
    /// Byte length of the valid WAL prefix (header included).
    pub wal_valid_bytes: u64,
    /// Total bytes in `wal.log`.
    pub wal_total_bytes: u64,
    /// Whether bytes past the valid prefix exist (torn tail).
    pub wal_torn: bool,
    /// Valid records at or below the snapshot round (left behind by a
    /// crash between snapshot rename and WAL truncation; harmless).
    pub stale_records: usize,
    /// Where the store stands with respect to live migration (a
    /// `migrate/` staging directory beside the live files).
    pub migration: MigrateStatus,
    /// Informational notes that do not make the store unclean (e.g. a
    /// resumable migration in progress).
    pub notes: Vec<String>,
    /// Human-readable problems, empty iff the store is clean.
    pub problems: Vec<String>,
}

impl FsckReport {
    /// No problems found.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{META_FILE}: {}",
            if self.meta_ok { "ok" } else { "CORRUPT" }
        )?;
        writeln!(
            f,
            "{SOURCE_FILE}: {}",
            if self.source_ok { "ok" } else { "CORRUPT" }
        )?;
        match self.snapshot {
            SnapshotStatus::Missing => writeln!(f, "{SNAPSHOT_FILE}: none")?,
            SnapshotStatus::Ok { round, complete } => writeln!(
                f,
                "{SNAPSHOT_FILE}: ok (round {round}{})",
                if complete { ", complete" } else { "" }
            )?,
            SnapshotStatus::Corrupt => writeln!(f, "{SNAPSHOT_FILE}: CORRUPT")?,
        }
        writeln!(
            f,
            "{WAL_FILE}: {} record(s), {}/{} bytes valid{}{}",
            self.wal_records,
            self.wal_valid_bytes,
            self.wal_total_bytes,
            if self.wal_torn { ", TORN TAIL" } else { "" },
            if self.stale_records > 0 {
                format!(", {} stale", self.stale_records)
            } else {
                String::new()
            }
        )?;
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        for p in &self.problems {
            writeln!(f, "problem: {p}")?;
        }
        write!(
            f,
            "{}",
            if self.is_clean() {
                "clean"
            } else {
                "NOT CLEAN"
            }
        )
    }
}

/// Verify every file in the store at `dir`. Read-only.
///
/// Errors only when `dir` is not a store at all; everything else is
/// reported through [`FsckReport::problems`].
pub fn fsck(dir: &Path) -> Result<FsckReport, StoreError> {
    // Store::open validates the meta framing; NotAStore passes through.
    let meta_ok = match Store::open(dir, StoreOptions::default()) {
        Ok(_) => true,
        Err(e @ StoreError::NotAStore { .. }) => return Err(e),
        Err(_) => false,
    };
    let mut problems = Vec::new();
    if !meta_ok {
        problems.push(format!("{META_FILE} does not verify"));
    }

    let source_ok = Store::open(dir, StoreOptions::default())
        .and_then(|s| s.source())
        .is_ok();
    if !source_ok {
        problems.push(format!("{SOURCE_FILE} missing or does not verify"));
    }

    let snapshot_status = match snapshot::read(dir) {
        Ok(None) => SnapshotStatus::Missing,
        Ok(Some(s)) => SnapshotStatus::Ok {
            round: s.round,
            complete: s.complete,
        },
        Err(e) => {
            problems.push(format!("{SNAPSHOT_FILE} does not verify: {e}"));
            SnapshotStatus::Corrupt
        }
    };
    let snapshot_round = match snapshot_status {
        SnapshotStatus::Ok { round, .. } => round,
        _ => 0,
    };

    let (wal_records, wal_valid, wal_total, wal_torn, stale) = match fs::read(dir.join(WAL_FILE)) {
        Ok(bytes) => match wal::scan(&bytes, WAL_FILE) {
            Ok(scan) => {
                let stale = scan
                    .records
                    .iter()
                    .filter(|r| r.round() <= snapshot_round && snapshot_round > 0)
                    .count();
                (
                    scan.records.len(),
                    scan.valid_bytes,
                    scan.total_bytes,
                    scan.torn,
                    stale,
                )
            }
            Err(e) => {
                problems.push(format!("{WAL_FILE} header does not verify: {e}"));
                (0, 0, bytes.len() as u64, true, 0)
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            problems.push(format!("{WAL_FILE} missing"));
            (0, 0, 0, false, 0)
        }
        Err(e) => return Err(StoreError::io(format!("read {WAL_FILE}"))(e)),
    };
    if wal_torn {
        problems.push(format!(
            "{WAL_FILE} has a torn tail: {} of {} bytes valid (repairable)",
            wal_valid, wal_total
        ));
    }

    let mut notes = Vec::new();
    let migration = migrate::status(dir)?;
    match &migration {
        MigrateStatus::None => {}
        MigrateStatus::InProgress {
            round,
            chase_complete,
        } => {
            // Not corruption: the live files above are untouched and
            // authoritative until a commit marker verifies.
            notes.push(format!(
                "resumable migration in progress{}{} — the live store is authoritative; finish with `dexcli migrate --resume`",
                match round {
                    Some(r) => format!(" (round {r}"),
                    None => " (no round committed yet".to_string(),
                },
                if *chase_complete {
                    ", chase complete)"
                } else {
                    ")"
                }
            ));
        }
        MigrateStatus::Committed => {
            problems.push(
                "a committed migration awaits roll-forward (the live files may mix old and new); \
                 finish with `dexcli fsck --repair` or `dexcli migrate --resume`"
                    .to_string(),
            );
        }
    }

    Ok(FsckReport {
        meta_ok,
        source_ok,
        snapshot: snapshot_status,
        wal_records,
        wal_valid_bytes: wal_valid,
        wal_total_bytes: wal_total,
        wal_torn,
        stale_records: stale,
        migration,
        notes,
        problems,
    })
}

/// Apply the safe repairs at `dir`: truncate a torn WAL back to its
/// valid prefix, or rewrite a missing/unverifiable WAL as empty.
/// Returns a description of each action taken (empty = nothing to do).
/// Corrupt snapshots and meta files are never touched.
pub fn repair(dir: &Path) -> Result<Vec<String>, StoreError> {
    let mut actions = Vec::new();
    // A committed migration's roll-forward is idempotent and the only
    // way forward for that store: finishing it *is* the safe repair.
    // An uncommitted staging directory is left strictly alone — it is
    // resumable state, not damage.
    if migrate::roll_forward(dir, true)? {
        actions.push("completed the committed migration's roll-forward".to_string());
    }
    let wal_path = dir.join(WAL_FILE);
    match fs::read(&wal_path) {
        Ok(bytes) => match wal::scan(&bytes, WAL_FILE) {
            Ok(scan) if scan.torn => {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(StoreError::io(format!("open {WAL_FILE} for repair")))?;
                f.set_len(scan.valid_bytes)
                    .map_err(StoreError::io(format!("truncate {WAL_FILE}")))?;
                f.sync_all()
                    .map_err(StoreError::io(format!("fsync {WAL_FILE}")))?;
                actions.push(format!(
                    "truncated {WAL_FILE} from {} to {} bytes ({} record(s) kept)",
                    scan.total_bytes,
                    scan.valid_bytes,
                    scan.records.len()
                ));
            }
            Ok(_) => {}
            Err(_) => {
                // Header unverifiable: no valid prefix exists.
                fs::write(&wal_path, wal::header_bytes())
                    .map_err(StoreError::io(format!("rewrite {WAL_FILE}")))?;
                actions.push(format!("rewrote {WAL_FILE} with an empty header"));
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            fs::write(&wal_path, wal::header_bytes())
                .map_err(StoreError::io(format!("recreate {WAL_FILE}")))?;
            actions.push(format!("recreated missing {WAL_FILE}"));
        }
        Err(e) => return Err(StoreError::io(format!("read {WAL_FILE}"))(e)),
    }
    Ok(actions)
}
