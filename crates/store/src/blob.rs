//! Shared framing for the store's one-shot blob files (`store.meta`,
//! `source.bin`, `snapshot.bin`): an 8-byte magic, a format version,
//! a payload length, and a CRC-32 of the payload. A blob either
//! verifies end-to-end or is corrupt — there is no partial read.
//!
//! ```text
//! magic[8] | version u32 | payload_len u32 | crc32 u32 | payload…
//! ```

use crate::crc::crc32;
use crate::error::StoreError;

/// On-disk format version for every store file.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes of framing before the payload.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// Frame `payload` under `magic`.
pub fn frame(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify framing and checksum, returning the payload slice.
pub fn unframe<'a>(magic: &[u8; 8], bytes: &'a [u8], file: &str) -> Result<&'a [u8], StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::corrupt(
            file,
            bytes.len(),
            format!("file too short for header ({} bytes)", bytes.len()),
        ));
    }
    if &bytes[..8] != magic {
        return Err(StoreError::corrupt(file, 0, "bad magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::corrupt(
            file,
            8,
            format!("unsupported format version {version}"),
        ));
    }
    let len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::corrupt(
            file,
            12,
            format!(
                "payload length {} does not match header {len}",
                payload.len()
            ),
        ));
    }
    if crc32(payload) != crc {
        return Err(StoreError::corrupt(file, 16, "payload checksum mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"DEXTEST\0";

    #[test]
    fn round_trip() {
        let framed = frame(MAGIC, b"hello");
        assert_eq!(unframe(MAGIC, &framed, "t").expect("unframe"), b"hello");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(MAGIC, b"payload bytes");
        for bit in 0..framed.len() * 8 {
            let mut bad = framed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                unframe(MAGIC, &bad, "t").is_err(),
                "flip at bit {bit} undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let framed = frame(MAGIC, b"payload bytes");
        for n in 0..framed.len() {
            assert!(unframe(MAGIC, &framed[..n], "t").is_err(), "prefix {n}");
        }
    }
}
