//! Length-prefixed binary codec for the relational vocabulary.
//!
//! All integers are little-endian. Strings are a `u32` byte length
//! followed by UTF-8. Values carry a leading tag byte; labeled nulls
//! serialize their stable `NullId`, so an instance round-trips with
//! the *same* null identities — the property chase resumption depends
//! on. The decoder trusts nothing: every length is checked against the
//! remaining buffer (a fuzzed 4 GiB length must not allocate), and
//! every structural error surfaces as [`StoreError::Corrupt`] with the
//! failing offset.

use crate::error::StoreError;
use dex_relational::{
    AttrType, Constant, Fd, Instance, Name, RelSchema, Relation, Schema, Tuple, Value,
};

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_NULL: u8 = 3;
const TAG_SKOLEM: u8 = 4;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Append-only byte sink for the store's file payloads.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn put_name(&mut self, n: &Name) {
        self.put_str(n.as_str());
    }

    /// Encode one value (tag byte + payload).
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Const(Constant::Bool(b)) => {
                self.put_u8(TAG_BOOL);
                self.put_u8(*b as u8);
            }
            Value::Const(Constant::Int(i)) => {
                self.put_u8(TAG_INT);
                self.put_i64(*i);
            }
            Value::Const(Constant::Str(s)) => {
                self.put_u8(TAG_STR);
                self.put_str(s);
            }
            Value::Null(n) => {
                self.put_u8(TAG_NULL);
                self.put_u64(n.0);
            }
            Value::Skolem(f, args) => {
                self.put_u8(TAG_SKOLEM);
                self.put_name(f);
                self.put_u32(args.len() as u32);
                for a in args {
                    self.put_value(a);
                }
            }
        }
    }

    /// Encode one tuple (arity + values).
    pub fn put_tuple(&mut self, t: &Tuple) {
        self.put_u32(t.arity() as u32);
        for v in t.iter() {
            self.put_value(v);
        }
    }

    fn put_rel_schema(&mut self, r: &RelSchema) {
        self.put_name(r.name());
        self.put_u32(r.attrs().len() as u32);
        for (attr, ty) in r.attrs() {
            self.put_name(attr);
            self.put_u8(match ty {
                AttrType::Any => 0,
                AttrType::Int => 1,
                AttrType::Str => 2,
                AttrType::Bool => 3,
            });
        }
        let fds: Vec<&Fd> = r.fds().iter().collect();
        self.put_u32(fds.len() as u32);
        for fd in fds {
            self.put_u32(fd.lhs().len() as u32);
            for n in fd.lhs() {
                self.put_name(n);
            }
            self.put_u32(fd.rhs().len() as u32);
            for n in fd.rhs() {
                self.put_name(n);
            }
        }
    }

    /// Encode a schema (relation count + per-relation schemas).
    pub fn put_schema(&mut self, s: &Schema) {
        let rels: Vec<&RelSchema> = s.relations().collect();
        self.put_u32(rels.len() as u32);
        for r in rels {
            self.put_rel_schema(r);
        }
    }

    /// Encode a whole instance: its schema, then each relation's
    /// tuples (name order — deterministic, so identical instances
    /// encode to identical bytes).
    pub fn put_instance(&mut self, inst: &Instance) {
        self.put_schema(inst.schema());
        let rels: Vec<&Relation> = inst.relations().collect();
        self.put_u32(rels.len() as u32);
        for r in rels {
            self.put_name(r.name());
            self.put_u32(r.len() as u32);
            // Walk the column store directly, row id by row id in
            // canonical order — same bytes as `put_tuple` per row, but
            // no row materialization on the way out.
            let arity = r.schema().arity();
            for &id in r.row_ids().iter() {
                self.put_u32(arity as u32);
                for col in 0..arity {
                    self.put_value(r.value_at(id, col));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over an untrusted byte buffer. `file` labels
/// corruption errors with their origin.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    file: &'a str,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`, labeling errors as coming from `file`.
    pub fn new(buf: &'a [u8], file: &'a str) -> Self {
        Decoder { buf, pos: 0, file }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn corrupt(&self, what: impl Into<String>) -> StoreError {
        StoreError::corrupt(self.file, self.pos, what)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn get_u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn get_u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn get_u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn get_i64(&mut self, what: &str) -> Result<i64, StoreError> {
        Ok(self.get_u64(what)? as i64)
    }

    /// A count that prefixes `n` elements of at least one byte each:
    /// reject counts the remaining buffer cannot possibly hold, so
    /// fuzzed lengths never drive huge allocations.
    fn get_count(&mut self, what: &str) -> Result<usize, StoreError> {
        let n = self.get_u32(what)? as usize;
        if n > self.remaining() {
            return Err(self.corrupt(format!("implausible {what} count {n}")));
        }
        Ok(n)
    }

    pub(crate) fn get_str(&mut self, what: &str) -> Result<String, StoreError> {
        let n = self.get_count(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt(format!("{what} is not UTF-8")))
    }

    fn get_name(&mut self, what: &str) -> Result<Name, StoreError> {
        Ok(Name::new(self.get_str(what)?))
    }

    /// Decode one value.
    pub fn get_value(&mut self) -> Result<Value, StoreError> {
        match self.get_u8("value tag")? {
            TAG_BOOL => Ok(Value::bool(self.get_u8("bool")? != 0)),
            TAG_INT => Ok(Value::int(self.get_i64("int")?)),
            TAG_STR => Ok(Value::str(self.get_str("string value")?)),
            TAG_NULL => Ok(Value::null(self.get_u64("null id")?)),
            TAG_SKOLEM => {
                let f = self.get_name("skolem name")?;
                let argc = self.get_count("skolem arg")?;
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.get_value()?);
                }
                Ok(Value::skolem(f, args))
            }
            t => Err(self.corrupt(format!("unknown value tag {t}"))),
        }
    }

    /// Decode one tuple.
    pub fn get_tuple(&mut self) -> Result<Tuple, StoreError> {
        let arity = self.get_count("tuple arity")?;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.get_value()?);
        }
        Ok(Tuple::new(vals))
    }

    fn get_rel_schema(&mut self) -> Result<RelSchema, StoreError> {
        let name = self.get_name("relation name")?;
        let nattrs = self.get_count("attribute")?;
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            let attr = self.get_name("attribute name")?;
            let ty = match self.get_u8("attribute type")? {
                0 => AttrType::Any,
                1 => AttrType::Int,
                2 => AttrType::Str,
                3 => AttrType::Bool,
                t => return Err(self.corrupt(format!("unknown attribute type {t}"))),
            };
            attrs.push((attr, ty));
        }
        let mut rel = RelSchema::new(name, attrs)
            .map_err(|e| self.corrupt(format!("invalid relation schema: {e}")))?;
        let nfds = self.get_count("fd")?;
        for _ in 0..nfds {
            let nlhs = self.get_count("fd lhs")?;
            let mut lhs = Vec::with_capacity(nlhs);
            for _ in 0..nlhs {
                lhs.push(self.get_name("fd lhs attribute")?);
            }
            let nrhs = self.get_count("fd rhs")?;
            let mut rhs = Vec::with_capacity(nrhs);
            for _ in 0..nrhs {
                rhs.push(self.get_name("fd rhs attribute")?);
            }
            rel = rel
                .with_fd(Fd::new(lhs, rhs))
                .map_err(|e| self.corrupt(format!("invalid fd: {e}")))?;
        }
        Ok(rel)
    }

    /// Decode a schema.
    pub fn get_schema(&mut self) -> Result<Schema, StoreError> {
        let nrels = self.get_count("relation")?;
        let mut rels = Vec::with_capacity(nrels);
        for _ in 0..nrels {
            rels.push(self.get_rel_schema()?);
        }
        Schema::with_relations(rels).map_err(|e| self.corrupt(format!("invalid schema: {e}")))
    }

    /// Decode a whole instance, validating every tuple against the
    /// decoded schema (arity and attribute types).
    pub fn get_instance(&mut self) -> Result<Instance, StoreError> {
        let schema = self.get_schema()?;
        let mut inst = Instance::empty(schema);
        let nrels = self.get_count("populated relation")?;
        for _ in 0..nrels {
            let name = self.get_name("populated relation name")?;
            let count = self.get_count("tuple")?;
            let mut tuples = Vec::with_capacity(count);
            for _ in 0..count {
                tuples.push(self.get_tuple()?);
            }
            let rel = inst
                .relation_mut(name.as_str())
                .ok_or_else(|| self.corrupt(format!("tuples for unknown relation `{name}`")))?;
            rel.extend_validated(tuples)
                .map_err(|e| self.corrupt(format!("invalid tuple in `{name}`: {e}")))?;
        }
        Ok(inst)
    }

    /// Assert the buffer is fully consumed (no trailing garbage).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() > 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

/// Encode an instance to standalone bytes (snapshot payloads, tests).
pub fn encode_instance(inst: &Instance) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_instance(inst);
    e.into_bytes()
}

/// Decode an instance from standalone bytes.
pub fn decode_instance(bytes: &[u8], file: &str) -> Result<Instance, StoreError> {
    let mut d = Decoder::new(bytes, file);
    let inst = d.get_instance()?;
    d.finish()?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::tuple;

    fn sample() -> Instance {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Emp", vec!["name", "mgr"])
                .and_then(|r| r.with_key(vec!["name"]))
                .expect("schema"),
            RelSchema::new("Stats", vec![("id", AttrType::Int), ("ok", AttrType::Bool)])
                .expect("schema"),
        ])
        .expect("schema");
        let mut i = Instance::empty(schema);
        i.insert("Emp", Tuple::new(vec![Value::str("Alice"), Value::null(7)]))
            .expect("insert");
        i.insert(
            "Emp",
            Tuple::new(vec![
                Value::str("Bob"),
                Value::skolem("f", vec![Value::str("Bob"), Value::null(2)]),
            ]),
        )
        .expect("insert");
        i.insert("Stats", tuple![3i64, true]).expect("insert");
        i
    }

    #[test]
    fn instance_round_trips_bit_identically() {
        let inst = sample();
        let bytes = encode_instance(&inst);
        let back = decode_instance(&bytes, "test").expect("decode");
        assert_eq!(back, inst);
        assert_eq!(back.nulls(), inst.nulls(), "null ids are stable");
        // Deterministic: encoding the decoded instance is byte-equal.
        assert_eq!(encode_instance(&back), bytes);
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let bytes = encode_instance(&sample());
        for n in 0..bytes.len() {
            match decode_instance(&bytes[..n], "test") {
                Err(StoreError::Corrupt { .. }) => {}
                Ok(_) => panic!("prefix of {n} bytes decoded successfully"),
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
    }

    #[test]
    fn huge_counts_do_not_allocate() {
        // A count of u32::MAX with a near-empty buffer must be
        // rejected by the plausibility check, not attempted.
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert!(matches!(d.get_schema(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_instance(&sample());
        bytes.push(0);
        assert!(matches!(
            decode_instance(&bytes, "test"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
