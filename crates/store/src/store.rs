//! The on-disk store: a directory holding everything needed to finish
//! an interrupted chase.
//!
//! ```text
//! <dir>/store.meta    framed: mode byte + mapping source text
//! <dir>/source.bin    framed: the source instance
//! <dir>/snapshot.bin  framed: ChaseState at the last snapshot round
//! <dir>/wal.log       header + one record per committed round since
//! ```
//!
//! Durability protocol: every committed round is appended to the WAL
//! (and fsynced) *before* the chase proceeds; every `snapshot_every`
//! rounds the full state is snapshotted (temp + fsync + rename + dir
//! fsync) and only *then* is the WAL truncated. A crash between
//! rename and truncate leaves stale records — recovery skips records
//! at or below the snapshot round. See DESIGN.md §9.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::blob;
use crate::codec::{Decoder, Encoder};
use crate::error::StoreError;
use crate::snapshot::{self, ChaseState};
use crate::wal::{self, WalRecord};
use dex_chase::{Checkpoint, CheckpointSink};
use dex_relational::fail::{self, FailAction};
use dex_relational::Instance;

/// Magic bytes opening `store.meta`.
pub const META_MAGIC: &[u8; 8] = b"DEXMETA1";
/// Magic bytes opening `source.bin`.
pub const SOURCE_MAGIC: &[u8; 8] = b"DEXSRC01";

/// File name of the store metadata.
pub const META_FILE: &str = "store.meta";
/// File name of the persisted source instance.
pub const SOURCE_FILE: &str = "source.bin";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "wal.log";

/// Which engine produced the store — decides how `dexcli resume`
/// re-runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// A chase run (`dexcli chase --store`): round-granular resume.
    Chase,
    /// A lens-pipeline exchange (`dexcli exchange --store`): the
    /// pipeline is not round-based, so resume re-runs it whole.
    Exchange,
}

impl StoreMode {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            StoreMode::Chase => 0,
            StoreMode::Exchange => 1,
        }
    }

    fn from_byte(b: u8, file: &str) -> Result<Self, StoreError> {
        match b {
            0 => Ok(StoreMode::Chase),
            1 => Ok(StoreMode::Exchange),
            b => Err(StoreError::corrupt(
                file,
                0,
                format!("unknown store mode {b}"),
            )),
        }
    }
}

/// Tunables for a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Snapshot (and truncate the WAL) every this many committed
    /// rounds. The WAL still makes *every* round durable; this only
    /// bounds recovery replay length.
    pub snapshot_every: u64,
    /// fsync after every append/snapshot. Disable only in tests and
    /// benchmarks — without it a crash can lose acknowledged rounds.
    pub sync: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            snapshot_every: 64,
            sync: true,
        }
    }
}

/// State recovered from a store after a restart.
#[derive(Debug)]
pub struct Recovered {
    /// The chase position as of the last committed round on disk.
    pub state: ChaseState,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Stale records skipped (round ≤ snapshot round — a crash hit
    /// between snapshot rename and WAL truncation).
    pub skipped_stale: usize,
    /// Whether the WAL had a torn tail beyond the valid prefix.
    pub wal_torn: bool,
}

/// A crash-safe store directory, open for reading and appending.
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    mode: StoreMode,
    mapping_text: String,
    last_snapshot_round: u64,
}

impl Store {
    /// Create a fresh store in `dir` (created if absent), persisting
    /// the mapping text and source instance. Refuses to overwrite an
    /// existing store.
    pub fn create(
        dir: &Path,
        mode: StoreMode,
        mapping_text: &str,
        source: &Instance,
        opts: StoreOptions,
    ) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(StoreError::io(format!("create {}", dir.display())))?;
        if dir.join(META_FILE).exists() {
            return Err(StoreError::StoreExists {
                dir: dir.to_path_buf(),
            });
        }

        let mut e = Encoder::new();
        e.put_u8(mode.to_byte());
        e.put_str(mapping_text);
        write_plain(
            &dir.join(META_FILE),
            &blob::frame(META_MAGIC, &e.into_bytes()),
            opts.sync,
        )?;

        let mut e = Encoder::new();
        e.put_instance(source);
        write_plain(
            &dir.join(SOURCE_FILE),
            &blob::frame(SOURCE_MAGIC, &e.into_bytes()),
            opts.sync,
        )?;

        write_plain(&dir.join(WAL_FILE), &wal::header_bytes(), opts.sync)?;
        if opts.sync {
            snapshot::sync_dir(dir)?;
        }

        Ok(Store {
            dir: dir.to_path_buf(),
            opts,
            mode,
            mapping_text: mapping_text.to_string(),
            last_snapshot_round: 0,
        })
    }

    /// Open an existing store in `dir`.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self, StoreError> {
        let meta_path = dir.join(META_FILE);
        let bytes = match fs::read(&meta_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotAStore {
                    dir: dir.to_path_buf(),
                })
            }
            Err(e) => return Err(StoreError::io(format!("read {META_FILE}"))(e)),
        };
        let payload = blob::unframe(META_MAGIC, &bytes, META_FILE)?;
        let mut d = Decoder::new(payload, META_FILE);
        let mode = StoreMode::from_byte(d.get_u8("store mode")?, META_FILE)?;
        let mapping_text = d.get_str("mapping text")?;
        d.finish()?;
        let last_snapshot_round = snapshot::read(dir)?.map_or(0, |s| s.round);
        Ok(Store {
            dir: dir.to_path_buf(),
            opts,
            mode,
            mapping_text,
            last_snapshot_round,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Which engine produced this store.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The mapping source text persisted at creation.
    pub fn mapping_text(&self) -> &str {
        &self.mapping_text
    }

    /// Load the persisted source instance.
    pub fn source(&self) -> Result<Instance, StoreError> {
        let bytes = fs::read(self.dir.join(SOURCE_FILE))
            .map_err(StoreError::io(format!("read {SOURCE_FILE}")))?;
        let payload = blob::unframe(SOURCE_MAGIC, &bytes, SOURCE_FILE)?;
        let mut d = Decoder::new(payload, SOURCE_FILE);
        let inst = d.get_instance()?;
        d.finish()?;
        Ok(inst)
    }

    /// Reconstruct the last committed chase position: load the
    /// snapshot, then replay the WAL's valid prefix on top of it.
    ///
    /// Returns `None` when no snapshot exists yet (the run crashed
    /// before its first checkpoint) — the caller restarts from the
    /// persisted source. Stale records (round ≤ snapshot round) are
    /// skipped; a round gap or torn tail ends the replay at the last
    /// committed round before it.
    pub fn recover(&self) -> Result<Option<Recovered>, StoreError> {
        let Some(mut state) = snapshot::read(&self.dir)? else {
            return Ok(None);
        };
        let wal_path = self.dir.join(WAL_FILE);
        let scan = match fs::read(&wal_path) {
            Ok(bytes) => wal::scan(&bytes, WAL_FILE)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Some(Recovered {
                    state,
                    replayed_records: 0,
                    skipped_stale: 0,
                    wal_torn: false,
                }))
            }
            Err(e) => return Err(StoreError::io(format!("read {WAL_FILE}"))(e)),
        };

        let mut replayed = 0usize;
        let mut stale = 0usize;
        for rec in scan.records {
            if rec.round() <= state.round {
                stale += 1;
                continue;
            }
            if rec.round() != state.round + 1 {
                // A gap means the records beyond it belong to a
                // different lineage; stop at the last contiguous round.
                break;
            }
            match rec {
                WalRecord::Delta {
                    round,
                    next_null,
                    batches,
                } => {
                    for (name, tuples) in batches {
                        for t in tuples {
                            state.instance.insert(name.as_str(), t).map_err(|e| {
                                StoreError::corrupt(
                                    WAL_FILE,
                                    0,
                                    format!("replaying round {round} into `{name}`: {e}"),
                                )
                            })?;
                        }
                    }
                    state.round = round;
                    state.next_null = next_null;
                }
                WalRecord::Full {
                    round,
                    next_null,
                    instance,
                } => {
                    state.instance = instance;
                    state.round = round;
                    state.next_null = next_null;
                }
            }
            replayed += 1;
        }
        Ok(Some(Recovered {
            state,
            replayed_records: replayed,
            skipped_stale: stale,
            wal_torn: scan.torn,
        }))
    }

    /// Make `state` the new durable baseline before resuming: snapshot
    /// it and truncate the WAL. Idempotent — safe to re-run if the
    /// process crashes between recovery and resumption.
    pub fn prepare_resume(&mut self, state: &ChaseState) -> Result<(), StoreError> {
        snapshot::write(&self.dir, state, self.opts.sync)?;
        self.last_snapshot_round = state.round;
        self.truncate_wal()
    }

    /// Persist one chase checkpoint. Round 0 (the phase-1 output) and
    /// the final fixpoint become snapshots; every other round is a WAL
    /// append, with a periodic snapshot every
    /// [`StoreOptions::snapshot_every`] rounds.
    pub fn record_checkpoint(&mut self, cp: &Checkpoint<'_>) -> Result<(), StoreError> {
        let state = ChaseState {
            instance: cp.target.clone(),
            round: cp.round,
            next_null: cp.next_null,
            complete: cp.complete,
        };
        if cp.complete || cp.round == 0 {
            snapshot::write(&self.dir, &state, self.opts.sync)?;
            self.last_snapshot_round = cp.round;
            return self.truncate_wal();
        }

        let rec = match &cp.delta {
            Some(batches) => WalRecord::Delta {
                round: cp.round,
                next_null: cp.next_null,
                batches: batches.clone(),
            },
            // An egd merge rewrote the instance in place; no delta
            // batch can express that, so log the full state.
            None => WalRecord::Full {
                round: cp.round,
                next_null: cp.next_null,
                instance: cp.target.clone(),
            },
        };
        self.append_wal(&wal::encode_record(&rec))?;

        if cp.round - self.last_snapshot_round >= self.opts.snapshot_every {
            snapshot::write(&self.dir, &state, self.opts.sync)?;
            self.last_snapshot_round = cp.round;
            self.truncate_wal()?;
        }
        Ok(())
    }

    fn append_wal(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.dir.join(WAL_FILE);
        let mut f = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(StoreError::io(format!("open {WAL_FILE} for append")))?;
        if let Some(action) = fail::hit_io("store.wal_append") {
            if let FailAction::ShortWrite(n) = action {
                // Torn write: a prefix of the record reaches the disk
                // before the "crash".
                let n = (n as usize).min(bytes.len());
                let _ = f.write_all(&bytes[..n]);
                let _ = f.sync_all();
            }
            return Err(StoreError::Injected {
                site: "store.wal_append".into(),
            });
        }
        f.write_all(bytes)
            .map_err(StoreError::io(format!("append {WAL_FILE}")))?;
        if self.opts.sync {
            f.sync_all()
                .map_err(StoreError::io(format!("fsync {WAL_FILE}")))?;
        }
        Ok(())
    }

    /// Reset the WAL to an empty (header-only) file. Called only
    /// *after* a snapshot is durable, so the records being dropped are
    /// all at or below the snapshot round.
    fn truncate_wal(&mut self) -> Result<(), StoreError> {
        write_plain(
            &self.dir.join(WAL_FILE),
            &wal::header_bytes(),
            self.opts.sync,
        )
    }
}

/// A [`CheckpointSink`] persisting every checkpoint into a [`Store`].
pub struct StoreSink<'a> {
    store: &'a mut Store,
}

impl<'a> StoreSink<'a> {
    /// Sink checkpoints into `store`.
    pub fn new(store: &'a mut Store) -> Self {
        StoreSink { store }
    }
}

impl CheckpointSink for StoreSink<'_> {
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
        self.store.record_checkpoint(&cp).map_err(|e| e.to_string())
    }
}

/// Create-and-write a whole file (no fail-point site).
pub(crate) fn write_plain(path: &Path, bytes: &[u8], sync: bool) -> Result<(), StoreError> {
    let ctx = || format!("write {}", path.display());
    let mut f = fs::File::create(path).map_err(StoreError::io(ctx()))?;
    f.write_all(bytes).map_err(StoreError::io(ctx()))?;
    if sync {
        f.sync_all().map_err(StoreError::io(ctx()))?;
    }
    Ok(())
}

/// Create-and-write a whole file through the `site` fail point:
/// an armed `ShortWrite(n)` leaves an `n`-byte prefix on disk (the
/// torn file a crash mid-write would leave) before erroring.
pub(crate) fn write_file_faulted(
    path: &Path,
    site: &str,
    bytes: &[u8],
    sync: bool,
) -> Result<(), StoreError> {
    let ctx = || format!("write {}", path.display());
    let mut f = fs::File::create(path).map_err(StoreError::io(ctx()))?;
    if let Some(action) = fail::hit_io(site) {
        if let FailAction::ShortWrite(n) = action {
            let n = (n as usize).min(bytes.len());
            let _ = f.write_all(&bytes[..n]);
            let _ = f.sync_all();
        }
        return Err(StoreError::Injected { site: site.into() });
    }
    f.write_all(bytes).map_err(StoreError::io(ctx()))?;
    if sync {
        f.sync_all().map_err(StoreError::io(ctx()))?;
    }
    Ok(())
}
