//! Write-ahead log of chase checkpoints.
//!
//! The unit of logging is one committed chase round: either the round's
//! delta batches (the tuples `insert_delta`/`drain_deltas` moved that
//! round) or — for rounds an egd merge rewrote, which no delta batch
//! can represent — the full instance. Records are individually
//! checksummed, so recovery replays the longest valid prefix and
//! treats everything after the first bad length or checksum as a torn
//! tail from a crashed append.
//!
//! ```text
//! file   = header | record*
//! header = "DEXWAL1\0" | version u32 | reserved u32          (16 bytes)
//! record = len u32 | crc32(payload) u32 | payload            (8 + len)
//! payload = kind u8 | round u64 | next_null u64 | body
//!   kind 1 (Delta): nbatches u32, then per batch
//!                   name | ntuples u32 | tuple*
//!   kind 2 (Full):  instance
//! ```

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::error::StoreError;
use dex_relational::{Instance, Name, Tuple};

/// Magic bytes opening `wal.log`.
pub const WAL_MAGIC: &[u8; 8] = b"DEXWAL1\0";

/// Byte length of the WAL header.
pub const WAL_HEADER_LEN: usize = 16;

/// Cap on a single record's payload (1 GiB) — a length field above
/// this is corruption, not data, and must not drive an allocation.
const MAX_RECORD_LEN: u32 = 1 << 30;

const KIND_DELTA: u8 = 1;
const KIND_FULL: u8 = 2;

/// One committed chase round, as logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A round fully described by its delta batches: applying them to
    /// the previous round's instance reproduces this round's.
    Delta {
        /// Round number this record commits.
        round: u64,
        /// Null-generator position after the round.
        next_null: u64,
        /// Per-relation inserted tuples, in relation-name order.
        batches: Vec<(Name, Vec<Tuple>)>,
    },
    /// A round that rewrote the instance (egd merge): the full state.
    Full {
        /// Round number this record commits.
        round: u64,
        /// Null-generator position after the round.
        next_null: u64,
        /// The complete instance after the round.
        instance: Instance,
    },
}

impl WalRecord {
    /// The round this record commits.
    pub fn round(&self) -> u64 {
        match self {
            WalRecord::Delta { round, .. } | WalRecord::Full { round, .. } => *round,
        }
    }

    /// The null-generator position after this round.
    pub fn next_null(&self) -> u64 {
        match self {
            WalRecord::Delta { next_null, .. } | WalRecord::Full { next_null, .. } => *next_null,
        }
    }
}

/// The 16-byte WAL file header.
pub fn header_bytes() -> Vec<u8> {
    let mut h = Vec::with_capacity(WAL_HEADER_LEN);
    h.extend_from_slice(WAL_MAGIC);
    h.extend_from_slice(&crate::blob::FORMAT_VERSION.to_le_bytes());
    h.extend_from_slice(&0u32.to_le_bytes());
    h
}

/// Encode one record, framed and checksummed, ready to append.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    match rec {
        WalRecord::Delta {
            round,
            next_null,
            batches,
        } => {
            e.put_u8(KIND_DELTA);
            e.put_u64(*round);
            e.put_u64(*next_null);
            e.put_u32(batches.len() as u32);
            for (name, tuples) in batches {
                e.put_str(name.as_str());
                e.put_u32(tuples.len() as u32);
                for t in tuples {
                    e.put_tuple(t);
                }
            }
        }
        WalRecord::Full {
            round,
            next_null,
            instance,
        } => {
            e.put_u8(KIND_FULL);
            e.put_u64(*round);
            e.put_u64(*next_null);
            e.put_instance(instance);
        }
    }
    let payload = e.into_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8], file: &str) -> Result<WalRecord, StoreError> {
    let mut d = Decoder::new(payload, file);
    let kind = d.get_u8("record kind")?;
    let round = d.get_u64("record round")?;
    let next_null = d.get_u64("record next_null")?;
    let rec = match kind {
        KIND_DELTA => {
            let nbatches = d.get_u32("batch count")? as usize;
            if nbatches > payload.len() {
                return Err(StoreError::corrupt(
                    file,
                    d.offset(),
                    "implausible batch count",
                ));
            }
            let mut batches = Vec::with_capacity(nbatches);
            for _ in 0..nbatches {
                let name = Name::new(d.get_str("batch relation name")?);
                let ntuples = d.get_u32("batch tuple count")? as usize;
                if ntuples > payload.len() {
                    return Err(StoreError::corrupt(
                        file,
                        d.offset(),
                        "implausible tuple count",
                    ));
                }
                let mut tuples = Vec::with_capacity(ntuples);
                for _ in 0..ntuples {
                    tuples.push(d.get_tuple()?);
                }
                batches.push((name, tuples));
            }
            WalRecord::Delta {
                round,
                next_null,
                batches,
            }
        }
        KIND_FULL => WalRecord::Full {
            round,
            next_null,
            instance: d.get_instance()?,
        },
        k => {
            return Err(StoreError::corrupt(
                file,
                0,
                format!("unknown record kind {k}"),
            ));
        }
    };
    d.finish()?;
    Ok(rec)
}

/// Result of scanning a WAL file's bytes.
#[derive(Debug)]
pub struct WalScan {
    /// Records in the longest valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of header plus all valid records — the truncation
    /// point `fsck --repair` cuts back to.
    pub valid_bytes: u64,
    /// Total bytes in the file.
    pub total_bytes: u64,
    /// Whether bytes after the valid prefix exist (a torn append).
    pub torn: bool,
}

/// Scan WAL bytes, validating the header and every record checksum.
///
/// A bad header is a hard error (the file is not a WAL). A bad record
/// mid-file ends the scan: everything before it is the recovered
/// prefix, everything from it on is a torn tail. This is the
/// replay-to-last-valid-prefix rule — a crash mid-append must never
/// poison the committed rounds before it.
pub fn scan(bytes: &[u8], file: &str) -> Result<WalScan, StoreError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(StoreError::corrupt(
            file,
            bytes.len(),
            format!("file too short for WAL header ({} bytes)", bytes.len()),
        ));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::corrupt(file, 0, "bad WAL magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != crate::blob::FORMAT_VERSION {
        return Err(StoreError::corrupt(
            file,
            8,
            format!("unsupported WAL version {version}"),
        ));
    }
    if bytes[12..WAL_HEADER_LEN] != [0, 0, 0, 0] {
        return Err(StoreError::corrupt(
            file,
            12,
            "reserved header bytes not zero",
        ));
    }

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = false;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN || rest.len() < 8 + len as usize {
            torn = true;
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        match decode_payload(payload, file) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                // Checksum passed but the payload is malformed — treat
                // as torn rather than failing recovery outright.
                torn = true;
                break;
            }
        }
        pos += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_bytes: pos as u64,
        total_bytes: bytes.len() as u64,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema};

    fn records() -> Vec<WalRecord> {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("T", vec!["a", "b"]).expect("schema")
        ])
        .expect("schema");
        let mut inst = Instance::empty(schema);
        inst.insert("T", tuple!["x", "y"]).expect("insert");
        vec![
            WalRecord::Delta {
                round: 1,
                next_null: 3,
                batches: vec![(Name::new("T"), vec![tuple!["x", "y"]])],
            },
            WalRecord::Full {
                round: 2,
                next_null: 5,
                instance: inst,
            },
            WalRecord::Delta {
                round: 3,
                next_null: 5,
                batches: Vec::new(),
            },
        ]
    }

    fn wal_bytes(recs: &[WalRecord]) -> Vec<u8> {
        let mut bytes = header_bytes();
        for r in recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn full_file_scans_cleanly() {
        let recs = records();
        let bytes = wal_bytes(&recs);
        let scan = scan(&bytes, "wal.log").expect("scan");
        assert_eq!(scan.records, recs);
        assert!(!scan.torn);
        assert_eq!(scan.valid_bytes, bytes.len() as u64);
    }

    #[test]
    fn truncation_anywhere_yields_a_valid_prefix() {
        let recs = records();
        let bytes = wal_bytes(&recs);
        for n in WAL_HEADER_LEN..bytes.len() {
            let s = scan(&bytes[..n], "wal.log").expect("scan");
            assert!(s.records.len() <= recs.len());
            assert_eq!(s.records, recs[..s.records.len()], "prefix at {n}");
            assert_eq!(s.torn, n as u64 != s.valid_bytes, "torn flag at {n}");
        }
    }

    #[test]
    fn bit_flip_in_a_record_stops_the_scan_there() {
        let recs = records();
        let bytes = wal_bytes(&recs);
        // Flip a byte inside the second record's payload.
        let first_len = encode_record(&recs[0]).len();
        let mut bad = bytes.clone();
        let idx = WAL_HEADER_LEN + first_len + 12;
        bad[idx] ^= 0xFF;
        let s = scan(&bad, "wal.log").expect("scan");
        assert_eq!(s.records, recs[..1]);
        assert!(s.torn);
        assert_eq!(s.valid_bytes as usize, WAL_HEADER_LEN + first_len);
    }

    #[test]
    fn bad_header_is_a_hard_error() {
        assert!(matches!(
            scan(b"junk", "wal.log"),
            Err(StoreError::Corrupt { .. })
        ));
        let mut bytes = wal_bytes(&records());
        bytes[0] ^= 1;
        assert!(matches!(
            scan(&bytes, "wal.log"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
