//! Chase-agreement self-check for composition.
//!
//! [`compose`](crate::compose()) is an algebraic transformation; this
//! module is its independent referee. When the composition of
//! `M₁₂ : A → B` and `M₂₃ : B → C` comes out first-order (plain
//! st-tgds), the composed mapping *claims* to denote the same relation
//! as the two-step pipeline. [`verify_composition`] puts that claim to
//! the test by chasing a canonical family of source instances — the
//! critical instances of every premise on both sides — through both
//! routes:
//!
//! ```text
//!   crit(σ) ──chase M₁₂──▶ J ──chase M₂₃──▶ K_two_step
//!   crit(σ) ──────chase (M₁₂∘M₂₃)─────────▶ K_composed
//! ```
//!
//! and requiring `K_two_step` and `K_composed` to be homomorphically
//! equivalent. A disagreement is a *proof* of inequivalence — the
//! critical instance is a concrete counterexample source on which the
//! two routes produce non-interchangeable universal solutions — and is
//! what `dexcli compose --check` surfaces as `DEX604`. Agreement means
//! the two routes coincide on the entire critical-instance basis of
//! both mappings, the same instances the containment checker
//! (`dex-analyze`) uses as its decision basis for this fragment.
//!
//! The check returns `None` (undecidable, not "ok") when the
//! composition needed second-order quantification or a premise falls
//! outside the critical-instance fragment — refusal over false
//! confidence, the same posture as `DEX001`.

use crate::compose::Composition;
use dex_chase::{critical_instance, exchange};
use dex_logic::Mapping;
use dex_relational::{homomorphically_equivalent, Instance};

/// Outcome of [`verify_composition`] when the check is decidable.
#[derive(Clone, Debug)]
pub struct CompositionCheck {
    /// Number of critical instances chased through both routes.
    pub checked: usize,
    /// Did every instance agree (homomorphically equivalent results)?
    pub agreed: bool,
    /// On disagreement: the counterexample — the critical source
    /// instance plus both chase results, for independent re-checking.
    pub counterexample: Option<Box<CompositionCounterexample>>,
}

/// A concrete source instance on which the composed mapping and the
/// two-step chase produce homomorphically inequivalent targets.
#[derive(Clone, Debug)]
pub struct CompositionCounterexample {
    /// The critical source instance (over the A schema).
    pub source: Instance,
    /// Chase through `m12` then `m23`.
    pub two_step: Instance,
    /// Chase through the composed mapping directly.
    pub composed: Instance,
}

/// Check that a first-order [`Composition`] agrees with the two-step
/// chase on every critical instance of both mappings' premises.
///
/// Returns `None` when the question is outside the decidable fragment:
/// the composition is genuinely second-order (`st_tgds` is `None`), or
/// some premise has no critical instance (function terms). Otherwise
/// returns a [`CompositionCheck`]; `agreed == false` carries a
/// machine-checkable counterexample.
///
/// Both inputs are st-tgd-only (compose rejects target dependencies),
/// so every chase here terminates — no budget needed.
pub fn verify_composition(
    m12: &Mapping,
    m23: &Mapping,
    comp: &Composition,
) -> Option<CompositionCheck> {
    let composed = comp.clone().into_mapping()?;
    // Test basis: critical instances of the first mapping's premises
    // (exercising everything the pipeline can produce) and of the
    // composed mapping's premises (exercising everything the composed
    // rules can fire on).
    let mut basis: Vec<Instance> = Vec::new();
    for tgd in m12.st_tgds().iter().chain(composed.st_tgds()) {
        basis.push(critical_instance(&tgd.lhs, m12.source())?.instance);
    }
    let mut checked = 0usize;
    for src in basis {
        // st-tgd-only chases cannot fail (no egds), but stay honest:
        // treat an engine error as undecidable rather than agreement.
        let j = exchange(m12, &src).ok()?.target;
        let two_step = exchange(m23, &j).ok()?.target;
        let direct = exchange(&composed, &src).ok()?.target;
        checked += 1;
        if !homomorphically_equivalent(&two_step, &direct) {
            return Some(CompositionCheck {
                checked,
                agreed: false,
                counterexample: Some(Box::new(CompositionCounterexample {
                    source: src,
                    two_step,
                    composed: direct,
                })),
            });
        }
    }
    Some(CompositionCheck {
        checked,
        agreed: true,
        counterexample: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose;
    use dex_logic::parse_mapping;

    fn m(text: &str) -> Mapping {
        parse_mapping(text).unwrap()
    }

    #[test]
    fn correct_composition_agrees() {
        let m12 = m("source Emp(name, dept);\ntarget Mid(name, dept);\n\
                     Emp(x, d) -> Mid(x, d);");
        let m23 = m("source Mid(name, dept);\ntarget Out(name);\nMid(x, d) -> Out(x);");
        let comp = compose(&m12, &m23).unwrap();
        let check = verify_composition(&m12, &m23, &comp).unwrap();
        assert!(check.agreed, "compose output must pass its own referee");
        assert!(check.checked >= 2);
        assert!(check.counterexample.is_none());
    }

    #[test]
    fn tampered_composition_yields_counterexample() {
        let m12 = m("source Emp(name, dept);\ntarget Mid(name, dept);\n\
                     Emp(x, d) -> Mid(x, d);");
        let m23 = m("source Mid(name, dept);\ntarget Out(name);\nMid(x, d) -> Out(x);");
        let mut comp = compose(&m12, &m23).unwrap();
        // Sabotage: drop every composed rule. The composition now
        // produces nothing, while the two-step chase produces Out.
        comp.st_tgds = Some(Vec::new());
        // An empty rule set has no critical instances of its own, but
        // m12's premises still populate the basis.
        let check = verify_composition(&m12, &m23, &comp).unwrap();
        assert!(!check.agreed);
        let cx = check.counterexample.unwrap();
        assert!(!homomorphically_equivalent(&cx.two_step, &cx.composed));
    }

    #[test]
    fn second_order_composition_is_undecidable() {
        let m12 = m("source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);");
        let m23 = m("source Manager(emp, mgr);\ntarget SelfMngr(emp);\n\
                     Manager(x, x) -> SelfMngr(x);");
        let comp = compose(&m12, &m23).unwrap();
        assert!(comp.st_tgds.is_none());
        assert!(verify_composition(&m12, &m23, &comp).is_none());
    }
}
