//! Operator failure modes.

use std::fmt;

/// Errors raised by mapping-management operators.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpsError {
    /// The two mappings do not share the middle schema.
    SchemaChainMismatch {
        /// Description of what differed.
        detail: String,
    },
    /// The mapping falls outside the fragment an operator supports.
    UnsupportedFragment {
        /// Which operator.
        operator: &'static str,
        /// Why the mapping is outside the fragment.
        reason: String,
    },
    /// An underlying relational error.
    Relational(dex_relational::RelationalError),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::SchemaChainMismatch { detail } => {
                write!(f, "cannot chain mappings: {detail}")
            }
            OpsError::UnsupportedFragment { operator, reason } => {
                write!(f, "{operator} does not support this mapping: {reason}")
            }
            OpsError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OpsError {}

impl From<dex_relational::RelationalError> for OpsError {
    fn from(e: dex_relational::RelationalError) -> Self {
        OpsError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = OpsError::UnsupportedFragment {
            operator: "maximum_recovery",
            reason: "multi-atom rhs".into(),
        };
        assert!(e.to_string().contains("maximum_recovery"));
    }
}
