//! # dex-ops — schema-mapping management operators
//!
//! The paper §2: “Two of the most fundamental operators on schema
//! mappings are **composition** and **inversion**.”
//!
//! * [`compose()`] implements Fagin–Kolaitis–Popa–Tan composition:
//!   skolemize both mappings into SO-tgds, unfold the second mapping's
//!   premises through the first mapping's conclusions, and simplify.
//!   The paper's Example 2 (`∃f …`) is reproduced verbatim by the
//!   tests. Full st-tgds compose back into st-tgds
//!   (de-skolemization), exhibiting the closure result the paper cites.
//! * [`maximum_recovery`] implements the recovery construction for the
//!   supported fragment (single-atom, repeat-free right-hand sides):
//!   each target relation's rule collects the source premises of every
//!   tgd producing it as a **disjunction** — Example 3's
//!   `Parent(x,y) → Father(x,y) ∨ Mother(x,y)` falls out.
//! * Bounded checkers ([`is_recovery_witness`],
//!   [`not_invertible_witness`]) make the negative results executable:
//!   the naive flip is *not* a recovery; Example 3's mapping is *not*
//!   Fagin-invertible.
//! * [`verify_composition`] is the composition's independent referee:
//!   it chases the critical instances of both mappings through the
//!   two-step pipeline and through the composed mapping and demands
//!   homomorphically equivalent results — surfaced as `DEX604` by
//!   `dexcli compose --check`.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod compose;
pub mod error;
pub mod inverse;
pub mod verify;

pub use compose::{compose, Composition};
pub use error::OpsError;
pub use inverse::{
    is_recovery_witness, is_recovery_witness_governed, maximum_recovery, not_invertible_witness,
    not_invertible_witness_governed, MaxRecovery,
};
pub use verify::{verify_composition, CompositionCheck, CompositionCounterexample};
