//! Inversion of schema mappings: recoveries, maximum recoveries, and
//! Fagin-invertibility witnesses.
//!
//! The paper's Example 3: inverting `Father(x,y) → Parent(x,y)` and
//! `Mother(x,y) → Parent(x,y)` requires a **disjunction** —
//! `Parent(x,y) → Father(x,y) ∨ Mother(x,y)` — and even then the
//! inverse “loses information”. This module makes those statements
//! executable:
//!
//! * [`maximum_recovery`] builds the disjunctive recovery for the
//!   supported fragment (each tgd's right-hand side a single atom with
//!   distinct variables),
//! * [`is_recovery_witness`] checks the recovery property on concrete
//!   source instances (via the canonical universal solution),
//! * [`not_invertible_witness`] exhibits Fagin-non-invertibility: two
//!   different sources with homomorphically equivalent solution spaces.

use crate::error::OpsError;
use dex_chase::{exchange, exchange_governed, ChaseOptions, ChaseOutcome};
use dex_logic::{Atom, DisjTgd, Mapping, Term};
use dex_relational::homomorphism::homomorphically_equivalent;
use dex_relational::{ExhaustionReport, Governor, Instance, Name};
use std::collections::BTreeMap;
use std::fmt;

/// A recovery mapping from the target schema back to the source
/// schema, expressed as disjunctive tgds.
#[derive(Clone, Debug)]
pub struct MaxRecovery {
    /// One rule per produced target relation.
    pub rules: Vec<DisjTgd>,
    /// The recovery's source schema (= the original mapping's target).
    pub source: dex_relational::Schema,
    /// The recovery's target schema (= the original mapping's source).
    pub target: dex_relational::Schema,
}

impl MaxRecovery {
    /// Does the pair `(J, I)` satisfy every recovery rule?
    pub fn satisfied_by(&self, j: &Instance, i: &Instance) -> bool {
        self.rules.iter().all(|r| r.satisfied_by(j, i))
    }
}

impl fmt::Display for MaxRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Build the maximum recovery of `m` for the supported fragment.
///
/// Fragment: every st-tgd's right-hand side is a **single atom whose
/// arguments are distinct variables** (LAV-with-existentials and
/// GAV-to-one-atom shapes; covers the paper's Examples 1 and 3).
/// Mappings outside the fragment are rejected with
/// [`OpsError::UnsupportedFragment`] rather than silently
/// mis-inverted.
///
/// Construction (Arenas–Pérez–Riveros-style): for each target relation
/// `R(v₁ … vₖ)`, collect every tgd producing `R`; rewrite each tgd's
/// source premise over the canonical variables `v̄`; the rule is
/// `R(v̄) → premise₁ ∨ premise₂ ∨ …`. Existential variables of the
/// original tgd simply do not occur in the rewritten premise (they are
/// projected away — this is where the inverse “loses information”);
/// source-only variables become existential in the disjunct.
/// ```
/// use dex_logic::parse_mapping;
/// use dex_ops::maximum_recovery;
///
/// let m = parse_mapping(
///     "source Father(p, c);\nsource Mother(p, c);\ntarget Parent(p, c);\n\
///      Father(x, y) -> Parent(x, y);\nMother(x, y) -> Parent(x, y);",
/// ).unwrap();
/// let rec = maximum_recovery(&m).unwrap();
/// // The paper's Example 3: the disjunction is unavoidable.
/// assert_eq!(
///     rec.rules[0].to_string(),
///     "Parent(v0, v1) → Father(v0, v1) ∨ Mother(v0, v1)"
/// );
/// ```
pub fn maximum_recovery(m: &Mapping) -> Result<MaxRecovery, OpsError> {
    // Group tgds by produced relation.
    let mut by_rel: BTreeMap<Name, Vec<usize>> = BTreeMap::new();
    for (i, tgd) in m.st_tgds().iter().enumerate() {
        if tgd.rhs.len() != 1 {
            return Err(OpsError::UnsupportedFragment {
                operator: "maximum_recovery",
                reason: format!(
                    "tgd `{tgd}` has a multi-atom right-hand side; \
                     the implemented fragment requires a single target atom"
                ),
            });
        }
        let atom = &tgd.rhs[0];
        let mut seen = std::collections::BTreeSet::new();
        for t in &atom.args {
            match t {
                Term::Var(v) => {
                    if !seen.insert(v.clone()) {
                        return Err(OpsError::UnsupportedFragment {
                            operator: "maximum_recovery",
                            reason: format!(
                                "tgd `{tgd}` repeats variable `{v}` in its target atom; \
                                 repeated variables need per-disjunct equality guards"
                            ),
                        });
                    }
                }
                _ => {
                    return Err(OpsError::UnsupportedFragment {
                        operator: "maximum_recovery",
                        reason: format!("tgd `{tgd}` uses a non-variable target argument"),
                    });
                }
            }
        }
        by_rel.entry(atom.relation.clone()).or_default().push(i);
    }

    let mut rules = Vec::new();
    for (rel, tgd_idxs) in by_rel {
        let arity = m
            .target()
            .expect_relation(rel.as_str())
            .map_err(OpsError::Relational)?
            .arity();
        let head_vars: Vec<Name> = (0..arity).map(|i| Name::new(format!("v{i}"))).collect();
        let head = Atom::new(
            rel.clone(),
            head_vars.iter().map(|v| Term::Var(v.clone())).collect(),
        );
        let mut disjuncts = Vec::new();
        for (k, &ti) in tgd_idxs.iter().enumerate() {
            let tgd = &m.st_tgds()[ti];
            let atom = &tgd.rhs[0];
            // Canonicalize: tgd var at position i ↦ v_i; every other
            // source variable gets a disjunct-local fresh name.
            let mut subst: BTreeMap<Name, Term> = BTreeMap::new();
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    subst.insert(v.clone(), Term::Var(head_vars[i].clone()));
                }
            }
            let mut premise = Vec::new();
            for a in &tgd.lhs {
                // Freshen source-only variables with a disjunct prefix.
                let mut vars = Vec::new();
                a.collect_vars(&mut vars);
                let mut local = subst.clone();
                for v in vars {
                    local
                        .entry(v.clone())
                        .or_insert_with(|| Term::Var(Name::new(format!("w{k}_{v}"))));
                }
                premise.push(a.substitute(&local));
            }
            disjuncts.push(premise);
        }
        rules.push(DisjTgd::new(vec![head], disjuncts));
    }

    Ok(MaxRecovery {
        rules,
        source: m.target().clone(),
        target: m.source().clone(),
    })
}

/// Bounded recovery check: is `(chase(m, i), i)` accepted by the
/// candidate recovery for each sample source instance `i`?
///
/// `M'` is a *recovery* of `M` when every source instance is a
/// possible way back from its own exchange — operationally, the
/// canonical universal solution of `i` composed with `M'` must admit
/// `i`. A `false` result is a definite counterexample; `true` over the
/// samples is evidence (the property is ∀-quantified over instances).
pub fn is_recovery_witness(m: &Mapping, candidate: &MaxRecovery, samples: &[Instance]) -> bool {
    samples.iter().all(|i| match exchange(m, i) {
        Ok(res) => candidate.satisfied_by(&res.target, i),
        Err(_) => true, // failed exchanges have no solutions to recover
    })
}

/// [`is_recovery_witness`] with the nested chases run under a shared
/// [`Governor`]. When a budget or cancellation trips one of the nested
/// exchanges the property is *undecided* — the partial solution says
/// nothing about recovery — so the report is surfaced as `Err` instead
/// of guessing either way.
pub fn is_recovery_witness_governed(
    m: &Mapping,
    candidate: &MaxRecovery,
    samples: &[Instance],
    gov: &Governor,
) -> Result<bool, ExhaustionReport> {
    for i in samples {
        match exchange_governed(m, i, ChaseOptions::default(), gov) {
            Ok(ChaseOutcome::Complete(res)) => {
                if !candidate.satisfied_by(&res.target, i) {
                    return Ok(false);
                }
            }
            Ok(ChaseOutcome::Exhausted(e)) => return Err(e.report),
            Err(_) => {} // failed exchanges have no solutions to recover
        }
    }
    Ok(true)
}

/// Fagin-non-invertibility witness: two *different* source instances
/// whose canonical universal solutions are homomorphically equivalent
/// (hence with identical solution spaces). If this returns `true`, no
/// exact inverse of `m` exists.
pub fn not_invertible_witness(m: &Mapping, i1: &Instance, i2: &Instance) -> bool {
    if i1 == i2 {
        return false;
    }
    let (Ok(j1), Ok(j2)) = (exchange(m, i1), exchange(m, i2)) else {
        return false;
    };
    homomorphically_equivalent(&j1.target, &j2.target)
}

/// [`not_invertible_witness`] with the two nested chases run under a
/// shared [`Governor`]. `Err` carries the exhaustion report when a
/// budget tripped before both canonical solutions were materialized
/// (the witness is then undecided).
pub fn not_invertible_witness_governed(
    m: &Mapping,
    i1: &Instance,
    i2: &Instance,
    gov: &Governor,
) -> Result<bool, ExhaustionReport> {
    if i1 == i2 {
        return Ok(false);
    }
    let mut solutions = Vec::with_capacity(2);
    for i in [i1, i2] {
        match exchange_governed(m, i, ChaseOptions::default(), gov) {
            Ok(ChaseOutcome::Complete(res)) => solutions.push(res.target),
            Ok(ChaseOutcome::Exhausted(e)) => return Err(e.report),
            Err(_) => return Ok(false),
        }
    }
    Ok(homomorphically_equivalent(&solutions[0], &solutions[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;
    use dex_relational::tuple;

    fn parents_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        )
        .unwrap()
    }

    fn emp_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap()
    }

    /// Paper Example 3: the maximum recovery is the disjunctive tgd
    /// `Parent(x, y) → Father(x, y) ∨ Mother(x, y)`.
    #[test]
    fn example3_disjunctive_recovery() {
        let rec = maximum_recovery(&parents_mapping()).unwrap();
        assert_eq!(rec.rules.len(), 1);
        assert_eq!(
            rec.rules[0].to_string(),
            "Parent(v0, v1) → Father(v0, v1) ∨ Mother(v0, v1)"
        );
    }

    /// Both I₁ = {Father(Leslie, Alice)} and I₂ = {Mother(Leslie,
    /// Alice)} are equally good solutions under the recovery (paper:
    /// “equally good as solutions for J”).
    #[test]
    fn example3_both_sources_admissible() {
        let m = parents_mapping();
        let rec = maximum_recovery(&m).unwrap();
        let j = Instance::with_facts(
            m.target().clone(),
            vec![("Parent", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        let i1 = Instance::with_facts(
            m.source().clone(),
            vec![("Father", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        let i2 = Instance::with_facts(
            m.source().clone(),
            vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        assert!(rec.satisfied_by(&j, &i1));
        assert!(rec.satisfied_by(&j, &i2));
        let neither = Instance::empty(m.source().clone());
        assert!(!rec.satisfied_by(&j, &neither));
    }

    /// The recovery property holds on sampled sources.
    #[test]
    fn recovery_property_on_samples() {
        let m = parents_mapping();
        let rec = maximum_recovery(&m).unwrap();
        let samples = vec![
            Instance::empty(m.source().clone()),
            Instance::with_facts(
                m.source().clone(),
                vec![("Father", vec![tuple!["Leslie", "Alice"]])],
            )
            .unwrap(),
            Instance::with_facts(
                m.source().clone(),
                vec![
                    ("Father", vec![tuple!["Leslie", "Alice"]]),
                    (
                        "Mother",
                        vec![tuple!["Robin", "Sam"], tuple!["Robin", "Alex"]],
                    ),
                ],
            )
            .unwrap(),
        ];
        assert!(is_recovery_witness(&m, &rec, &samples));
    }

    /// The naive flip (requiring BOTH Father and Mother) is *not* a
    /// recovery — the direction the paper warns against.
    #[test]
    fn naive_flip_is_not_a_recovery() {
        let m = parents_mapping();
        // Flip: Parent(x,y) -> Father(x,y); Parent(x,y) -> Mother(x,y).
        let flip = MaxRecovery {
            rules: vec![
                DisjTgd::new(
                    vec![Atom::vars("Parent", &["x", "y"])],
                    vec![vec![Atom::vars("Father", &["x", "y"])]],
                ),
                DisjTgd::new(
                    vec![Atom::vars("Parent", &["x", "y"])],
                    vec![vec![Atom::vars("Mother", &["x", "y"])]],
                ),
            ],
            source: m.target().clone(),
            target: m.source().clone(),
        };
        let samples = vec![Instance::with_facts(
            m.source().clone(),
            vec![("Father", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap()];
        assert!(!is_recovery_witness(&m, &flip, &samples));
    }

    /// Example 3's mapping is not Fagin-invertible: Father-only and
    /// Mother-only sources are indistinguishable from the target side.
    #[test]
    fn example3_not_invertible() {
        let m = parents_mapping();
        let i1 = Instance::with_facts(
            m.source().clone(),
            vec![("Father", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        let i2 = Instance::with_facts(
            m.source().clone(),
            vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        assert!(not_invertible_witness(&m, &i1, &i2));
    }

    /// Example 1's recovery: `Manager(v0, v1) → Emp(v0)` — the
    /// existential manager is projected away (information loss made
    /// visible).
    #[test]
    fn example1_recovery_projects_existential() {
        let m = emp_mapping();
        let rec = maximum_recovery(&m).unwrap();
        assert_eq!(rec.rules.len(), 1);
        assert_eq!(rec.rules[0].to_string(), "Manager(v0, v1) → Emp(v0)");
        let samples = vec![Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap()];
        assert!(is_recovery_witness(&m, &rec, &samples));
    }

    /// A lossless renaming mapping *is* invertible: the witness test
    /// cannot find equivalent solutions for different sources.
    #[test]
    fn lossless_mapping_distinguishes_sources() {
        let m = parse_mapping(
            r#"
            source A(x, y);
            target B(x, y);
            A(u, v) -> B(u, v);
            "#,
        )
        .unwrap();
        let i1 = Instance::with_facts(m.source().clone(), vec![("A", vec![tuple![1i64, 2i64]])])
            .unwrap();
        let i2 = Instance::with_facts(m.source().clone(), vec![("A", vec![tuple![3i64, 4i64]])])
            .unwrap();
        assert!(!not_invertible_witness(&m, &i1, &i2));
        assert!(!not_invertible_witness(&m, &i1, &i1), "equal instances");
    }

    /// Source-only variables stay existential in the recovery
    /// disjunct.
    #[test]
    fn source_only_vars_become_existential() {
        let m = parse_mapping(
            r#"
            source Person(id, name, age);
            target Names(name);
            Person(i, n, a) -> Names(n);
            "#,
        )
        .unwrap();
        let rec = maximum_recovery(&m).unwrap();
        assert_eq!(
            rec.rules[0].to_string(),
            "Names(v0) → Person(w0_i, v0, w0_a)"
        );
        // Behaviour: any person with that name is an acceptable
        // recovery.
        let j = Instance::with_facts(m.target().clone(), vec![("Names", vec![tuple!["Alice"]])])
            .unwrap();
        let i = Instance::with_facts(
            m.source().clone(),
            vec![("Person", vec![tuple![7i64, "Alice", 30i64]])],
        )
        .unwrap();
        assert!(rec.satisfied_by(&j, &i));
    }

    /// Fragment boundaries are reported, not mis-handled.
    #[test]
    fn unsupported_fragments_rejected() {
        let multi = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        assert!(matches!(
            maximum_recovery(&multi).unwrap_err(),
            OpsError::UnsupportedFragment { .. }
        ));
        let repeated = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, x);
            "#,
        )
        .unwrap();
        assert!(matches!(
            maximum_recovery(&repeated).unwrap_err(),
            OpsError::UnsupportedFragment { .. }
        ));
    }
}
