//! Composition of schema mappings (Fagin, Kolaitis, Popa, Tan —
//! “Composing schema mappings: second-order dependencies to the
//! rescue”, the paper's \[12\]).

use crate::error::OpsError;
use dex_logic::{Atom, Mapping, SoClause, SoTgd, StTgd, Term};
use dex_relational::Name;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The result of composing two mappings `M₁₂ : A → B` and
/// `M₂₃ : B → C`.
#[derive(Clone, Debug)]
pub struct Composition {
    /// The composed dependency, as an SO-tgd from A to C.
    pub sotgd: SoTgd,
    /// If the composition is expressible by plain st-tgds (no function
    /// symbols, no equalities — always the case when `M₁₂` is full),
    /// they are recovered here.
    pub st_tgds: Option<Vec<StTgd>>,
    /// The source (A) schema.
    pub source: dex_relational::Schema,
    /// The target (C) schema.
    pub target: dex_relational::Schema,
}

impl Composition {
    /// Wrap back into a [`Mapping`] when first-order expressible.
    pub fn into_mapping(self) -> Option<Mapping> {
        let tgds = self.st_tgds?;
        Mapping::new(self.source, self.target, tgds).ok()
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sotgd)
    }
}

/// Compose `m12 : A → B` with `m23 : B → C`.
///
/// Algorithm:
/// 1. Skolemize both mappings into SO-tgds (existential variables
///    become function terms over the frontier).
/// 2. For every clause of the second SO-tgd, replace each premise atom
///    `R(t̄)` (over B) by the body of each first-SO-tgd clause that can
///    produce `R`, adding equalities between `t̄` and the producing
///    atom's arguments. All combinations of producers yield one clause
///    each.
/// 3. Simplify: unify variable–variable equalities; inline
///    `y = f(x̄)` when `y` no longer occurs in premise atoms. What
///    remains are the genuinely second-order constraints — exactly the
///    `x = f(x)` of the paper's Example 2.
/// 4. If the result is function- and equality-free, de-skolemize back
///    to st-tgds (full st-tgds are closed under composition).
/// ```
/// use dex_logic::parse_mapping;
/// use dex_ops::compose;
///
/// let m12 = parse_mapping(
///     "source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);",
/// ).unwrap();
/// let m23 = parse_mapping(
///     "source Manager(emp, mgr);\ntarget Boss(emp, mgr);\ntarget SelfMngr(emp);\n\
///      Manager(x, y) -> Boss(x, y);\nManager(x, x) -> SelfMngr(x);",
/// ).unwrap();
/// let comp = compose(&m12, &m23).unwrap();
/// // The paper's Example 2, verbatim:
/// assert_eq!(
///     comp.to_string(),
///     "∃f [ ∀x (Emp(x) → Boss(x, f(x))) ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]"
/// );
/// assert!(comp.st_tgds.is_none()); // not first-order expressible
/// ```
pub fn compose(m12: &Mapping, m23: &Mapping) -> Result<Composition, OpsError> {
    if m12.target() != m23.source() {
        return Err(OpsError::SchemaChainMismatch {
            detail: format!(
                "first mapping's target and second mapping's source differ:\n{}\nvs\n{}",
                m12.target(),
                m23.source()
            ),
        });
    }
    if m12.has_target_deps() || m23.has_target_deps() {
        return Err(OpsError::UnsupportedFragment {
            operator: "compose",
            reason: "composition is defined here for st-tgd-only mappings \
                     (no target dependencies)"
                .into(),
        });
    }

    let so12 = m12.to_sotgd();
    let mut so23 = m23.to_sotgd();

    // Avoid function-symbol collisions: rename σ23's functions.
    let taken: BTreeSet<Name> = so12.functions.iter().map(|(n, _)| n.clone()).collect();
    let renames: BTreeMap<Name, Name> = so23
        .functions
        .iter()
        .filter(|(n, _)| taken.contains(n))
        .map(|(n, _)| (n.clone(), Name::new(format!("{n}_2"))))
        .collect();
    if !renames.is_empty() {
        so23 = rename_functions(&so23, &renames);
    }

    let mut out_clauses: Vec<SoClause> = Vec::new();
    for clause in &so23.clauses {
        // Producers for each premise atom.
        let mut producer_sets: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut feasible = true;
        for atom in &clause.lhs_atoms {
            let mut producers = Vec::new();
            for (ci, c12) in so12.clauses.iter().enumerate() {
                for (ai, ratom) in c12.rhs_atoms.iter().enumerate() {
                    if ratom.relation == atom.relation {
                        producers.push((ci, ai));
                    }
                }
            }
            if producers.is_empty() {
                feasible = false;
                break;
            }
            producer_sets.push(producers);
        }
        if !feasible {
            continue; // premise can never be satisfied; clause vacuous
        }
        // Cartesian product of producer choices.
        let mut choices: Vec<Vec<(usize, usize)>> = vec![vec![]];
        for ps in &producer_sets {
            let mut next = Vec::with_capacity(choices.len() * ps.len());
            for ch in &choices {
                for p in ps {
                    let mut c2 = ch.clone();
                    c2.push(*p);
                    next.push(c2);
                }
            }
            choices = next;
        }
        for choice in choices {
            let mut lhs_atoms: Vec<Atom> = Vec::new();
            let mut eqs: Vec<(Term, Term)> = clause.lhs_eqs.clone();
            for (bi, (ci, ai)) in choice.iter().enumerate() {
                let prefix = format!("u{bi}_");
                let c12 = &so12.clauses[*ci];
                for a in &c12.lhs_atoms {
                    lhs_atoms.push(a.prefix_vars(&prefix));
                }
                for (l, r) in &c12.lhs_eqs {
                    eqs.push((l.prefix_vars(&prefix), r.prefix_vars(&prefix)));
                }
                let produced = c12.rhs_atoms[*ai].prefix_vars(&prefix);
                let consumer = &clause.lhs_atoms[bi];
                for (t, s) in consumer.args.iter().zip(produced.args.iter()) {
                    if t != s {
                        eqs.push((t.clone(), s.clone()));
                    }
                }
            }
            let mut new_clause = SoClause::new(lhs_atoms, eqs, clause.rhs_atoms.clone());
            simplify_clause(&mut new_clause);
            out_clauses.push(new_clause);
        }
    }

    // Deduplicate identical clauses.
    let mut seen = BTreeSet::new();
    out_clauses.retain(|c| seen.insert(format!("{c}")));

    // Function symbols actually used.
    let mut used: BTreeSet<Name> = BTreeSet::new();
    for c in &out_clauses {
        for a in c.lhs_atoms.iter().chain(c.rhs_atoms.iter()) {
            for t in &a.args {
                collect_fn_names(t, &mut used);
            }
        }
        for (l, r) in &c.lhs_eqs {
            collect_fn_names(l, &mut used);
            collect_fn_names(r, &mut used);
        }
    }
    let functions: Vec<(Name, usize)> = so12
        .functions
        .iter()
        .chain(so23.functions.iter())
        .filter(|(n, _)| used.contains(n))
        .cloned()
        .collect();

    let sotgd = SoTgd::new(functions, out_clauses);
    let st_tgds = sotgd.try_into_st_tgds();
    Ok(Composition {
        sotgd,
        st_tgds,
        source: m12.source().clone(),
        target: m23.target().clone(),
    })
}

fn collect_fn_names(t: &Term, out: &mut BTreeSet<Name>) {
    if let Term::Func(f, args) = t {
        out.insert(f.clone());
        for a in args {
            collect_fn_names(a, out);
        }
    }
}

fn rename_functions(so: &SoTgd, renames: &BTreeMap<Name, Name>) -> SoTgd {
    fn go(t: &Term, renames: &BTreeMap<Name, Name>) -> Term {
        match t {
            Term::Func(f, args) => Term::Func(
                renames.get(f).cloned().unwrap_or_else(|| f.clone()),
                args.iter().map(|a| go(a, renames)).collect(),
            ),
            other => other.clone(),
        }
    }
    SoTgd::new(
        so.functions
            .iter()
            .map(|(n, k)| (renames.get(n).cloned().unwrap_or_else(|| n.clone()), *k))
            .collect(),
        so.clauses
            .iter()
            .map(|c| {
                SoClause::new(
                    c.lhs_atoms
                        .iter()
                        .map(|a| {
                            Atom::new(
                                a.relation.clone(),
                                a.args.iter().map(|t| go(t, renames)).collect(),
                            )
                        })
                        .collect(),
                    c.lhs_eqs
                        .iter()
                        .map(|(l, r)| (go(l, renames), go(r, renames)))
                        .collect(),
                    c.rhs_atoms
                        .iter()
                        .map(|a| {
                            Atom::new(
                                a.relation.clone(),
                                a.args.iter().map(|t| go(t, renames)).collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// In-place logical simplification of one clause (see [`compose`] step
/// 3).
fn simplify_clause(clause: &mut SoClause) {
    loop {
        let mut changed = false;

        // Drop trivial equalities.
        let before = clause.lhs_eqs.len();
        clause.lhs_eqs.retain(|(l, r)| l != r);
        if clause.lhs_eqs.len() != before {
            changed = true;
        }

        // Find a variable–variable equality to unify, preferring to
        // keep the non-prefixed (consumer-side) variable.
        let mut subst: Option<(Name, Term)> = None;
        for (l, r) in &clause.lhs_eqs {
            match (l, r) {
                (Term::Var(a), Term::Var(b)) => {
                    // Replace the "fresher" one (heuristic: longer name
                    // from prefixing) by the other.
                    if b.as_str().len() >= a.as_str().len() {
                        subst = Some((b.clone(), Term::Var(a.clone())));
                    } else {
                        subst = Some((a.clone(), Term::Var(b.clone())));
                    }
                    break;
                }
                _ => continue,
            }
        }
        // Otherwise: inline var = term when the var no longer occurs in
        // premise atoms (so matching semantics are unaffected).
        if subst.is_none() {
            let lhs_vars: BTreeSet<Name> = {
                let mut vs = Vec::new();
                for a in &clause.lhs_atoms {
                    a.collect_vars(&mut vs);
                }
                vs.into_iter().collect()
            };
            for (l, r) in &clause.lhs_eqs {
                match (l, r) {
                    (Term::Var(y), t)
                        if !lhs_vars.contains(y.as_str()) && !term_mentions_var(t, y) =>
                    {
                        subst = Some((y.clone(), t.clone()));
                        break;
                    }
                    (t, Term::Var(y))
                        if !lhs_vars.contains(y.as_str()) && !term_mentions_var(t, y) =>
                    {
                        subst = Some((y.clone(), t.clone()));
                        break;
                    }
                    _ => continue,
                }
            }
        }

        if let Some((var, replacement)) = subst {
            let mut map = BTreeMap::new();
            map.insert(var, replacement);
            for a in clause.lhs_atoms.iter_mut() {
                *a = a.substitute(&map);
            }
            for a in clause.rhs_atoms.iter_mut() {
                *a = a.substitute(&map);
            }
            for (l, r) in clause.lhs_eqs.iter_mut() {
                *l = l.substitute(&map);
                *r = r.substitute(&map);
            }
            changed = true;
        }

        if !changed {
            break;
        }
    }
    // Deduplicate premise atoms and equalities.
    let mut seen = BTreeSet::new();
    clause.lhs_atoms.retain(|a| seen.insert(a.clone()));
    let mut seen_eq = BTreeSet::new();
    clause.lhs_eqs.retain(|e| seen_eq.insert(e.clone()));
}

fn term_mentions_var(t: &Term, v: &Name) -> bool {
    match t {
        Term::Var(x) => x == v,
        Term::Const(_) => false,
        Term::Func(_, args) => args.iter().any(|a| term_mentions_var(a, v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_chase::{exchange, so_exchange};
    use dex_logic::parse_mapping;
    use dex_relational::homomorphism::homomorphically_equivalent;
    use dex_relational::{tuple, Instance};

    fn m12() -> Mapping {
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap()
    }

    fn m23() -> Mapping {
        parse_mapping(
            r#"
            source Manager(emp, mgr);
            target Boss(emp, mgr);
            target SelfMngr(emp);
            Manager(x, y) -> Boss(x, y);
            Manager(x, x) -> SelfMngr(x);
            "#,
        )
        .unwrap()
    }

    /// Paper Example 2, verbatim: the composition is the SO-tgd
    /// `∃f [ ∀x (Emp(x) → Boss(x, f(x))) ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]`.
    #[test]
    fn example2_composition_matches_paper() {
        let comp = compose(&m12(), &m23()).unwrap();
        assert_eq!(
            comp.to_string(),
            "∃f [ ∀x (Emp(x) → Boss(x, f(x))) ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]"
        );
        assert!(
            comp.st_tgds.is_none(),
            "Example 2's composition is not first-order (paper: “not even in first-order logic”)"
        );
    }

    /// Operational correctness: chasing the composed SO-tgd equals
    /// chasing the two mappings in sequence (up to homomorphic
    /// equivalence).
    #[test]
    fn composition_chase_agrees_with_sequential_chase() {
        let comp = compose(&m12(), &m23()).unwrap();
        let src = Instance::with_facts(
            m12().source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        // Sequential: chase m12, then m23 (its source facts are the
        // intermediate instance).
        let j = exchange(&m12(), &src).unwrap().target;
        let k_seq = exchange(&m23(), &j).unwrap().target;
        // Direct: chase the composed SO-tgd.
        let k_direct = so_exchange(&comp.sotgd, m23().target(), &src).unwrap();
        assert!(
            homomorphically_equivalent(&k_seq, &k_direct),
            "sequential:\n{k_seq}\ndirect:\n{k_direct}"
        );
    }

    /// Semantic correctness on concrete pairs: the bounded checker
    /// accepts (I, K) pairs that admit an intermediate J, and rejects
    /// pairs that do not.
    #[test]
    fn composition_semantics_bounded() {
        let comp = compose(&m12(), &m23()).unwrap();
        let src =
            Instance::with_facts(m12().source().clone(), vec![("Emp", vec![tuple!["Alice"]])])
                .unwrap();
        let c_schema = m23().target().clone();
        // Alice gets some boss (Ted): fine without SelfMngr.
        let ok = Instance::with_facts(
            c_schema.clone(),
            vec![("Boss", vec![tuple!["Alice", "Ted"]])],
        )
        .unwrap();
        assert!(comp.sotgd.satisfied_by_bounded(&src, &ok));
        // Alice bosses herself but SelfMngr missing: rejected.
        let bad = Instance::with_facts(
            c_schema.clone(),
            vec![("Boss", vec![tuple!["Alice", "Alice"]])],
        )
        .unwrap();
        assert!(!comp.sotgd.satisfied_by_bounded(&src, &bad));
        // Empty target: clause 1 unsatisfiable.
        assert!(!comp
            .sotgd
            .satisfied_by_bounded(&src, &Instance::empty(c_schema)));
    }

    /// Full st-tgds are closed under composition (Fagin et al., cited
    /// in paper §2): composing two full mappings yields st-tgds again.
    #[test]
    fn full_mappings_compose_to_st_tgds() {
        let a2b = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        )
        .unwrap();
        let b2c = parse_mapping(
            r#"
            source Parent(p, c);
            target Ancestor(a, d);
            Parent(x, y) -> Ancestor(x, y);
            "#,
        )
        .unwrap();
        let comp = compose(&a2b, &b2c).unwrap();
        let tgds = comp
            .st_tgds
            .clone()
            .expect("full mappings stay first-order");
        assert_eq!(tgds.len(), 2);
        let m = comp.into_mapping().unwrap();
        // Behaviour check.
        let src = Instance::with_facts(
            a2b.source().clone(),
            vec![
                ("Father", vec![tuple!["Leslie", "Alice"]]),
                ("Mother", vec![tuple!["Robin", "Sam"]]),
            ],
        )
        .unwrap();
        let k = exchange(&m, &src).unwrap().target;
        assert!(k.contains("Ancestor", &tuple!["Leslie", "Alice"]));
        assert!(k.contains("Ancestor", &tuple!["Robin", "Sam"]));
        assert_eq!(k.fact_count(), 2);
    }

    /// Composition with a joining second mapping: premises with two
    /// atoms take all producer combinations.
    #[test]
    fn composition_with_join_premise() {
        let a2b = parse_mapping(
            r#"
            source R(a, b);
            target S(a, b);
            R(x, y) -> S(x, y);
            "#,
        )
        .unwrap();
        let b2c = parse_mapping(
            r#"
            source S(a, b);
            target T(a, c);
            S(x, y) & S(y, z) -> T(x, z);
            "#,
        )
        .unwrap();
        let comp = compose(&a2b, &b2c).unwrap();
        let m = comp.into_mapping().expect("full, stays first-order");
        let src = Instance::with_facts(
            a2b.source().clone(),
            vec![("R", vec![tuple![1i64, 2i64], tuple![2i64, 3i64]])],
        )
        .unwrap();
        let k = exchange(&m, &src).unwrap().target;
        assert!(k.contains("T", &tuple![1i64, 3i64]));
        assert!(!k.contains("T", &tuple![2i64, 2i64]));
    }

    #[test]
    fn schema_chain_mismatch_rejected() {
        let err = compose(&m23(), &m12()).unwrap_err();
        assert!(matches!(err, OpsError::SchemaChainMismatch { .. }));
    }

    /// A premise relation never produced by the first mapping makes the
    /// clause vacuous — it is dropped rather than miscompiled.
    #[test]
    fn unproducible_premise_clause_dropped() {
        let a2b = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target Unused(a);
            R(x) -> S(x);
            "#,
        )
        .unwrap();
        let b2c = parse_mapping(
            r#"
            source S(a);
            source Unused(a);
            target T(a);
            target W(a);
            S(x) -> T(x);
            Unused(x) -> W(x);
            "#,
        )
        .unwrap();
        let comp = compose(&a2b, &b2c).unwrap();
        let tgds = comp.st_tgds.unwrap();
        assert_eq!(tgds.len(), 1, "the Unused→W clause is vacuous");
        assert_eq!(tgds[0].rhs[0].relation, "T");
    }

    /// Triple chain: compose twice (associativity smoke test at the
    /// behavioural level).
    #[test]
    fn triple_chain_composes() {
        let ab = parse_mapping("source A(x);\ntarget B(x);\nA(v) -> B(v);").unwrap();
        let bc = parse_mapping("source B(x);\ntarget C(x);\nB(v) -> C(v);").unwrap();
        let cd = parse_mapping("source C(x);\ntarget D(x);\nC(v) -> D(v);").unwrap();
        let ab_bc = compose(&ab, &bc).unwrap().into_mapping().unwrap();
        let abc_cd = compose(&ab_bc, &cd).unwrap().into_mapping().unwrap();
        let src =
            Instance::with_facts(ab.source().clone(), vec![("A", vec![tuple!["v"]])]).unwrap();
        let out = exchange(&abc_cd, &src).unwrap().target;
        assert!(out.contains("D", &tuple!["v"]));
    }
}
