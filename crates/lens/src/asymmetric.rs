//! Asymmetric (set-based) lenses.
//!
//! The paper §3: “The most basic form of a lens, called a set-based
//! lens, consists of two sets S and V and two functions g (pronounced
//! get) S → V, and p (pronounced put) V × S → S.” We add the standard
//! `create : V → S` (put with no old source) needed when the backward
//! direction must invent a source — the relational-lens templates use
//! it for inserted rows.

use std::marker::PhantomData;
use std::sync::Arc;

/// A set-based asymmetric lens from `Source` to `View`.
///
/// ```
/// use dex_lens::{ConstComplement, Lens};
///
/// // View a (name, age) record as just its name.
/// let lens: ConstComplement<String, u32> = ConstComplement::new(0);
/// let record = ("alice".to_string(), 30);
/// assert_eq!(lens.get(&record), "alice");
/// // put replaces the name but keeps the hidden age.
/// assert_eq!(lens.put(&"bob".into(), &record), ("bob".to_string(), 30));
/// // create fills the hidden part with the configured default.
/// assert_eq!(lens.create(&"carol".into()), ("carol".to_string(), 0));
/// ```
///
/// Well-behavedness (checked by [`crate::laws`]):
/// * **PutGet** — `get(put(v, s)) = v`: the updated source really
///   reflects the view.
/// * **GetPut** — `put(get(s), s) = s`: a trivial update is trivial.
/// * **CreateGet** — `get(create(v)) = v`.
/// * **PutPut** (optional, *very well-behaved* lenses) —
///   `put(v, put(v', s)) = put(v, s)`.
pub trait Lens {
    /// The source (whole) type.
    type Source;
    /// The view (part) type.
    type View;

    /// Extract the view of a source.
    fn get(&self, s: &Self::Source) -> Self::View;

    /// Update the source to reflect an edited view.
    fn put(&self, v: &Self::View, s: &Self::Source) -> Self::Source;

    /// Build a source from a view alone (no previous source).
    fn create(&self, v: &Self::View) -> Self::Source;

    /// Compose with another lens (`self` first, then `next`).
    fn then<M>(self, next: M) -> ComposeLens<Self, M>
    where
        Self: Sized,
        M: Lens<Source = Self::View>,
    {
        ComposeLens {
            first: self,
            second: next,
        }
    }
}

/// A boxed, type-erased lens.
pub type BoxLens<S, V> = Box<dyn Lens<Source = S, View = V> + Send + Sync>;

impl<S, V> Lens for Box<dyn Lens<Source = S, View = V> + Send + Sync> {
    type Source = S;
    type View = V;
    fn get(&self, s: &S) -> V {
        (**self).get(s)
    }
    fn put(&self, v: &V, s: &S) -> S {
        (**self).put(v, s)
    }
    fn create(&self, v: &V) -> S {
        (**self).create(v)
    }
}

impl<L: Lens + ?Sized> Lens for Arc<L> {
    type Source = L::Source;
    type View = L::View;
    fn get(&self, s: &Self::Source) -> Self::View {
        (**self).get(s)
    }
    fn put(&self, v: &Self::View, s: &Self::Source) -> Self::Source {
        (**self).put(v, s)
    }
    fn create(&self, v: &Self::View) -> Self::Source {
        (**self).create(v)
    }
}

/// The identity lens.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityLens<T>(PhantomData<fn(T) -> T>);

impl<T> IdentityLens<T> {
    /// Build the identity lens.
    pub fn new() -> Self {
        IdentityLens(PhantomData)
    }
}

impl<T: Clone> Lens for IdentityLens<T> {
    type Source = T;
    type View = T;
    fn get(&self, s: &T) -> T {
        s.clone()
    }
    fn put(&self, v: &T, _s: &T) -> T {
        v.clone()
    }
    fn create(&self, v: &T) -> T {
        v.clone()
    }
}

/// Sequential composition of two lenses (a lens again — lenses compose,
/// paper §3).
#[derive(Clone, Copy, Debug)]
pub struct ComposeLens<L, M> {
    first: L,
    second: M,
}

impl<L, M> ComposeLens<L, M> {
    /// Compose `first; second`.
    pub fn new(first: L, second: M) -> Self {
        ComposeLens { first, second }
    }
}

impl<L, M> Lens for ComposeLens<L, M>
where
    L: Lens,
    M: Lens<Source = L::View>,
{
    type Source = L::Source;
    type View = M::View;

    fn get(&self, s: &L::Source) -> M::View {
        self.second.get(&self.first.get(s))
    }

    fn put(&self, v: &M::View, s: &L::Source) -> L::Source {
        let mid = self.first.get(s);
        let mid2 = self.second.put(v, &mid);
        self.first.put(&mid2, s)
    }

    fn create(&self, v: &M::View) -> L::Source {
        self.first.create(&self.second.create(v))
    }
}

/// A lens built from an isomorphism (forward, backward). Always very
/// well-behaved when the two functions are mutually inverse.
pub struct IsoLens<S, V> {
    fwd: Arc<dyn Fn(&S) -> V + Send + Sync>,
    bwd: Arc<dyn Fn(&V) -> S + Send + Sync>,
}

impl<S, V> Clone for IsoLens<S, V> {
    fn clone(&self) -> Self {
        IsoLens {
            fwd: Arc::clone(&self.fwd),
            bwd: Arc::clone(&self.bwd),
        }
    }
}

impl<S, V> IsoLens<S, V> {
    /// Build from a pair of mutually-inverse functions.
    pub fn new(
        fwd: impl Fn(&S) -> V + Send + Sync + 'static,
        bwd: impl Fn(&V) -> S + Send + Sync + 'static,
    ) -> Self {
        IsoLens {
            fwd: Arc::new(fwd),
            bwd: Arc::new(bwd),
        }
    }
}

impl<S, V> Lens for IsoLens<S, V> {
    type Source = S;
    type View = V;
    fn get(&self, s: &S) -> V {
        (self.fwd)(s)
    }
    fn put(&self, v: &V, _s: &S) -> S {
        (self.bwd)(v)
    }
    fn create(&self, v: &V) -> S {
        (self.bwd)(v)
    }
}

type GetFn<S, V> = Arc<dyn Fn(&S) -> V + Send + Sync>;
type PutFn<S, V> = Arc<dyn Fn(&V, &S) -> S + Send + Sync>;
type CreateFn<S, V> = Arc<dyn Fn(&V) -> S + Send + Sync>;

/// A lens built from explicit `get`/`put`/`create` closures. The
/// closures must satisfy the laws — use [`crate::laws`] to check.
pub struct FnLens<S, V> {
    get: GetFn<S, V>,
    put: PutFn<S, V>,
    create: CreateFn<S, V>,
}

impl<S, V> Clone for FnLens<S, V> {
    fn clone(&self) -> Self {
        FnLens {
            get: Arc::clone(&self.get),
            put: Arc::clone(&self.put),
            create: Arc::clone(&self.create),
        }
    }
}

impl<S, V> FnLens<S, V> {
    /// Build from closures.
    pub fn new(
        get: impl Fn(&S) -> V + Send + Sync + 'static,
        put: impl Fn(&V, &S) -> S + Send + Sync + 'static,
        create: impl Fn(&V) -> S + Send + Sync + 'static,
    ) -> Self {
        FnLens {
            get: Arc::new(get),
            put: Arc::new(put),
            create: Arc::new(create),
        }
    }
}

impl<S, V> Lens for FnLens<S, V> {
    type Source = S;
    type View = V;
    fn get(&self, s: &S) -> V {
        (self.get)(s)
    }
    fn put(&self, v: &V, s: &S) -> S {
        (self.put)(v, s)
    }
    fn create(&self, v: &V) -> S {
        (self.create)(v)
    }
}

/// Product of two lenses: acts componentwise on pairs.
#[derive(Clone, Copy, Debug)]
pub struct PairLens<L, M> {
    left: L,
    right: M,
}

impl<L, M> PairLens<L, M> {
    /// Build the product lens.
    pub fn new(left: L, right: M) -> Self {
        PairLens { left, right }
    }
}

impl<L, M> Lens for PairLens<L, M>
where
    L: Lens,
    M: Lens,
{
    type Source = (L::Source, M::Source);
    type View = (L::View, M::View);

    fn get(&self, s: &Self::Source) -> Self::View {
        (self.left.get(&s.0), self.right.get(&s.1))
    }

    fn put(&self, v: &Self::View, s: &Self::Source) -> Self::Source {
        (self.left.put(&v.0, &s.0), self.right.put(&v.1, &s.1))
    }

    fn create(&self, v: &Self::View) -> Self::Source {
        (self.left.create(&v.0), self.right.create(&v.1))
    }
}

/// The constant-complement projection lens on pairs: view the first
/// component, keep the second as hidden complement; `create` fills the
/// complement with a configured default.
#[derive(Clone, Debug)]
pub struct ConstComplement<A, C> {
    default: C,
    _marker: PhantomData<fn(A) -> A>,
}

impl<A, C: Clone> ConstComplement<A, C> {
    /// Build with the complement default used by `create`.
    pub fn new(default: C) -> Self {
        ConstComplement {
            default,
            _marker: PhantomData,
        }
    }
}

impl<A: Clone, C: Clone> Lens for ConstComplement<A, C> {
    type Source = (A, C);
    type View = A;

    fn get(&self, s: &(A, C)) -> A {
        s.0.clone()
    }

    fn put(&self, v: &A, s: &(A, C)) -> (A, C) {
        (v.clone(), s.1.clone())
    }

    fn create(&self, v: &A) -> (A, C) {
        (v.clone(), self.default.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    /// The running toy: a "database" (name, age) viewed as just the name.
    fn name_lens() -> ConstComplement<String, u32> {
        ConstComplement::new(0)
    }

    #[test]
    fn const_complement_laws() {
        let l = name_lens();
        let s = ("alice".to_string(), 30u32);
        let v = "bob".to_string();
        assert!(laws::check_get_put(&l, &s).is_ok());
        assert!(laws::check_put_get(&l, &v, &s).is_ok());
        assert!(laws::check_create_get(&l, &v).is_ok());
        assert!(laws::check_put_put(&l, &v, &"carol".to_string(), &s).is_ok());
        // Behaviour: put replaces the name, keeps the age.
        assert_eq!(l.put(&v, &s), ("bob".to_string(), 30));
        assert_eq!(l.create(&v), ("bob".to_string(), 0));
    }

    #[test]
    fn identity_laws_and_behaviour() {
        let l: IdentityLens<i64> = IdentityLens::new();
        assert_eq!(l.get(&7), 7);
        assert_eq!(l.put(&8, &7), 8);
        assert!(laws::check_get_put(&l, &3).is_ok());
        assert!(laws::check_put_get(&l, &4, &3).is_ok());
    }

    #[test]
    fn composition_threads_the_middle() {
        // ((name, age), city) --first--> (name, age) --second--> name
        let first: ConstComplement<(String, u32), String> = ConstComplement::new("nowhere".into());
        let second: ConstComplement<String, u32> = ConstComplement::new(0);
        let l = first.then(second);
        let s = (("alice".to_string(), 30u32), "Sydney".to_string());
        assert_eq!(l.get(&s), "alice");
        let s2 = l.put(&"bob".to_string(), &s);
        assert_eq!(s2, (("bob".to_string(), 30), "Sydney".to_string()));
        assert!(laws::check_get_put(&l, &s).is_ok());
        assert!(laws::check_put_get(&l, &"z".to_string(), &s).is_ok());
        let created = l.create(&"new".to_string());
        assert_eq!(created, (("new".to_string(), 0), "nowhere".to_string()));
    }

    #[test]
    fn iso_lens_round_trips() {
        let l: IsoLens<i64, String> =
            IsoLens::new(|n: &i64| n.to_string(), |s: &String| s.parse().unwrap());
        assert_eq!(l.get(&42), "42");
        assert_eq!(l.put(&"7".to_string(), &0), 7);
        assert!(laws::check_get_put(&l, &13).is_ok());
        assert!(laws::check_put_get(&l, &"5".to_string(), &1).is_ok());
    }

    #[test]
    fn fn_lens_law_violation_detected() {
        // A broken "lens" whose put ignores the view.
        let broken: FnLens<i64, i64> = FnLens::new(|s| *s, |_v, s| *s, |v| *v);
        let err = laws::check_put_get(&broken, &5, &3).unwrap_err();
        assert!(err.to_string().contains("PutGet"));
    }

    #[test]
    fn pair_lens_componentwise() {
        let l = PairLens::new(IdentityLens::<i64>::new(), name_lens());
        let s = (1i64, ("a".to_string(), 9u32));
        assert_eq!(l.get(&s), (1, "a".to_string()));
        let v = (2i64, "b".to_string());
        assert_eq!(l.put(&v, &s), (2, ("b".to_string(), 9)));
        assert!(laws::check_get_put(&l, &s).is_ok());
        assert!(laws::check_put_get(&l, &v, &s).is_ok());
    }

    #[test]
    fn boxed_lens_is_a_lens() {
        let b: BoxLens<(String, u32), String> = Box::new(name_lens());
        let s = ("x".to_string(), 1u32);
        assert_eq!(b.get(&s), "x");
        assert!(laws::check_get_put(&b, &s).is_ok());
    }

    #[test]
    fn arc_lens_is_a_lens() {
        let a = Arc::new(name_lens());
        let s = ("x".to_string(), 1u32);
        assert_eq!(a.get(&s), "x");
        assert_eq!(a.put(&"y".to_string(), &s), ("y".to_string(), 1));
    }
}
