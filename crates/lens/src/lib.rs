//! # dex-lens — bidirectional transformations
//!
//! The programming-language side of the paper (§3): **lenses**.
//!
//! * [`asymmetric`] — set-based lenses `(get, put, create)` with the
//!   well-behavedness laws (GetPut, PutGet, and the optional PutPut),
//!   plus the combinator algebra (identity, composition, isomorphisms,
//!   products).
//! * [`symmetric`] — Hofmann–Pierce–Wagner complement-based symmetric
//!   lenses, closed under composition and with **free inversion**
//!   (“each symmetric lens has an inversion obtained by exchanging the
//!   roles of S and T”), the property that makes them the paper's
//!   candidate *closed mapping language*.
//! * [`span`] — spans `S ← U → T` of asymmetric lenses, which induce
//!   symmetric lenses, and cospans `S → X ← T` (the paper notes these
//!   are *not* symmetric lenses but are used in practical data
//!   exchange).
//! * [`edit`] — deltas and edit propagation: tuple-level diffs and the
//!   state-to-edit wrapper (the simplest bridge to delta/edit lenses).
//! * [`laws`] — executable law checking used across the workspace's
//!   test suites.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod asymmetric;
pub mod edit;
pub mod laws;
pub mod quotient;
pub mod span;
pub mod symmetric;

pub use asymmetric::{
    BoxLens, ComposeLens, ConstComplement, FnLens, IdentityLens, IsoLens, Lens, PairLens,
};
pub use laws::{LawReport, LawViolation};
pub use quotient::QuotientLens;
pub use span::{CospanLens, MemorylessCospan, SpanLens};
pub use symmetric::{
    compose_sym, invert, BoxSymLens, ComposeSym, FromLens, IdentitySym, InvertSym, SymLens,
};
