//! Executable lens laws.
//!
//! The paper §3 defines a lens as *well-behaved* when it satisfies
//! **PutGet** (`g(p(v, s)) = v`) and **GetPut** (`p(g(s), s) = s`).
//! These checkers turn the laws into test assertions reused by every
//! lens implementation in the workspace (and by the proptest suites).

use crate::asymmetric::Lens;
use crate::symmetric::SymLens;
use std::fmt;

/// A law violation, with the law's name and a rendering of the
/// counterexample.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LawViolation {
    /// Which law failed (e.g. `"PutGet"`).
    pub law: &'static str,
    /// Human-readable description of the counterexample.
    pub detail: String,
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.law, self.detail)
    }
}

impl std::error::Error for LawViolation {}

/// GetPut: `put(get(s), s) = s`.
pub fn check_get_put<L: Lens>(l: &L, s: &L::Source) -> Result<(), LawViolation>
where
    L::Source: PartialEq + fmt::Debug,
{
    let v = l.get(s);
    let s2 = l.put(&v, s);
    if &s2 == s {
        Ok(())
    } else {
        Err(LawViolation {
            law: "GetPut",
            detail: format!("put(get(s), s) = {s2:?} ≠ s = {s:?}"),
        })
    }
}

/// PutGet: `get(put(v, s)) = v`.
pub fn check_put_get<L: Lens>(l: &L, v: &L::View, s: &L::Source) -> Result<(), LawViolation>
where
    L::View: PartialEq + fmt::Debug,
{
    let s2 = l.put(v, s);
    let v2 = l.get(&s2);
    if &v2 == v {
        Ok(())
    } else {
        Err(LawViolation {
            law: "PutGet",
            detail: format!("get(put(v, s)) = {v2:?} ≠ v = {v:?}"),
        })
    }
}

/// CreateGet: `get(create(v)) = v`.
pub fn check_create_get<L: Lens>(l: &L, v: &L::View) -> Result<(), LawViolation>
where
    L::View: PartialEq + fmt::Debug,
{
    let s = l.create(v);
    let v2 = l.get(&s);
    if &v2 == v {
        Ok(())
    } else {
        Err(LawViolation {
            law: "CreateGet",
            detail: format!("get(create(v)) = {v2:?} ≠ v = {v:?}"),
        })
    }
}

/// PutPut (very well-behaved lenses): `put(v, put(v', s)) = put(v, s)`.
pub fn check_put_put<L: Lens>(
    l: &L,
    v: &L::View,
    v_prime: &L::View,
    s: &L::Source,
) -> Result<(), LawViolation>
where
    L::Source: PartialEq + fmt::Debug,
{
    let a = l.put(v, &l.put(v_prime, s));
    let b = l.put(v, s);
    if a == b {
        Ok(())
    } else {
        Err(LawViolation {
            law: "PutPut",
            detail: format!("put(v, put(v', s)) = {a:?} ≠ put(v, s) = {b:?}"),
        })
    }
}

/// A batch law report over sampled sources and views.
#[derive(Clone, Debug, Default)]
pub struct LawReport {
    /// Total checks run.
    pub checks: usize,
    /// Violations found.
    pub violations: Vec<LawViolation>,
}

impl LawReport {
    /// Did every check pass?
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for LawReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all_ok() {
            write!(f, "{} lens-law checks passed", self.checks)
        } else {
            writeln!(
                f,
                "{} / {} lens-law checks failed:",
                self.violations.len(),
                self.checks
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Run GetPut over all sources, PutGet and CreateGet over all
/// (view, source) combinations.
pub fn check_well_behaved<L: Lens>(l: &L, sources: &[L::Source], views: &[L::View]) -> LawReport
where
    L::Source: PartialEq + fmt::Debug,
    L::View: PartialEq + fmt::Debug,
{
    let mut report = LawReport::default();
    for s in sources {
        report.checks += 1;
        if let Err(v) = check_get_put(l, s) {
            report.violations.push(v);
        }
        for v in views {
            report.checks += 1;
            if let Err(e) = check_put_get(l, v, s) {
                report.violations.push(e);
            }
        }
    }
    for v in views {
        report.checks += 1;
        if let Err(e) = check_create_get(l, v) {
            report.violations.push(e);
        }
    }
    report
}

/// Symmetric-lens law **PutRL**: if `put_r(x, c) = (y, c')` then
/// `put_l(y, c') = (x, c')` — pushing back the value you just produced
/// changes nothing (Hofmann–Pierce–Wagner).
pub fn check_put_rl<L: SymLens>(l: &L, x: &L::Left, c: &L::Compl) -> Result<(), LawViolation>
where
    L::Left: PartialEq + fmt::Debug,
    L::Compl: PartialEq + fmt::Debug,
{
    let (y, c1) = l.put_r(x, c);
    let (x2, c2) = l.put_l(&y, &c1);
    if &x2 == x && c2 == c1 {
        Ok(())
    } else {
        Err(LawViolation {
            law: "PutRL",
            detail: format!("put_l(put_r(x, c)) = ({x2:?}, {c2:?}) ≠ ({x:?}, {c1:?})"),
        })
    }
}

/// Symmetric-lens law **PutLR**: the mirror image of PutRL.
pub fn check_put_lr<L: SymLens>(l: &L, y: &L::Right, c: &L::Compl) -> Result<(), LawViolation>
where
    L::Right: PartialEq + fmt::Debug,
    L::Compl: PartialEq + fmt::Debug,
{
    let (x, c1) = l.put_l(y, c);
    let (y2, c2) = l.put_r(&x, &c1);
    if &y2 == y && c2 == c1 {
        Ok(())
    } else {
        Err(LawViolation {
            law: "PutLR",
            detail: format!("put_r(put_l(y, c)) = ({y2:?}, {c2:?}) ≠ ({y:?}, {c1:?})"),
        })
    }
}

/// Check both symmetric laws over samples.
pub fn check_sym_well_behaved<L: SymLens>(
    l: &L,
    lefts: &[L::Left],
    rights: &[L::Right],
    compls: &[L::Compl],
) -> LawReport
where
    L::Left: PartialEq + fmt::Debug,
    L::Right: PartialEq + fmt::Debug,
    L::Compl: PartialEq + fmt::Debug,
{
    let mut report = LawReport::default();
    for c in compls {
        for x in lefts {
            report.checks += 1;
            if let Err(e) = check_put_rl(l, x, c) {
                report.violations.push(e);
            }
        }
        for y in rights {
            report.checks += 1;
            if let Err(e) = check_put_lr(l, y, c) {
                report.violations.push(e);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymmetric::{ConstComplement, FnLens};

    #[test]
    fn report_aggregates_violations() {
        let broken: FnLens<i64, i64> = FnLens::new(|s| *s, |_v, s| *s, |v| *v);
        let report = check_well_behaved(&broken, &[1, 2], &[5]);
        assert!(!report.all_ok());
        assert!(report.checks > report.violations.len());
        assert!(report.to_string().contains("PutGet"));
    }

    #[test]
    fn good_lens_clean_report() {
        let l: ConstComplement<String, u32> = ConstComplement::new(0);
        let report = check_well_behaved(
            &l,
            &[("a".into(), 1), ("b".into(), 2)],
            &["x".into(), "y".into()],
        );
        assert!(report.all_ok(), "{report}");
        assert_eq!(report.checks, 2 + 4 + 2);
        assert!(report.to_string().contains("passed"));
    }
}
