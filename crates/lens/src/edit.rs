//! Deltas and edit propagation over database instances.
//!
//! The paper §3 mentions delta lenses \[8, 21\] and edit lenses \[16\]:
//! instead of whole-state `put`s, propagate *changes*. This module
//! provides the instance-level delta algebra (diff / apply / compose /
//! invert) and [`EditSession`], a stateful controller that wraps any
//! symmetric lens over [`Instance`]s and exposes an edit-based
//! interface: feed it a delta on one side, receive the induced delta on
//! the other.

use crate::symmetric::SymLens;
use dex_relational::{Instance, Name, RelationalError, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One atomic edit to an instance.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Edit {
    /// Insert a fact.
    Insert(Name, Tuple),
    /// Delete a fact.
    Delete(Name, Tuple),
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::Insert(r, t) => write!(f, "+{r}{t}"),
            Edit::Delete(r, t) => write!(f, "-{r}{t}"),
        }
    }
}

/// A set-oriented delta between two instances: inserts and deletes.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Delta {
    /// Facts present in the new state but not the old.
    pub inserts: Vec<(Name, Tuple)>,
    /// Facts present in the old state but not the new.
    pub deletes: Vec<(Name, Tuple)>,
}

impl Delta {
    /// The empty delta.
    pub fn empty() -> Self {
        Delta::default()
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of atomic edits.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Compute the delta turning `from` into `to` (same schema
    /// expected).
    pub fn diff(from: &Instance, to: &Instance) -> Delta {
        let mut d = Delta::default();
        for (rel, t) in to.facts() {
            if !from.contains(rel.as_str(), &t) {
                d.inserts.push((rel.clone(), t));
            }
        }
        for (rel, t) in from.facts() {
            if !to.contains(rel.as_str(), &t) {
                d.deletes.push((rel.clone(), t));
            }
        }
        d
    }

    /// Apply to an instance: deletes first, then inserts.
    pub fn apply(&self, inst: &Instance) -> Result<Instance, RelationalError> {
        let mut out = inst.clone();
        for (rel, t) in &self.deletes {
            out.remove(rel.as_str(), t)?;
        }
        for (rel, t) in &self.inserts {
            out.insert(rel.as_str(), t.clone())?;
        }
        Ok(out)
    }

    /// The inverse delta (undo).
    pub fn inverse(&self) -> Delta {
        Delta {
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }

    /// Sequential composition `self; then` (apply `self` first). Edits
    /// that cancel out are removed.
    pub fn then(&self, then: &Delta) -> Delta {
        use std::collections::BTreeSet;
        let mut ins: BTreeSet<(Name, Tuple)> = self.inserts.iter().cloned().collect();
        let mut del: BTreeSet<(Name, Tuple)> = self.deletes.iter().cloned().collect();
        for d in &then.deletes {
            if !ins.remove(d) {
                del.insert(d.clone());
            }
        }
        for i in &then.inserts {
            if !del.remove(i) {
                ins.insert(i.clone());
            }
        }
        Delta {
            inserts: ins.into_iter().collect(),
            deletes: del.into_iter().collect(),
        }
    }

    /// View as a list of atomic edits (deletes first).
    pub fn edits(&self) -> Vec<Edit> {
        self.deletes
            .iter()
            .map(|(r, t)| Edit::Delete(r.clone(), t.clone()))
            .chain(
                self.inserts
                    .iter()
                    .map(|(r, t)| Edit::Insert(r.clone(), t.clone())),
            )
            .collect()
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(no changes)");
        }
        for (i, e) in self.edits().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A stateful edit-propagation session over a symmetric lens between
/// two [`Instance`] repositories.
///
/// This is the state-based-to-edit-based wrapper: it tracks both
/// current states and the lens complement; [`EditSession::edit_left`]
/// applies a delta to the left state, pushes the new state through the
/// lens, and returns the induced delta on the right (and symmetrically
/// for [`EditSession::edit_right`]).
pub struct EditSession<L: SymLens<Left = Instance, Right = Instance>> {
    lens: L,
    left: Instance,
    right: Instance,
    compl: L::Compl,
}

impl<L: SymLens<Left = Instance, Right = Instance>> EditSession<L> {
    /// Start a session by pushing `left` through the lens to
    /// initialize the right state.
    pub fn start_from_left(lens: L, left: Instance) -> Self {
        let (right, compl) = lens.put_r(&left, &lens.missing());
        EditSession {
            lens,
            left,
            right,
            compl,
        }
    }

    /// The current left state.
    pub fn left(&self) -> &Instance {
        &self.left
    }

    /// The current right state.
    pub fn right(&self) -> &Instance {
        &self.right
    }

    /// Apply a delta to the left repository; returns the delta induced
    /// on the right repository.
    pub fn edit_left(&mut self, delta: &Delta) -> Result<Delta, RelationalError> {
        let new_left = delta.apply(&self.left)?;
        let (new_right, compl) = self.lens.put_r(&new_left, &self.compl);
        let induced = Delta::diff(&self.right, &new_right);
        self.left = new_left;
        self.right = new_right;
        self.compl = compl;
        Ok(induced)
    }

    /// Apply a delta to the right repository; returns the delta induced
    /// on the left repository.
    pub fn edit_right(&mut self, delta: &Delta) -> Result<Delta, RelationalError> {
        let new_right = delta.apply(&self.right)?;
        let (new_left, compl) = self.lens.put_l(&new_right, &self.compl);
        let induced = Delta::diff(&self.left, &new_left);
        self.left = new_left;
        self.right = new_right;
        self.compl = compl;
        Ok(induced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema};

    fn schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("R", vec!["a"]).unwrap()]).unwrap()
    }

    fn inst(vals: &[&str]) -> Instance {
        Instance::with_facts(
            schema(),
            vec![("R", vals.iter().map(|v| tuple![*v]).collect())],
        )
        .unwrap()
    }

    #[test]
    fn diff_and_apply_round_trip() {
        let a = inst(&["x", "y"]);
        let b = inst(&["y", "z"]);
        let d = Delta::diff(&a, &b);
        assert_eq!(d.inserts.len(), 1);
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.apply(&a).unwrap(), b);
        // Inverse undoes.
        assert_eq!(d.inverse().apply(&b).unwrap(), a);
    }

    #[test]
    fn empty_diff_for_equal_instances() {
        let a = inst(&["x"]);
        let d = Delta::diff(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "(no changes)");
    }

    #[test]
    fn composition_cancels_opposites() {
        let a = inst(&["x"]);
        let b = inst(&["x", "y"]);
        let d1 = Delta::diff(&a, &b); // +y
        let d2 = Delta::diff(&b, &a); // -y
        let both = d1.then(&d2);
        assert!(both.is_empty());
        // And the composition law: apply(then) == apply;apply.
        let c = inst(&["x", "z"]);
        let d3 = Delta::diff(&b, &c);
        let seq = d1.then(&d3);
        assert_eq!(seq.apply(&a).unwrap(), c);
    }

    #[test]
    fn edits_render() {
        let d = Delta::diff(&inst(&["x"]), &inst(&["y"]));
        let s = d.to_string();
        assert!(s.contains("-R(x)"));
        assert!(s.contains("+R(y)"));
    }

    /// A toy symmetric lens between two copies of R: the identity.
    #[derive(Clone)]
    struct IdInst;
    impl SymLens for IdInst {
        type Left = Instance;
        type Right = Instance;
        type Compl = ();
        fn missing(&self) {}
        fn put_r(&self, x: &Instance, _c: &()) -> (Instance, ()) {
            (x.clone(), ())
        }
        fn put_l(&self, y: &Instance, _c: &()) -> (Instance, ()) {
            (y.clone(), ())
        }
    }

    #[test]
    fn edit_session_propagates_deltas() {
        let mut sess = EditSession::start_from_left(IdInst, inst(&["x"]));
        assert_eq!(sess.right(), &inst(&["x"]));
        let d = Delta {
            inserts: vec![(Name::new("R"), tuple!["y"])],
            deletes: vec![],
        };
        let induced = sess.edit_left(&d).unwrap();
        assert_eq!(induced.inserts.len(), 1);
        assert_eq!(sess.right(), &inst(&["x", "y"]));
        // Edit the right: left follows.
        let d2 = Delta {
            inserts: vec![],
            deletes: vec![(Name::new("R"), tuple!["x"])],
        };
        let induced2 = sess.edit_right(&d2).unwrap();
        assert_eq!(induced2.deletes.len(), 1);
        assert_eq!(sess.left(), &inst(&["y"]));
    }

    #[test]
    fn delta_apply_checks_schema() {
        let d = Delta {
            inserts: vec![(Name::new("Nope"), tuple!["y"])],
            deletes: vec![],
        };
        assert!(d.apply(&inst(&["x"])).is_err());
    }
}
