//! Symmetric lenses (Hofmann–Pierce–Wagner, the paper's \[17\]).
//!
//! A symmetric lens between `Left` and `Right` keeps a *complement*
//! `Compl` recording the information each side has that the other
//! lacks. `put_r` pushes a left value across (updating the complement),
//! `put_l` pushes right-to-left. `missing` is the initial complement.
//!
//! Two properties make symmetric lenses the paper's candidate **closed
//! mapping language** (§3):
//! * **composition** — complements pair up ([`ComposeSym`]);
//! * **inversion is free** — swap the two directions ([`InvertSym`]):
//!   “each symmetric lens has an inversion obtained by exchanging the
//!   roles of S and T.”

use crate::asymmetric::Lens;
use std::sync::Arc;

/// A complement-based symmetric lens.
pub trait SymLens {
    /// The left repository type.
    type Left;
    /// The right repository type.
    type Right;
    /// The complement (shared memory) type.
    type Compl;

    /// The initial complement (HPW's `missing`).
    fn missing(&self) -> Self::Compl;

    /// Push a left value to the right.
    fn put_r(&self, x: &Self::Left, c: &Self::Compl) -> (Self::Right, Self::Compl);

    /// Push a right value to the left.
    fn put_l(&self, y: &Self::Right, c: &Self::Compl) -> (Self::Left, Self::Compl);

    /// Compose with another symmetric lens (complements pair).
    fn then_sym<M>(self, next: M) -> ComposeSym<Self, M>
    where
        Self: Sized,
        M: SymLens<Left = Self::Right>,
    {
        ComposeSym {
            first: self,
            second: next,
        }
    }

    /// Invert by swapping the directions — for free.
    fn inverted(self) -> InvertSym<Self>
    where
        Self: Sized,
    {
        InvertSym { inner: self }
    }
}

/// A boxed, type-erased symmetric lens.
pub type BoxSymLens<X, Y, C> = Box<dyn SymLens<Left = X, Right = Y, Compl = C> + Send + Sync>;

impl<X, Y, C> SymLens for Box<dyn SymLens<Left = X, Right = Y, Compl = C> + Send + Sync> {
    type Left = X;
    type Right = Y;
    type Compl = C;
    fn missing(&self) -> C {
        (**self).missing()
    }
    fn put_r(&self, x: &X, c: &C) -> (Y, C) {
        (**self).put_r(x, c)
    }
    fn put_l(&self, y: &Y, c: &C) -> (X, C) {
        (**self).put_l(y, c)
    }
}

impl<L: SymLens + ?Sized> SymLens for Arc<L> {
    type Left = L::Left;
    type Right = L::Right;
    type Compl = L::Compl;
    fn missing(&self) -> Self::Compl {
        (**self).missing()
    }
    fn put_r(&self, x: &Self::Left, c: &Self::Compl) -> (Self::Right, Self::Compl) {
        (**self).put_r(x, c)
    }
    fn put_l(&self, y: &Self::Right, c: &Self::Compl) -> (Self::Left, Self::Compl) {
        (**self).put_l(y, c)
    }
}

/// The identity symmetric lens.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentitySym<T>(std::marker::PhantomData<fn(T) -> T>);

impl<T> IdentitySym<T> {
    /// Build the identity.
    pub fn new() -> Self {
        IdentitySym(std::marker::PhantomData)
    }
}

impl<T: Clone> SymLens for IdentitySym<T> {
    type Left = T;
    type Right = T;
    type Compl = ();
    fn missing(&self) {}
    fn put_r(&self, x: &T, _c: &()) -> (T, ()) {
        (x.clone(), ())
    }
    fn put_l(&self, y: &T, _c: &()) -> (T, ()) {
        (y.clone(), ())
    }
}

/// Composition of symmetric lenses; the complement is the pair of
/// complements.
#[derive(Clone, Copy, Debug)]
pub struct ComposeSym<L, M> {
    first: L,
    second: M,
}

impl<L, M> ComposeSym<L, M> {
    /// Compose `first; second`.
    pub fn new(first: L, second: M) -> Self {
        ComposeSym { first, second }
    }
}

/// Compose two symmetric lenses (free function form).
pub fn compose_sym<L, M>(first: L, second: M) -> ComposeSym<L, M>
where
    L: SymLens,
    M: SymLens<Left = L::Right>,
{
    ComposeSym { first, second }
}

impl<L, M> SymLens for ComposeSym<L, M>
where
    L: SymLens,
    M: SymLens<Left = L::Right>,
{
    type Left = L::Left;
    type Right = M::Right;
    type Compl = (L::Compl, M::Compl);

    fn missing(&self) -> Self::Compl {
        (self.first.missing(), self.second.missing())
    }

    fn put_r(&self, x: &L::Left, c: &Self::Compl) -> (M::Right, Self::Compl) {
        let (mid, c1) = self.first.put_r(x, &c.0);
        let (y, c2) = self.second.put_r(&mid, &c.1);
        (y, (c1, c2))
    }

    fn put_l(&self, y: &M::Right, c: &Self::Compl) -> (L::Left, Self::Compl) {
        let (mid, c2) = self.second.put_l(y, &c.1);
        let (x, c1) = self.first.put_l(&mid, &c.0);
        (x, (c1, c2))
    }
}

/// Inversion of a symmetric lens: swap left and right. The paper's key
/// structural advantage over st-tgds — inversion always exists and is
/// an involution.
#[derive(Clone, Copy, Debug)]
pub struct InvertSym<L> {
    inner: L,
}

impl<L> InvertSym<L> {
    /// Invert `inner`.
    pub fn new(inner: L) -> Self {
        InvertSym { inner }
    }

    /// Undo the inversion, returning the inner lens.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

/// Invert a symmetric lens (free function form).
///
/// ```
/// use dex_lens::symmetric::{invert, IdentitySym, SymLens};
///
/// let id: IdentitySym<i64> = IdentitySym::new();
/// let inv = invert(IdentitySym::<i64>::new());
/// let (y, _) = id.put_r(&7, &id.missing());
/// let (y2, _) = inv.put_l(&7, &inv.missing());
/// assert_eq!(y, y2); // inversion swaps the directions
/// ```
pub fn invert<L: SymLens>(l: L) -> InvertSym<L> {
    InvertSym { inner: l }
}

impl<L: SymLens> SymLens for InvertSym<L> {
    type Left = L::Right;
    type Right = L::Left;
    type Compl = L::Compl;

    fn missing(&self) -> L::Compl {
        self.inner.missing()
    }

    fn put_r(&self, x: &L::Right, c: &L::Compl) -> (L::Left, L::Compl) {
        self.inner.put_l(x, c)
    }

    fn put_l(&self, y: &L::Left, c: &L::Compl) -> (L::Right, L::Compl) {
        self.inner.put_r(y, c)
    }
}

/// Embed an asymmetric lens `S → V` as a symmetric lens between `S`
/// and `V`; the complement remembers the last source (so `put_l` can
/// restore the hidden part).
#[derive(Clone, Debug)]
pub struct FromLens<L: Lens> {
    inner: L,
    /// Fallback source for `put_l` with the `missing` complement.
    seed: Option<L::Source>,
}

impl<L: Lens> FromLens<L> {
    /// Embed `inner`; with no previous source, `put_l` falls back to
    /// `create`.
    pub fn new(inner: L) -> Self {
        FromLens { inner, seed: None }
    }

    /// Embed with an explicit initial source used before any `put_r`.
    pub fn with_seed(inner: L, seed: L::Source) -> Self {
        FromLens {
            inner,
            seed: Some(seed),
        }
    }
}

impl<L> SymLens for FromLens<L>
where
    L: Lens,
    L::Source: Clone,
    L::View: Clone,
{
    type Left = L::Source;
    type Right = L::View;
    type Compl = Option<L::Source>;

    fn missing(&self) -> Option<L::Source> {
        self.seed.clone()
    }

    fn put_r(&self, x: &L::Source, _c: &Option<L::Source>) -> (L::View, Option<L::Source>) {
        (self.inner.get(x), Some(x.clone()))
    }

    fn put_l(&self, y: &L::View, c: &Option<L::Source>) -> (L::Source, Option<L::Source>) {
        let s = match c {
            Some(prev) => self.inner.put(y, prev),
            None => self.inner.create(y),
        };
        let compl = Some(s.clone());
        (s, compl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymmetric::ConstComplement;
    use crate::laws;

    /// A symmetric lens between (name, age) and (name, city): the
    /// complement stores the (age, city) pair neither side shares.
    #[derive(Clone)]
    struct NameBridge;

    impl SymLens for NameBridge {
        type Left = (String, u32);
        type Right = (String, String);
        type Compl = (u32, String);

        fn missing(&self) -> (u32, String) {
            (0, "unknown".into())
        }

        fn put_r(&self, x: &(String, u32), c: &(u32, String)) -> ((String, String), (u32, String)) {
            ((x.0.clone(), c.1.clone()), (x.1, c.1.clone()))
        }

        fn put_l(&self, y: &(String, String), c: &(u32, String)) -> ((String, u32), (u32, String)) {
            ((y.0.clone(), c.0), (c.0, y.1.clone()))
        }
    }

    #[test]
    fn name_bridge_laws() {
        let l = NameBridge;
        let report = laws::check_sym_well_behaved(
            &l,
            &[("alice".into(), 30), ("bob".into(), 40)],
            &[("carol".into(), "Sydney".into())],
            &[l.missing(), (7, "Santiago".into())],
        );
        assert!(report.all_ok(), "{report}");
    }

    #[test]
    fn round_trip_preserves_private_data() {
        let l = NameBridge;
        let c0 = l.missing();
        // Push left → right: age 30 is remembered in the complement.
        let ((name, city), c1) = l.put_r(&("alice".into(), 30), &c0);
        assert_eq!(name, "alice");
        assert_eq!(city, "unknown");
        // Edit the right side's city, push back: age restored.
        let ((name2, age), c2) = l.put_l(&("alice".into(), "Sydney".into()), &c1);
        assert_eq!((name2.as_str(), age), ("alice", 30));
        // Push right again: city survived in the complement.
        let ((_, city2), _) = l.put_r(&("alice".into(), 30), &c2);
        assert_eq!(city2, "Sydney");
    }

    #[test]
    fn inversion_swaps_directions() {
        let l = NameBridge;
        let inv = invert(NameBridge);
        let c = l.missing();
        let (y, c1) = l.put_r(&("a".into(), 1), &c);
        let (y2, c2) = inv.put_l(&("a".into(), 1), &c);
        assert_eq!(y, y2);
        assert_eq!(c1, c2);
        // Double inversion is the identity on behaviour.
        let dbl = invert(invert(NameBridge));
        let (y3, _) = dbl.put_r(&("a".into(), 1), &c);
        assert_eq!(y, y3);
    }

    #[test]
    fn composition_pairs_complements() {
        // (name,age) <-> (name,city) <-> name (via FromLens of a
        // projection lens).
        let proj: ConstComplement<String, String> = ConstComplement::new("nocity".into());
        // Right type of NameBridge is (String, String) = (name, city);
        // embed proj as symmetric (String, String) <-> String.
        let second = FromLens::new(proj);
        let l = compose_sym(NameBridge, second);
        let c0 = l.missing();
        let (name, c1) = l.put_r(&("alice".into(), 30), &c0);
        assert_eq!(name, "alice");
        // Push back an edited name: age restored from complement 1,
        // city from complement 2.
        let ((name2, age), _c2) = l.put_l(&"alicia".to_string(), &c1);
        assert_eq!(name2, "alicia");
        assert_eq!(age, 30);
    }

    #[test]
    fn from_lens_laws() {
        let proj: ConstComplement<String, u32> = ConstComplement::new(0);
        let sym = FromLens::new(proj);
        let report = laws::check_sym_well_behaved(
            &sym,
            &[("a".into(), 3), ("b".into(), 4)],
            &["x".to_string()],
            &[None, Some(("c".into(), 9))],
        );
        assert!(report.all_ok(), "{report}");
    }

    #[test]
    fn from_lens_missing_uses_create() {
        let proj: ConstComplement<String, u32> = ConstComplement::new(42);
        let sym = FromLens::new(proj);
        let (s, _) = sym.put_l(&"fresh".to_string(), &None);
        assert_eq!(s, ("fresh".to_string(), 42));
    }

    #[test]
    fn identity_sym_laws() {
        let l: IdentitySym<i64> = IdentitySym::new();
        let report = laws::check_sym_well_behaved(&l, &[1, 2], &[3], &[()]);
        assert!(report.all_ok());
    }

    #[test]
    fn boxed_symlens() {
        let b: BoxSymLens<(String, u32), (String, String), (u32, String)> = Box::new(NameBridge);
        let (y, _) = b.put_r(&("n".into(), 5), &b.missing());
        assert_eq!(y.0, "n");
    }
}
