//! Quotient lenses (Foster, Pilkiewicz & Pierce — the paper's \[15\]).
//!
//! A quotient lens is a lens whose laws hold only *up to equivalence
//! relations* on the source and the view: `get(put(v, s)) ≈ v` rather
//! than `=`. The paper lists them among the well-behaved asymmetric
//! lens families; they matter for data exchange because many practical
//! views are canonical only up to formatting (case, whitespace,
//! ordering) — demanding syntactic equality would reject useful lenses.
//!
//! [`QuotientLens`] wraps an ordinary [`Lens`] with two equivalence
//! predicates; [`check_q_get_put`] / [`check_q_put_get`] are the
//! law checkers relativized to them; [`canonizer`] builds the common
//! case — a lens that is only lossy up to a normalization function.

use crate::asymmetric::{FnLens, Lens};
use crate::laws::LawViolation;
use std::fmt;
use std::sync::Arc;

/// An equivalence predicate.
pub type Equiv<T> = Arc<dyn Fn(&T, &T) -> bool + Send + Sync>;

/// A lens together with equivalences on both sides.
pub struct QuotientLens<L: Lens> {
    inner: L,
    source_equiv: Equiv<L::Source>,
    view_equiv: Equiv<L::View>,
}

impl<L: Lens> QuotientLens<L> {
    /// Wrap `inner` with the given equivalences.
    pub fn new(
        inner: L,
        source_equiv: impl Fn(&L::Source, &L::Source) -> bool + Send + Sync + 'static,
        view_equiv: impl Fn(&L::View, &L::View) -> bool + Send + Sync + 'static,
    ) -> Self {
        QuotientLens {
            inner,
            source_equiv: Arc::new(source_equiv),
            view_equiv: Arc::new(view_equiv),
        }
    }

    /// The wrapped lens.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Are two sources equivalent?
    pub fn source_equiv(&self, a: &L::Source, b: &L::Source) -> bool {
        (self.source_equiv)(a, b)
    }

    /// Are two views equivalent?
    pub fn view_equiv(&self, a: &L::View, b: &L::View) -> bool {
        (self.view_equiv)(a, b)
    }

    /// Forward.
    pub fn get(&self, s: &L::Source) -> L::View {
        self.inner.get(s)
    }

    /// Backward.
    pub fn put(&self, v: &L::View, s: &L::Source) -> L::Source {
        self.inner.put(v, s)
    }

    /// Creation.
    pub fn create(&self, v: &L::View) -> L::Source {
        self.inner.create(v)
    }
}

/// GetPut up to source equivalence: `put(get(s), s) ≈_S s`.
pub fn check_q_get_put<L: Lens>(l: &QuotientLens<L>, s: &L::Source) -> Result<(), LawViolation>
where
    L::Source: fmt::Debug,
{
    let s2 = l.put(&l.get(s), s);
    if l.source_equiv(&s2, s) {
        Ok(())
    } else {
        Err(LawViolation {
            law: "Q-GetPut",
            detail: format!("put(get(s), s) = {s2:?} ≉ s = {s:?}"),
        })
    }
}

/// PutGet up to view equivalence: `get(put(v, s)) ≈_V v`.
pub fn check_q_put_get<L: Lens>(
    l: &QuotientLens<L>,
    v: &L::View,
    s: &L::Source,
) -> Result<(), LawViolation>
where
    L::View: fmt::Debug,
{
    let v2 = l.get(&l.put(v, s));
    if l.view_equiv(&v2, v) {
        Ok(())
    } else {
        Err(LawViolation {
            law: "Q-PutGet",
            detail: format!("get(put(v, s)) = {v2:?} ≉ v = {v:?}"),
        })
    }
}

/// The canonizer pattern: a view normalized by `canon` — `get`
/// canonizes, `put` stores the canonized view — quotient-well-behaved
/// with `v ≈ w ⟺ canon(v) = canon(w)`.
pub fn canonizer<V>(
    canon: impl Fn(&V) -> V + Send + Sync + Clone + 'static,
) -> QuotientLens<FnLens<V, V>>
where
    V: Clone + PartialEq + 'static,
{
    let c1 = canon.clone();
    let c2 = canon.clone();
    let c3 = canon.clone();
    let c4 = canon.clone();
    let lens: FnLens<V, V> = FnLens::new(
        move |s: &V| c1(s),
        move |v: &V, _s: &V| c2(v),
        move |v: &V| c3(v),
    );
    let c5 = canon.clone();
    QuotientLens::new(
        lens,
        move |a: &V, b: &V| c4(a) == c4(b),
        move |a: &V, b: &V| c5(a) == c5(b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymmetric::FnLens;
    use crate::laws;

    /// Case-insensitive name storage: the classic quotient example.
    fn lowercase_lens() -> QuotientLens<FnLens<String, String>> {
        canonizer(|s: &String| s.to_lowercase())
    }

    #[test]
    fn canonizer_satisfies_quotient_laws() {
        let l = lowercase_lens();
        for s in ["Alice", "BOB", "carol"] {
            assert!(check_q_get_put(&l, &s.to_string()).is_ok());
        }
        for (v, s) in [("ALICE", "x"), ("Bob", "y")] {
            assert!(check_q_put_get(&l, &v.to_string(), &s.to_string()).is_ok());
        }
    }

    #[test]
    fn strict_laws_fail_where_quotient_laws_hold() {
        // The same lens is NOT well-behaved under syntactic equality:
        // put("ALICE", s) stores "alice", and get returns "alice" ≠
        // "ALICE".
        let l = lowercase_lens();
        let strict = laws::check_put_get(l.inner(), &"ALICE".to_string(), &"x".to_string());
        assert!(strict.is_err(), "strict PutGet must fail");
        assert!(check_q_put_get(&l, &"ALICE".to_string(), &"x".to_string()).is_ok());
    }

    #[test]
    fn violations_still_detected() {
        // A genuinely broken lens stays broken even up to equivalence.
        let broken: FnLens<String, String> = FnLens::new(
            |s: &String| s.clone(),
            |_v: &String, s: &String| s.clone(), // ignores the view
            |v: &String| v.clone(),
        );
        let q = QuotientLens::new(
            broken,
            |a: &String, b: &String| a == b,
            |a: &String, b: &String| a.to_lowercase() == b.to_lowercase(),
        );
        let err = check_q_put_get(&q, &"new".to_string(), &"old".to_string());
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("Q-PutGet"));
    }

    #[test]
    fn whitespace_canonizer() {
        let l = canonizer(|s: &String| s.split_whitespace().collect::<Vec<_>>().join(" "));
        assert!(check_q_get_put(&l, &"  a   b ".to_string()).is_ok());
        assert!(l.view_equiv(&"a b".to_string(), &" a  b ".to_string()));
        assert!(!l.view_equiv(&"a b".to_string(), &"a c".to_string()));
    }
}
