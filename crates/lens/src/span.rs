//! Spans and cospans of asymmetric lenses.
//!
//! Paper §3: “A set-based symmetric lens between S and T amounts to a
//! set U … and two asymmetric lenses, one from U to S and one from U to
//! T.” A [`SpanLens`] packages exactly that and implements [`SymLens`];
//! when the two legs are well-behaved, so is the induced symmetric
//! lens.
//!
//! The paper also points at *cospans* `S → X ← T` (used in practical
//! data-exchange work \[19\]) and notes “a co-span of asymmetric lenses
//! is not a symmetric lens.” Two renditions live here:
//!
//! * [`MemorylessCospan`] — the cospan *as such*: propagation through
//!   the shared codomain with no extra state. Its laws genuinely fail
//!   for lossy legs (tests exhibit the counterexample), which is the
//!   paper's point.
//! * [`CospanLens`] — the practical half-duplex variant: each side
//!   keeps its last state as complement, recovering well-behavedness.
//!   This is “the precise mathematical relationship” question the
//!   paper's conclusion raises, made executable: a cospan *plus both
//!   repositories' memory* behaves like a symmetric lens.

use crate::asymmetric::Lens;
use crate::symmetric::SymLens;

/// A span `S ←left– U –right→ T` of asymmetric lenses, as a symmetric
/// lens with complement `U`.
#[derive(Clone, Debug)]
pub struct SpanLens<L, R>
where
    L: Lens,
{
    left: L,
    right: R,
    seed: Option<L::Source>,
}

impl<L, R, U> SpanLens<L, R>
where
    L: Lens<Source = U>,
    R: Lens<Source = U>,
{
    /// Build from the two legs. With no seed, the first `put` uses the
    /// legs' `create`.
    pub fn new(left: L, right: R) -> Self {
        SpanLens {
            left,
            right,
            seed: None,
        }
    }

    /// Build with an initial head instance `U`.
    pub fn with_seed(left: L, right: R, seed: U) -> Self {
        SpanLens {
            left,
            right,
            seed: Some(seed),
        }
    }

    /// The left leg.
    pub fn left(&self) -> &L {
        &self.left
    }

    /// The right leg.
    pub fn right(&self) -> &R {
        &self.right
    }
}

impl<L, R, U> SymLens for SpanLens<L, R>
where
    L: Lens<Source = U>,
    R: Lens<Source = U>,
    U: Clone,
    L::View: Clone,
    R::View: Clone,
{
    type Left = L::View;
    type Right = R::View;
    type Compl = Option<U>;

    fn missing(&self) -> Option<U> {
        self.seed.clone()
    }

    fn put_r(&self, x: &L::View, c: &Option<U>) -> (R::View, Option<U>) {
        let u = match c {
            Some(u) => self.left.put(x, u),
            None => self.left.create(x),
        };
        let y = self.right.get(&u);
        (y, Some(u))
    }

    fn put_l(&self, y: &R::View, c: &Option<U>) -> (L::View, Option<U>) {
        let u = match c {
            Some(u) => self.right.put(y, u),
            None => self.right.create(y),
        };
        let x = self.left.get(&u);
        (x, Some(u))
    }
}

/// The *memoryless* cospan `S –left→ X ←right– T`: propagation goes
/// through the shared codomain `X` with no complement at all. **Not** a
/// well-behaved symmetric lens in general (paper §5): anything the
/// codomain does not carry is re-created from defaults on every push.
#[derive(Clone, Debug)]
pub struct MemorylessCospan<L, R> {
    left: L,
    right: R,
}

impl<L, R, X> MemorylessCospan<L, R>
where
    L: Lens<View = X>,
    R: Lens<View = X>,
{
    /// Build from the two legs into the common codomain.
    pub fn new(left: L, right: R) -> Self {
        MemorylessCospan { left, right }
    }
}

impl<L, R, X> SymLens for MemorylessCospan<L, R>
where
    L: Lens<View = X>,
    R: Lens<View = X>,
{
    type Left = L::Source;
    type Right = R::Source;
    type Compl = ();

    fn missing(&self) {}

    fn put_r(&self, s: &L::Source, _c: &()) -> (R::Source, ()) {
        (self.right.create(&self.left.get(s)), ())
    }

    fn put_l(&self, t: &R::Source, _c: &()) -> (L::Source, ()) {
        (self.left.create(&self.right.get(t)), ())
    }
}

/// The *stateful* cospan: propagation through the shared codomain, with
/// each repository's last state kept as complement (the half-duplex
/// interoperation of the paper's \[19\]). The memory restores
/// well-behavedness — see the tests contrasting it with
/// [`MemorylessCospan`].
#[derive(Clone, Debug)]
pub struct CospanLens<L, R>
where
    L: Lens,
    R: Lens,
{
    left: L,
    right: R,
    seed_left: Option<L::Source>,
    seed_right: Option<R::Source>,
}

impl<L, R, X> CospanLens<L, R>
where
    L: Lens<View = X>,
    R: Lens<View = X>,
{
    /// Build from the two legs into the common codomain.
    pub fn new(left: L, right: R) -> Self {
        CospanLens {
            left,
            right,
            seed_left: None,
            seed_right: None,
        }
    }

    /// Provide initial repository states used before the first
    /// propagation.
    pub fn with_seeds(left: L, right: R, seed_left: L::Source, seed_right: R::Source) -> Self {
        CospanLens {
            left,
            right,
            seed_left: Some(seed_left),
            seed_right: Some(seed_right),
        }
    }
}

impl<L, R, X> SymLens for CospanLens<L, R>
where
    L: Lens<View = X>,
    R: Lens<View = X>,
    L::Source: Clone,
    R::Source: Clone,
{
    type Left = L::Source;
    type Right = R::Source;
    /// Last-seen states of the two repositories.
    type Compl = (Option<L::Source>, Option<R::Source>);

    fn missing(&self) -> Self::Compl {
        (self.seed_left.clone(), self.seed_right.clone())
    }

    fn put_r(&self, s: &L::Source, c: &Self::Compl) -> (R::Source, Self::Compl) {
        let x = self.left.get(s);
        let t = match &c.1 {
            Some(t_old) => self.right.put(&x, t_old),
            None => self.right.create(&x),
        };
        let compl = (Some(s.clone()), Some(t.clone()));
        (t, compl)
    }

    fn put_l(&self, t: &R::Source, c: &Self::Compl) -> (L::Source, Self::Compl) {
        let x = self.right.get(t);
        let s = match &c.0 {
            Some(s_old) => self.left.put(&x, s_old),
            None => self.left.create(&x),
        };
        let compl = (Some(s.clone()), Some(t.clone()));
        (s, compl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymmetric::FnLens;
    use crate::laws;

    /// The head U = (name, age, city); left leg projects (name, age),
    /// right leg projects (name, city). The classic symmetric scenario
    /// of the paper: neither side holds all the data.
    type U = (String, u32, String);

    fn left_leg() -> FnLens<U, (String, u32)> {
        FnLens::new(
            |u: &U| (u.0.clone(), u.1),
            |v: &(String, u32), u: &U| (v.0.clone(), v.1, u.2.clone()),
            |v: &(String, u32)| (v.0.clone(), v.1, "unknown".into()),
        )
    }

    fn right_leg() -> FnLens<U, (String, String)> {
        FnLens::new(
            |u: &U| (u.0.clone(), u.2.clone()),
            |v: &(String, String), u: &U| (v.0.clone(), u.1, v.1.clone()),
            |v: &(String, String)| (v.0.clone(), 0, v.1.clone()),
        )
    }

    #[test]
    fn legs_are_well_behaved() {
        let sources = vec![
            ("alice".to_string(), 30u32, "Sydney".to_string()),
            ("bob".to_string(), 40, "Santiago".to_string()),
        ];
        let l = left_leg();
        let views = vec![("zed".to_string(), 9u32)];
        assert!(laws::check_well_behaved(&l, &sources, &views).all_ok());
        let r = right_leg();
        let views = vec![("zed".to_string(), "Quito".to_string())];
        assert!(laws::check_well_behaved(&r, &sources, &views).all_ok());
    }

    #[test]
    fn span_is_well_behaved_symmetric_lens() {
        let span = SpanLens::new(left_leg(), right_leg());
        let report = laws::check_sym_well_behaved(
            &span,
            &[("alice".into(), 30), ("bob".into(), 40)],
            &[("carol".into(), "Quito".into())],
            &[None, Some(("seed".into(), 7, "Lima".into()))],
        );
        assert!(report.all_ok(), "{report}");
    }

    #[test]
    fn span_round_trip_preserves_both_sides_private_data() {
        let span = SpanLens::new(left_leg(), right_leg());
        let c0 = span.missing();
        // Left pushes (alice, 30): right sees default city.
        let ((n, city), c1) = span.put_r(&("alice".into(), 30), &c0);
        assert_eq!((n.as_str(), city.as_str()), ("alice", "unknown"));
        // Right edits the city and pushes back: age survives.
        let ((n2, age), c2) = span.put_l(&("alice".into(), "Sydney".into()), &c1);
        assert_eq!((n2.as_str(), age), ("alice", 30));
        // And the city now lives in the head.
        let ((_, city2), _) = span.put_r(&("alice".into(), 30), &c2);
        assert_eq!(city2, "Sydney");
    }

    #[test]
    fn span_inversion_is_free() {
        use crate::symmetric::invert;
        let span = SpanLens::new(left_leg(), right_leg());
        let inv = invert(SpanLens::new(left_leg(), right_leg()));
        let c = span.missing();
        let (y, _) = span.put_r(&("a".into(), 1), &c);
        let (y2, _) = inv.put_l(&("a".into(), 1), &c);
        assert_eq!(y, y2);
    }

    fn lossy_left_leg() -> FnLens<(String, u32), String> {
        // S = (name, age), X = name: the age never reaches the codomain.
        FnLens::new(
            |s: &(String, u32)| s.0.clone(),
            |v: &String, s: &(String, u32)| (v.clone(), s.1),
            |v: &String| (v.clone(), 0),
        )
    }

    fn lossy_right_leg() -> FnLens<(String, String), String> {
        FnLens::new(
            |s: &(String, String)| s.0.clone(),
            |v: &String, s: &(String, String)| (v.clone(), s.1.clone()),
            |v: &String| (v.clone(), "unknown".into()),
        )
    }

    /// The memoryless cospan through a lossy codomain (X = name only)
    /// is **not** a symmetric lens: PutRL fails because the age can
    /// never be restored — the paper's “a co-span of asymmetric lenses
    /// is not a symmetric lens.”
    #[test]
    fn memoryless_cospan_violates_symmetric_laws() {
        let cospan = MemorylessCospan::new(lossy_left_leg(), lossy_right_leg());
        let err = laws::check_put_rl(&cospan, &("alice".to_string(), 30), &());
        assert!(
            err.is_err(),
            "round-tripping (alice, 30) through X = name forgets the age"
        );
        // With age 0 (the create default) the round trip happens to
        // close — the violation is about information, not plumbing.
        assert!(laws::check_put_rl(&cospan, &("alice".to_string(), 0), &()).is_ok());
    }

    /// Adding per-repository memory (the stateful [`CospanLens`])
    /// recovers the symmetric-lens laws — the executable answer to the
    /// paper's closing question about the relationship between
    /// cospan-based data exchange and span-based symmetric lenses.
    #[test]
    fn stateful_cospan_is_law_abiding() {
        let cospan = CospanLens::new(lossy_left_leg(), lossy_right_leg());
        let report = laws::check_sym_well_behaved(
            &cospan,
            &[("alice".into(), 30), ("bob".into(), 7)],
            &[("carol".into(), "Quito".into())],
            &[
                (None, None),
                (
                    Some(("alice".into(), 30u32)),
                    Some(("alice".into(), "Sydney".into())),
                ),
            ],
        );
        assert!(report.all_ok(), "{report}");
    }

    #[test]
    fn cospan_propagation_still_useful() {
        // Despite not being a symmetric lens, the cospan does propagate
        // shared data: the half-duplex interoperation of the paper's
        // [19].
        let cospan = CospanLens::new(lossy_left_leg(), lossy_right_leg());
        let (t, c) = cospan.put_r(&("alice".into(), 30), &cospan.missing());
        assert_eq!(t, ("alice".to_string(), "unknown".to_string()));
        // Right renames; the left side follows while keeping its age.
        let (s, _) = cospan.put_l(&("alicia".into(), "Sydney".into()), &c);
        assert_eq!(s, ("alicia".to_string(), 30));
    }
}
