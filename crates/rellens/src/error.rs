//! Relational-lens failure modes.

use dex_relational::{Name, RelationalError};
use std::fmt;

/// Errors raised building or running relational lenses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RellensError {
    /// A view row violates the selection predicate it must satisfy.
    PredicateViolation {
        /// Display of the predicate.
        predicate: String,
        /// Display of the offending row.
        row: String,
    },
    /// An environment value was requested but not provided.
    MissingEnvValue(Name),
    /// The view relation's header does not match the lens's view schema.
    ViewSchemaMismatch {
        /// What was expected.
        expected: String,
        /// What arrived.
        actual: String,
    },
    /// A base relation is used more than once in one lens tree, which
    /// would make `put` ambiguous.
    DuplicateBaseRelation(Name),
    /// The lens tree references something the schema lacks, or another
    /// structural problem.
    Structural(String),
    /// An earlier failed apply left the incremental lens's materialized
    /// state inconsistent; it must be rebuilt before further deltas.
    StatePoisoned,
    /// An underlying relational error.
    Relational(RelationalError),
}

impl fmt::Display for RellensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RellensError::PredicateViolation { predicate, row } => {
                write!(f, "view row {row} violates selection predicate {predicate}")
            }
            RellensError::MissingEnvValue(n) => {
                write!(f, "environment value `{n}` required by an update policy is missing")
            }
            RellensError::ViewSchemaMismatch { expected, actual } => {
                write!(f, "view schema mismatch: expected {expected}, got {actual}")
            }
            RellensError::DuplicateBaseRelation(n) => write!(
                f,
                "base relation `{n}` appears more than once in the lens tree; put would be ambiguous"
            ),
            RellensError::Structural(msg) => write!(f, "structural error: {msg}"),
            RellensError::StatePoisoned => write!(
                f,
                "incremental lens state was poisoned by an earlier failed apply; rebuild it with IncrementalLens::new"
            ),
            RellensError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RellensError {}

impl From<RelationalError> for RellensError {
    fn from(e: RelationalError) -> Self {
        RellensError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RellensError::MissingEnvValue(Name::new("today"));
        assert!(e.to_string().contains("today"));
        let e = RellensError::DuplicateBaseRelation(Name::new("R"));
        assert!(e.to_string().contains("ambiguous"));
    }
}
