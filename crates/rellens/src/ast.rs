//! The relational-lens expression tree.
//!
//! A [`RelLensExpr`] is simultaneously
//! * a relational-algebra *query* (its `get` direction, evaluated by
//!   [`crate::eval`]),
//! * a *view-update translator* (its `put` direction, parameterized by
//!   the node policies), and
//! * a *mapping plan* — the thing the paper's §4 pipeline compiles
//!   st-tgds into and that `show_plan` renders for the user.

use crate::error::RellensError;
use crate::policy::{JoinPolicy, UnionPolicy, UpdatePolicy};
use dex_relational::{AttrType, Expr, Name, RelSchema, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relational-lens operator tree.
///
/// ```
/// use dex_rellens::{Environment, InstanceLens, RelLensExpr, UpdatePolicy};
/// use dex_relational::{tuple, Expr, Instance, RelSchema, Schema};
///
/// let schema = Schema::with_relations(vec![
///     RelSchema::untyped("Person", vec!["id", "name", "age"]).unwrap(),
/// ]).unwrap();
/// let lens = InstanceLens::new(
///     RelLensExpr::base("Person")
///         .select(Expr::attr("age").ge(Expr::lit(18i64)))
///         .project(vec!["id", "name"], vec![("age", UpdatePolicy::Const(18i64.into()))]),
///     schema.clone(),
///     Environment::new(),
/// ).unwrap();
///
/// let db = Instance::with_facts(schema, vec![
///     ("Person", vec![tuple![1i64, "Alice", 30i64], tuple![2i64, "Kid", 7i64]]),
/// ]).unwrap();
/// let view = lens.try_get(&db).unwrap();
/// assert_eq!(view.len(), 1);              // only Alice is an adult
///
/// // Insert through the view: the dropped column is filled by policy.
/// let mut edited = view.clone();
/// edited.insert(tuple![3i64, "Dan"]).unwrap();
/// let db2 = lens.try_put(&edited, &db).unwrap();
/// assert!(db2.contains("Person", &tuple![3i64, "Dan", 18i64]));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum RelLensExpr {
    /// A base table, by name.
    Base(Name),
    /// σ — the selection lens.
    Select {
        /// The input lens.
        input: Box<RelLensExpr>,
        /// Rows of the view satisfy this predicate.
        pred: Expr,
    },
    /// π — the projection lens. `attrs` are kept (in order); every
    /// dropped attribute needs an [`UpdatePolicy`].
    Project {
        /// The input lens.
        input: Box<RelLensExpr>,
        /// The kept attributes.
        attrs: Vec<Name>,
        /// Fill policies for the dropped attributes.
        policies: BTreeMap<Name, UpdatePolicy>,
    },
    /// ρ — the renaming lens.
    Rename {
        /// The input lens.
        input: Box<RelLensExpr>,
        /// old name → new name.
        renaming: BTreeMap<Name, Name>,
    },
    /// ⋈ — the (natural) join lens.
    Join {
        /// Left input.
        left: Box<RelLensExpr>,
        /// Right input.
        right: Box<RelLensExpr>,
        /// Deletion policy.
        policy: JoinPolicy,
    },
    /// ∪ — the union lens.
    Union {
        /// Left input.
        left: Box<RelLensExpr>,
        /// Right input.
        right: Box<RelLensExpr>,
        /// Insertion-routing policy.
        policy: UnionPolicy,
    },
}

impl RelLensExpr {
    /// Base-table shorthand.
    pub fn base(name: impl Into<Name>) -> RelLensExpr {
        RelLensExpr::Base(name.into())
    }

    /// Selection shorthand.
    pub fn select(self, pred: Expr) -> RelLensExpr {
        RelLensExpr::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Projection shorthand.
    pub fn project(self, attrs: Vec<&str>, policies: Vec<(&str, UpdatePolicy)>) -> RelLensExpr {
        RelLensExpr::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Name::new).collect(),
            policies: policies
                .into_iter()
                .map(|(a, p)| (Name::new(a), p))
                .collect(),
        }
    }

    /// Renaming shorthand.
    pub fn rename(self, pairs: Vec<(&str, &str)>) -> RelLensExpr {
        RelLensExpr::Rename {
            input: Box::new(self),
            renaming: pairs
                .into_iter()
                .map(|(a, b)| (Name::new(a), Name::new(b)))
                .collect(),
        }
    }

    /// Join shorthand.
    pub fn join(self, right: RelLensExpr, policy: JoinPolicy) -> RelLensExpr {
        RelLensExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            policy,
        }
    }

    /// Union shorthand.
    pub fn union(self, right: RelLensExpr, policy: UnionPolicy) -> RelLensExpr {
        RelLensExpr::Union {
            left: Box::new(self),
            right: Box::new(right),
            policy,
        }
    }

    /// The base relations referenced, in tree order.
    pub fn base_relations(&self) -> Vec<Name> {
        fn go(e: &RelLensExpr, out: &mut Vec<Name>) {
            match e {
                RelLensExpr::Base(n) => out.push(n.clone()),
                RelLensExpr::Select { input, .. }
                | RelLensExpr::Project { input, .. }
                | RelLensExpr::Rename { input, .. } => go(input, out),
                RelLensExpr::Join { left, right, .. } | RelLensExpr::Union { left, right, .. } => {
                    go(left, out);
                    go(right, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Validate against a database schema and compute the view schema.
    ///
    /// Checks: base relations exist and are used at most once (so `put`
    /// is unambiguous), predicates reference in-scope attributes, every
    /// dropped projection attribute has a policy, join/union headers
    /// are compatible.
    pub fn view_schema(&self, schema: &Schema) -> Result<RelSchema, RellensError> {
        // Uniqueness of base relations.
        let bases = self.base_relations();
        let mut seen = BTreeSet::new();
        for b in &bases {
            if !seen.insert(b.clone()) {
                return Err(RellensError::DuplicateBaseRelation(b.clone()));
            }
        }
        self.view_schema_unchecked(schema)
    }

    fn view_schema_unchecked(&self, schema: &Schema) -> Result<RelSchema, RellensError> {
        match self {
            RelLensExpr::Base(n) => Ok(schema.expect_relation(n.as_str())?.clone()),
            RelLensExpr::Select { input, pred } => {
                let s = input.view_schema_unchecked(schema)?;
                for a in pred.referenced_attrs() {
                    if s.position(a.as_str()).is_none() {
                        return Err(RellensError::Structural(format!(
                            "selection predicate references `{a}` not present in {s}"
                        )));
                    }
                }
                Ok(s)
            }
            RelLensExpr::Project {
                input,
                attrs,
                policies,
            } => {
                let s = input.view_schema_unchecked(schema)?;
                let mut kept: Vec<(Name, AttrType)> = Vec::with_capacity(attrs.len());
                for a in attrs {
                    let pos = s.position(a.as_str()).ok_or_else(|| {
                        RellensError::Structural(format!("projection keeps `{a}` which {s} lacks"))
                    })?;
                    kept.push(s.attrs()[pos].clone());
                }
                // Every dropped attribute needs a policy.
                for (a, _) in s.attrs() {
                    if !attrs.contains(a) && !policies.contains_key(a) {
                        return Err(RellensError::Structural(format!(
                            "projection drops `{a}` without an update policy \
                             (the paper's “what do I do with this extra column?”)"
                        )));
                    }
                }
                for a in policies.keys() {
                    if s.position(a.as_str()).is_none() || attrs.contains(a) {
                        return Err(RellensError::Structural(format!(
                            "policy given for `{a}` which is not a dropped attribute"
                        )));
                    }
                }
                let kept_names: BTreeSet<Name> = kept.iter().map(|(a, _)| a.clone()).collect();
                let mut out =
                    RelSchema::new(s.name().clone(), kept).map_err(RellensError::Relational)?;
                *out.fds_mut() = s.fds().restrict_to(&kept_names);
                Ok(out)
            }
            RelLensExpr::Rename { input, renaming } => {
                let s = input.view_schema_unchecked(schema)?;
                for from in renaming.keys() {
                    if s.position(from.as_str()).is_none() {
                        return Err(RellensError::Structural(format!(
                            "rename of `{from}` which {s} lacks"
                        )));
                    }
                }
                let attrs: Vec<(Name, AttrType)> = s
                    .attrs()
                    .iter()
                    .map(|(a, t)| (renaming.get(a).cloned().unwrap_or_else(|| a.clone()), *t))
                    .collect();
                let mut out =
                    RelSchema::new(s.name().clone(), attrs).map_err(RellensError::Relational)?;
                *out.fds_mut() = s.fds().rename(renaming);
                Ok(out)
            }
            RelLensExpr::Join { left, right, .. } => {
                let l = left.view_schema_unchecked(schema)?;
                let r = right.view_schema_unchecked(schema)?;
                let mut attrs = l.attrs().to_vec();
                for (a, t) in r.attrs() {
                    if l.position(a.as_str()).is_none() {
                        attrs.push((a.clone(), *t));
                    }
                }
                let mut out =
                    RelSchema::new(l.name().clone(), attrs).map_err(RellensError::Relational)?;
                let mut fds = l.fds().clone();
                for fd in r.fds().iter() {
                    fds.insert(fd.clone());
                }
                *out.fds_mut() = fds;
                Ok(out)
            }
            RelLensExpr::Union { left, right, .. } => {
                let l = left.view_schema_unchecked(schema)?;
                let r = right.view_schema_unchecked(schema)?;
                let la: Vec<&Name> = l.attr_names().collect();
                let ra: Vec<&Name> = r.attr_names().collect();
                if la != ra {
                    return Err(RellensError::Structural(format!(
                        "union headers differ: {l} vs {r}"
                    )));
                }
                let mut out = l.clone();
                let common = l
                    .fds()
                    .iter()
                    .filter(|fd| r.fds().implies(fd))
                    .cloned()
                    .collect();
                *out.fds_mut() = common;
                Ok(out)
            }
        }
    }

    /// Flatten the tree into per-node summaries (pre-order), exposing
    /// each node's kind, display detail, and update policies. This is
    /// the introspection surface behind `dexcli explain`: renderers get
    /// the policy annotations without matching on the tree shape, and
    /// each node's `path` (`"L"`/`"R"` steps joined by `.`) lines up
    /// with the hole paths in `dex-core` templates.
    pub fn summarize_nodes(&self) -> Vec<NodeSummary> {
        fn go(e: &RelLensExpr, path: &mut Vec<&'static str>, out: &mut Vec<NodeSummary>) {
            let at = path.join(".");
            match e {
                RelLensExpr::Base(n) => out.push(NodeSummary {
                    path: at,
                    kind: "base",
                    detail: n.to_string(),
                    policies: vec![],
                    policy: None,
                }),
                RelLensExpr::Select { input, pred } => {
                    out.push(NodeSummary {
                        path: at,
                        kind: "select",
                        detail: pred.to_string(),
                        policies: vec![],
                        policy: None,
                    });
                    path.push("L");
                    go(input, path, out);
                    path.pop();
                }
                RelLensExpr::Project {
                    input,
                    attrs,
                    policies,
                } => {
                    out.push(NodeSummary {
                        path: at,
                        kind: "project",
                        detail: attrs
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        policies: policies
                            .iter()
                            .map(|(a, p)| (a.clone(), p.to_string()))
                            .collect(),
                        policy: None,
                    });
                    path.push("L");
                    go(input, path, out);
                    path.pop();
                }
                RelLensExpr::Rename { input, renaming } => {
                    out.push(NodeSummary {
                        path: at,
                        kind: "rename",
                        detail: renaming
                            .iter()
                            .map(|(a, b)| format!("{a}→{b}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        policies: vec![],
                        policy: None,
                    });
                    path.push("L");
                    go(input, path, out);
                    path.pop();
                }
                RelLensExpr::Join {
                    left,
                    right,
                    policy,
                } => {
                    out.push(NodeSummary {
                        path: at,
                        kind: "join",
                        detail: String::new(),
                        policies: vec![],
                        policy: Some(policy.to_string()),
                    });
                    path.push("L");
                    go(left, path, out);
                    path.pop();
                    path.push("R");
                    go(right, path, out);
                    path.pop();
                }
                RelLensExpr::Union {
                    left,
                    right,
                    policy,
                } => {
                    out.push(NodeSummary {
                        path: at,
                        kind: "union",
                        detail: String::new(),
                        policies: vec![],
                        policy: Some(policy.to_string()),
                    });
                    path.push("L");
                    go(left, path, out);
                    path.pop();
                    path.push("R");
                    go(right, path, out);
                    path.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Render as an indented plan — the paper's “show plan” for
    /// mappings.
    pub fn plan_string(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            RelLensExpr::Base(n) => {
                out.push_str(&format!("{pad}Base[{n}]\n"));
            }
            RelLensExpr::Select { input, pred } => {
                out.push_str(&format!("{pad}Select[{pred}]\n"));
                input.render(depth + 1, out);
            }
            RelLensExpr::Project {
                input,
                attrs,
                policies,
            } => {
                let kept = attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let pols = policies
                    .iter()
                    .map(|(a, p)| format!("{a} := {p}"))
                    .collect::<Vec<_>>()
                    .join("; ");
                if pols.is_empty() {
                    out.push_str(&format!("{pad}Project[{kept}]\n"));
                } else {
                    out.push_str(&format!("{pad}Project[{kept} | {pols}]\n"));
                }
                input.render(depth + 1, out);
            }
            RelLensExpr::Rename { input, renaming } => {
                let pairs = renaming
                    .iter()
                    .map(|(a, b)| format!("{a}→{b}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("{pad}Rename[{pairs}]\n"));
                input.render(depth + 1, out);
            }
            RelLensExpr::Join {
                left,
                right,
                policy,
            } => {
                out.push_str(&format!("{pad}Join[{policy}]\n"));
                left.render(depth + 1, out);
                right.render(depth + 1, out);
            }
            RelLensExpr::Union {
                left,
                right,
                policy,
            } => {
                out.push_str(&format!("{pad}Union[{policy}]\n"));
                left.render(depth + 1, out);
                right.render(depth + 1, out);
            }
        }
    }
}

/// One node of a flattened lens tree (see
/// [`RelLensExpr::summarize_nodes`]).
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct NodeSummary {
    /// `"L"`/`"R"` descent steps from the root, joined by `.` (empty
    /// for the root); matches template hole paths.
    pub path: String,
    /// The operator: `base`, `select`, `project`, `rename`, `join`, or
    /// `union`.
    pub kind: &'static str,
    /// Operator-specific display detail (base name, predicate, kept
    /// attributes, renaming).
    pub detail: String,
    /// Project nodes: `(dropped column, policy display)` pairs.
    pub policies: Vec<(Name, String)>,
    /// Join/Union nodes: the node policy's display form.
    pub policy: Option<String>,
}

impl fmt::Display for RelLensExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.plan_string().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::Fd;

    fn db_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Person", vec!["id", "name", "age", "city"])
                .unwrap()
                .with_fd(Fd::new(vec!["id"], vec!["name", "age", "city"]))
                .unwrap(),
            RelSchema::untyped("CityZip", vec!["city", "zip"]).unwrap(),
            RelSchema::untyped("Other", vec!["id", "name"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn base_schema_passthrough() {
        let e = RelLensExpr::base("Person");
        let s = e.view_schema(&db_schema()).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.fds().len(), 1);
    }

    #[test]
    fn unknown_base_rejected() {
        let e = RelLensExpr::base("Nope");
        assert!(e.view_schema(&db_schema()).is_err());
    }

    #[test]
    fn select_checks_predicate_scope() {
        let ok = RelLensExpr::base("Person").select(Expr::attr("age").ge(Expr::lit(18i64)));
        assert!(ok.view_schema(&db_schema()).is_ok());
        let bad = RelLensExpr::base("Person").select(Expr::attr("zip").is_null());
        assert!(bad.view_schema(&db_schema()).is_err());
    }

    #[test]
    fn project_requires_policies_for_dropped() {
        let missing = RelLensExpr::base("Person").project(vec!["id", "name"], vec![]);
        let err = missing.view_schema(&db_schema()).unwrap_err();
        assert!(err.to_string().contains("update policy"));
        let ok = RelLensExpr::base("Person").project(
            vec!["id", "name"],
            vec![
                ("age", UpdatePolicy::Null),
                ("city", UpdatePolicy::fd_or_null(vec!["name"])),
            ],
        );
        let s = ok.view_schema(&db_schema()).unwrap();
        assert_eq!(s.arity(), 2);
        // FD id -> name survives projection? The declared FD mentions
        // age and city, so it is dropped by the conservative restriction.
        assert_eq!(s.fds().len(), 0);
    }

    #[test]
    fn project_policy_for_kept_attr_rejected() {
        let bad = RelLensExpr::base("Person").project(
            vec!["id", "name"],
            vec![
                ("name", UpdatePolicy::Null),
                ("age", UpdatePolicy::Null),
                ("city", UpdatePolicy::Null),
            ],
        );
        assert!(bad.view_schema(&db_schema()).is_err());
    }

    #[test]
    fn rename_schema() {
        let e = RelLensExpr::base("Person").rename(vec![("id", "pid")]);
        let s = e.view_schema(&db_schema()).unwrap();
        assert_eq!(s.position("pid"), Some(0));
        assert!(s.fds().implies(&Fd::new(vec!["pid"], vec!["name"])));
    }

    #[test]
    fn join_schema_merges_headers() {
        let e =
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteLeft);
        let s = e.view_schema(&db_schema()).unwrap();
        assert_eq!(s.arity(), 5);
        assert!(s.position("zip").is_some());
    }

    #[test]
    fn union_requires_same_headers() {
        let bad = RelLensExpr::base("Person")
            .union(RelLensExpr::base("CityZip"), UnionPolicy::InsertLeft);
        assert!(bad.view_schema(&db_schema()).is_err());
        let ok = RelLensExpr::base("Person")
            .project(
                vec!["id", "name"],
                vec![("age", UpdatePolicy::Null), ("city", UpdatePolicy::Null)],
            )
            .union(RelLensExpr::base("Other"), UnionPolicy::InsertLeft);
        assert!(ok.view_schema(&db_schema()).is_ok());
    }

    #[test]
    fn duplicate_base_rejected() {
        let e =
            RelLensExpr::base("Person").join(RelLensExpr::base("Person"), JoinPolicy::DeleteLeft);
        assert!(matches!(
            e.view_schema(&db_schema()).unwrap_err(),
            RellensError::DuplicateBaseRelation(_)
        ));
    }

    #[test]
    fn plan_rendering() {
        let e = RelLensExpr::base("Person")
            .select(Expr::attr("age").ge(Expr::lit(18i64)))
            .project(
                vec!["id", "name"],
                vec![
                    ("age", UpdatePolicy::Const(18i64.into())),
                    ("city", UpdatePolicy::fd_or_null(vec!["name"])),
                ],
            );
        let plan = e.plan_string();
        assert!(plan.contains("Project[id, name | age := const 18; city := fd(name) else null]"));
        assert!(plan.contains("  Select[age >= 18]"));
        assert!(plan.contains("    Base[Person]"));
    }

    #[test]
    fn summarize_nodes_preorder_with_paths_and_policies() {
        let e = RelLensExpr::base("Person")
            .project(vec!["id", "name"], vec![("age", UpdatePolicy::Null)])
            .union(RelLensExpr::base("Other"), UnionPolicy::InsertLeft);
        let nodes = e.summarize_nodes();
        let shape: Vec<(&str, &str)> = nodes.iter().map(|n| (n.path.as_str(), n.kind)).collect();
        assert_eq!(
            shape,
            vec![
                ("", "union"),
                ("L", "project"),
                ("L.L", "base"),
                ("R", "base")
            ]
        );
        assert_eq!(nodes[0].policy.as_deref(), Some("insert-left"));
        assert_eq!(
            nodes[1].policies,
            vec![(Name::new("age"), "null".to_string())]
        );
    }

    #[test]
    fn base_relations_in_tree_order() {
        let e =
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteBoth);
        assert_eq!(
            e.base_relations(),
            vec![Name::new("Person"), Name::new("CityZip")]
        );
    }
}
