//! Incremental (delta) evaluation of lens expressions — the
//! delta-lens direction (the paper's \[8\]: “delta lenses … enrich the
//! situation by using the nature of the modification, the delta, from
//! g(s) to v”).
//!
//! [`IncrementalLens`] materializes the per-node state a
//! [`RelLensExpr`] needs to translate **source deltas into view
//! deltas** without recomputing `get`:
//!
//! * `Select` is stateless — filter the delta rows;
//! * `Project` keeps projection *counts* (a view row disappears only
//!   when its last source row does);
//! * `Join` keeps both input sets with join-key indexes — an inserted
//!   left row emits exactly its matches against the current right;
//! * `Union` keeps both input sets — a deletion reaches the view only
//!   if the other side does not still provide the row;
//! * `Rename`/`Base` pass deltas through.
//!
//! The correctness contract (checked by unit and property tests):
//! applying a source delta yields exactly
//! `diff(get(old), get(new))`.

use crate::ast::RelLensExpr;
use crate::error::RellensError;
use dex_lens::edit::Delta;
use dex_relational::{
    ExhaustionReport, Expr, Governor, Instance, Name, RelSchema, Schema, Tuple, TupleIndex,
};
use std::collections::{BTreeMap, BTreeSet};

/// A delta on a single relation (the view).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelDelta {
    /// Rows that appeared.
    pub inserts: BTreeSet<Tuple>,
    /// Rows that disappeared.
    pub deletes: BTreeSet<Tuple>,
}

impl RelDelta {
    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of atomic changes.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    fn insert(&mut self, t: Tuple) {
        if !self.deletes.remove(&t) {
            self.inserts.insert(t);
        }
    }

    fn delete(&mut self, t: Tuple) {
        if !self.inserts.remove(&t) {
            self.deletes.insert(t);
        }
    }
}

/// Materialized per-node state for incremental evaluation.
enum Node {
    Base {
        rel: Name,
        /// Current rows (to suppress no-op deltas: re-inserting a
        /// present row or deleting an absent one must not propagate).
        rows: BTreeSet<Tuple>,
    },
    Select {
        child: Box<Node>,
        pred: Expr,
        schema: RelSchema,
    },
    Project {
        child: Box<Node>,
        positions: Vec<usize>,
        counts: BTreeMap<Tuple, usize>,
    },
    Rename {
        child: Box<Node>,
    },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        /// Layout of the right side's non-key attributes in the output.
        r_extra: Vec<usize>,
        /// Key → rows indexes (shared [`TupleIndex`] machinery from
        /// `dex_relational::index`); each knows its own key positions.
        l_index: TupleIndex,
        r_index: TupleIndex,
    },
    Union {
        left: Box<Node>,
        right: Box<Node>,
        l_rows: BTreeSet<Tuple>,
        r_rows: BTreeSet<Tuple>,
    },
}

/// The result of a governed delta replay
/// ([`IncrementalLens::apply_governed`]).
#[derive(Clone, Debug)]
pub enum ReplayOutcome {
    /// Every edit of the delta was applied.
    Complete(RelDelta),
    /// A budget or cancellation stopped the replay between edits. The
    /// lens state is the **consistent prefix**: exactly `applied`
    /// edits of the delta (deletes first, then inserts, in order) have
    /// been folded in, and `view_delta` is their induced view change.
    /// The remaining edits can be replayed later with another call.
    Exhausted {
        /// View delta of the applied prefix.
        view_delta: RelDelta,
        /// How many edits of the source delta were applied.
        applied: usize,
        /// Which budget tripped and the consumption so far.
        report: ExhaustionReport,
    },
}

/// An incrementally maintained lens view.
pub struct IncrementalLens {
    root: Node,
    /// Set when an apply failed partway through mutating node state:
    /// the materialized counts/indexes may no longer agree with each
    /// other, so further deltas are refused until a rebuild.
    poisoned: bool,
}

impl IncrementalLens {
    /// Build the node state by materializing `expr` over `initial`.
    pub fn new(
        expr: &RelLensExpr,
        schema: &Schema,
        initial: &Instance,
    ) -> Result<Self, RellensError> {
        expr.view_schema(schema)?; // full validation up front
        let root = build(expr, schema, initial)?;
        Ok(IncrementalLens {
            root,
            poisoned: false,
        })
    }

    /// Has an earlier failed apply left the state inconsistent?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn guard_poisoned(&self) -> Result<(), RellensError> {
        if self.poisoned {
            Err(RellensError::StatePoisoned)
        } else {
            Ok(())
        }
    }

    /// Apply a source-instance delta; returns the induced view delta.
    ///
    /// The delta must be *accurate*: inserts of rows that were absent,
    /// deletes of rows that were present (inaccurate edits are
    /// filtered at the base relations, so state stays consistent).
    pub fn apply(&mut self, delta: &Delta) -> Result<RelDelta, RellensError> {
        self.guard_poisoned()?;
        match apply(&mut self.root, delta) {
            Ok(d) => Ok(d),
            Err(e) => {
                // The node tree may have been partially updated before
                // the error surfaced; refuse further deltas.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Replay a source delta edit-at-a-time under a resource budget.
    ///
    /// Semantically identical to [`apply`](IncrementalLens::apply) when
    /// the budget holds; when it trips, the replay stops **between**
    /// edits, so the lens state is a consistent prefix of the delta
    /// (never poisoned by a trip) and the caller learns exactly how
    /// many edits were folded in. Each edit's induced view changes
    /// count as derived tuples against the budget.
    pub fn apply_governed(
        &mut self,
        delta: &Delta,
        gov: &Governor,
    ) -> Result<ReplayOutcome, RellensError> {
        self.guard_poisoned()?;
        let mut out = RelDelta::default();
        // Deletes before inserts, mirroring the batch ordering at the
        // base relations.
        let edits = delta
            .deletes
            .iter()
            .map(|e| (false, e))
            .chain(delta.inserts.iter().map(|e| (true, e)));
        for (applied, (is_insert, (rel, t))) in edits.enumerate() {
            if let Err(reason) = gov.check() {
                return Ok(ReplayOutcome::Exhausted {
                    view_delta: out,
                    applied,
                    report: gov.report(reason),
                });
            }
            let mut single = Delta::empty();
            if is_insert {
                single.inserts.push((rel.clone(), t.clone()));
            } else {
                single.deletes.push((rel.clone(), t.clone()));
            }
            let d = match apply(&mut self.root, &single) {
                Ok(d) => d,
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            };
            gov.note_tuples(d.len());
            for v in d.deletes {
                out.delete(v);
            }
            for v in d.inserts {
                out.insert(v);
            }
        }
        Ok(ReplayOutcome::Complete(out))
    }
}

fn build(expr: &RelLensExpr, schema: &Schema, inst: &Instance) -> Result<Node, RellensError> {
    Ok(match expr {
        RelLensExpr::Base(n) => Node::Base {
            rel: n.clone(),
            rows: inst.expect_relation(n.as_str())?.tuples().clone(),
        },
        RelLensExpr::Select { input, pred } => {
            let child_schema = input.view_schema(schema)?;
            Node::Select {
                child: Box::new(build(input, schema, inst)?),
                pred: pred.clone(),
                schema: child_schema,
            }
        }
        RelLensExpr::Project { input, attrs, .. } => {
            let child_schema = input.view_schema(schema)?;
            // Validation pinned every projected attribute to the child
            // schema, so position() cannot miss; filter_map keeps that
            // invariant panic-free.
            let positions: Vec<usize> = attrs
                .iter()
                .filter_map(|a| child_schema.position(a.as_str()))
                .collect();
            let mut counts: BTreeMap<Tuple, usize> = BTreeMap::new();
            for t in input.get(inst)?.iter() {
                *counts.entry(t.project(&positions)).or_default() += 1;
            }
            Node::Project {
                child: Box::new(build(input, schema, inst)?),
                positions,
                counts,
            }
        }
        RelLensExpr::Rename { input, .. } => Node::Rename {
            child: Box::new(build(input, schema, inst)?),
        },
        RelLensExpr::Join { left, right, .. } => {
            let ls = left.view_schema(schema)?;
            let rs = right.view_schema(schema)?;
            let shared: Vec<Name> = ls
                .attr_names()
                .filter(|a| rs.position(a.as_str()).is_some())
                .cloned()
                .collect();
            // Shared names were intersected from both schemas, so
            // position() cannot miss on either side; filter_map keeps
            // that invariant panic-free.
            let l_key: Vec<usize> = shared
                .iter()
                .filter_map(|a| ls.position(a.as_str()))
                .collect();
            let r_key: Vec<usize> = shared
                .iter()
                .filter_map(|a| rs.position(a.as_str()))
                .collect();
            let r_extra: Vec<usize> = (0..rs.arity()).filter(|i| !r_key.contains(i)).collect();
            let mut l_index = TupleIndex::new(l_key);
            for t in left.get(inst)?.iter() {
                l_index.insert(t.clone());
            }
            let mut r_index = TupleIndex::new(r_key);
            for t in right.get(inst)?.iter() {
                r_index.insert(t.clone());
            }
            Node::Join {
                left: Box::new(build(left, schema, inst)?),
                right: Box::new(build(right, schema, inst)?),
                r_extra,
                l_index,
                r_index,
            }
        }
        RelLensExpr::Union { left, right, .. } => Node::Union {
            l_rows: left.get(inst)?.tuples().clone(),
            r_rows: right.get(inst)?.tuples().clone(),
            left: Box::new(build(left, schema, inst)?),
            right: Box::new(build(right, schema, inst)?),
        },
    })
}

fn apply(node: &mut Node, delta: &Delta) -> Result<RelDelta, RellensError> {
    Ok(match node {
        Node::Base { rel, rows } => {
            let mut out = RelDelta::default();
            for (r, t) in &delta.deletes {
                if r == rel && rows.remove(t) {
                    out.delete(t.clone());
                }
            }
            for (r, t) in &delta.inserts {
                if r == rel && rows.insert(t.clone()) {
                    out.insert(t.clone());
                }
            }
            out
        }
        Node::Select {
            child,
            pred,
            schema,
        } => {
            let d = apply(child, delta)?;
            let mut out = RelDelta::default();
            for t in d.deletes {
                if pred
                    .eval_bool(schema, &t)
                    .map_err(RellensError::Relational)?
                {
                    out.delete(t);
                }
            }
            for t in d.inserts {
                if pred
                    .eval_bool(schema, &t)
                    .map_err(RellensError::Relational)?
                {
                    out.insert(t);
                }
            }
            out
        }
        Node::Project {
            child,
            positions,
            counts,
        } => {
            let d = apply(child, delta)?;
            let mut out = RelDelta::default();
            for t in d.deletes {
                let p = t.project(positions);
                // Every delete flowing up was counted when the state
                // was built or inserted; a miss means the delta stream
                // diverged from the base instance — a caller bug this
                // layer cannot repair.
                #[allow(clippy::expect_used)]
                let cnt = counts.get_mut(&p).expect("delete of counted row");
                *cnt -= 1;
                if *cnt == 0 {
                    counts.remove(&p);
                    out.delete(p);
                }
            }
            for t in d.inserts {
                let p = t.project(positions);
                let cnt = counts.entry(p.clone()).or_default();
                *cnt += 1;
                if *cnt == 1 {
                    out.insert(p);
                }
            }
            out
        }
        Node::Rename { child } => apply(child, delta)?,
        Node::Join {
            left,
            right,
            r_extra,
            l_index,
            r_index,
        } => {
            let dl = apply(left, delta)?;
            let dr = apply(right, delta)?;
            let mut out = RelDelta::default();
            let join_row = |l: &Tuple, r: &Tuple| -> Tuple { l.concat(&r.project(r_extra)) };
            // Left deletes/inserts against the current right index.
            for l in &dl.deletes {
                l_index.remove(l);
                for r in r_index.get(&l_index.key(l)) {
                    out.delete(join_row(l, r));
                }
            }
            for l in &dl.inserts {
                l_index.insert(l.clone());
                for r in r_index.get(&l_index.key(l)) {
                    out.insert(join_row(l, r));
                }
            }
            // Right deltas against the (already updated) left index.
            for r in &dr.deletes {
                r_index.remove(r);
                for l in l_index.get(&r_index.key(r)) {
                    out.delete(join_row(l, r));
                }
            }
            for r in &dr.inserts {
                r_index.insert(r.clone());
                for l in l_index.get(&r_index.key(r)) {
                    out.insert(join_row(l, r));
                }
            }
            out
        }
        Node::Union {
            left,
            right,
            l_rows,
            r_rows,
        } => {
            let dl = apply(left, delta)?;
            let dr = apply(right, delta)?;
            let mut out = RelDelta::default();
            for t in dl.deletes {
                l_rows.remove(&t);
                if !r_rows.contains(&t) {
                    out.delete(t);
                }
            }
            for t in dl.inserts {
                let fresh = !r_rows.contains(&t);
                l_rows.insert(t.clone());
                if fresh {
                    out.insert(t);
                }
            }
            for t in dr.deletes {
                r_rows.remove(&t);
                if !l_rows.contains(&t) {
                    out.delete(t);
                }
            }
            for t in dr.inserts {
                let fresh = !l_rows.contains(&t);
                r_rows.insert(t.clone());
                if fresh {
                    out.insert(t);
                }
            }
            out
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{JoinPolicy, UnionPolicy, UpdatePolicy};
    use dex_relational::{tuple, RelSchema};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Person", vec!["id", "name", "age"]).unwrap(),
            RelSchema::untyped("AgeBand", vec!["age", "band"]).unwrap(),
            RelSchema::untyped("Other", vec!["id", "name", "age"]).unwrap(),
        ])
        .unwrap()
    }

    fn db() -> Instance {
        Instance::with_facts(
            schema(),
            vec![
                (
                    "Person",
                    vec![
                        tuple![1i64, "Alice", 30i64],
                        tuple![2i64, "Bob", 30i64],
                        tuple![3i64, "Kid", 7i64],
                    ],
                ),
                (
                    "AgeBand",
                    vec![tuple![30i64, "thirties"], tuple![7i64, "kids"]],
                ),
                ("Other", vec![tuple![9i64, "Zed", 50i64]]),
            ],
        )
        .unwrap()
    }

    /// The correctness oracle: incremental delta == diff of full gets.
    fn check(expr: &RelLensExpr, start: &Instance, delta: &Delta) {
        let mut inc = IncrementalLens::new(expr, start.schema(), start).unwrap();
        let got = inc.apply(delta).unwrap();
        let after = delta.apply(start).unwrap();
        let v0 = expr.get(start).unwrap();
        let v1 = expr.get(&after).unwrap();
        let t0 = v0.tuples();
        let t1 = v1.tuples();
        let want_inserts: BTreeSet<Tuple> = t1.difference(&t0).cloned().collect();
        let want_deletes: BTreeSet<Tuple> = t0.difference(&t1).cloned().collect();
        assert_eq!(got.inserts, want_inserts, "expr:\n{expr}");
        assert_eq!(got.deletes, want_deletes, "expr:\n{expr}");
    }

    fn exprs() -> Vec<RelLensExpr> {
        vec![
            RelLensExpr::base("Person"),
            RelLensExpr::base("Person").select(Expr::attr("age").ge(Expr::lit(18i64))),
            RelLensExpr::base("Person").project(
                vec!["age"],
                vec![("id", UpdatePolicy::Null), ("name", UpdatePolicy::Null)],
            ),
            RelLensExpr::base("Person").rename(vec![("name", "label")]),
            RelLensExpr::base("Person").join(RelLensExpr::base("AgeBand"), JoinPolicy::DeleteBoth),
            RelLensExpr::base("Person").union(RelLensExpr::base("Other"), UnionPolicy::InsertLeft),
            RelLensExpr::base("Person")
                .select(Expr::attr("age").ge(Expr::lit(18i64)))
                .join(RelLensExpr::base("AgeBand"), JoinPolicy::DeleteBoth)
                .project(
                    vec!["id", "band"],
                    vec![("name", UpdatePolicy::Null), ("age", UpdatePolicy::Null)],
                ),
        ]
    }

    #[test]
    fn single_insert_each_operator() {
        let d = Delta {
            inserts: vec![(Name::new("Person"), tuple![4i64, "Dan", 30i64])],
            deletes: vec![],
        };
        for e in exprs() {
            check(&e, &db(), &d);
        }
    }

    fn mixed_delta() -> Delta {
        Delta {
            inserts: vec![
                (Name::new("Person"), tuple![4i64, "Dan", 30i64]),
                (Name::new("Person"), tuple![5i64, "Eve", 7i64]),
                (Name::new("AgeBand"), tuple![50i64, "fifties"]),
            ],
            deletes: vec![
                (Name::new("Person"), tuple![2i64, "Bob", 30i64]),
                (Name::new("AgeBand"), tuple![7i64, "kids"]),
            ],
        }
    }

    /// Governed replay with an untripped budget is indistinguishable
    /// from the batch apply, for every operator.
    #[test]
    fn governed_replay_equals_batch_apply() {
        let d = mixed_delta();
        for e in exprs() {
            let start = db();
            let mut batch = IncrementalLens::new(&e, start.schema(), &start).unwrap();
            let want = batch.apply(&d).unwrap();
            let mut governed = IncrementalLens::new(&e, start.schema(), &start).unwrap();
            match governed.apply_governed(&d, &Governor::unlimited()).unwrap() {
                ReplayOutcome::Complete(got) => assert_eq!(got, want, "expr:\n{e}"),
                ReplayOutcome::Exhausted { report, .. } => {
                    panic!("unlimited governor tripped: {report}")
                }
            }
        }
    }

    /// A trip mid-replay leaves a consistent prefix (not poisoned):
    /// replaying the remaining edits afterwards lands on the same view
    /// as the batch apply.
    #[test]
    fn tripped_replay_resumes_to_same_view() {
        use dex_relational::{Budget, TripReason};
        let d = mixed_delta();
        let e = exprs().remove(6); // the deepest pipeline
        let start = db();
        let mut batch = IncrementalLens::new(&e, start.schema(), &start).unwrap();
        let want = batch.apply(&d).unwrap();

        let mut governed = IncrementalLens::new(&e, start.schema(), &start).unwrap();
        // Tuple cap of 0: the first edit that changes the view trips
        // the replay at the next between-edits check.
        let gov = Governor::new(Budget::unlimited().with_max_tuples(0));
        let (first, applied) = match governed.apply_governed(&d, &gov).unwrap() {
            ReplayOutcome::Exhausted {
                view_delta,
                applied,
                report,
            } => {
                assert_eq!(report.reason, TripReason::Tuples);
                (view_delta, applied)
            }
            ReplayOutcome::Complete(_) => panic!("zero-tuple budget did not trip"),
        };
        assert!(applied < d.len());
        assert!(!governed.is_poisoned(), "a trip is not a poisoning");

        // Re-drive the remaining edits without a budget.
        let rest = Delta {
            deletes: d.deletes.iter().skip(applied).cloned().collect(),
            inserts: d
                .inserts
                .iter()
                .skip(applied.saturating_sub(d.deletes.len()))
                .cloned()
                .collect(),
        };
        let second = match governed
            .apply_governed(&rest, &Governor::unlimited())
            .unwrap()
        {
            ReplayOutcome::Complete(got) => got,
            ReplayOutcome::Exhausted { report, .. } => panic!("resume tripped: {report}"),
        };
        // Combined view delta == batch view delta.
        let mut combined = first;
        for t in second.deletes {
            combined.delete(t);
        }
        for t in second.inserts {
            combined.insert(t);
        }
        assert_eq!(combined, want);
    }

    #[test]
    fn poisoned_lens_refuses_further_deltas() {
        // A Select whose predicate errors at eval time (type mismatch)
        // poisons the lens mid-apply.
        let e = RelLensExpr::base("Person").select(Expr::attr("name").ge(Expr::lit(18i64)));
        let start = db();
        let mut inc = IncrementalLens::new(&e, start.schema(), &start).unwrap();
        let d = Delta {
            inserts: vec![(Name::new("Person"), tuple![6i64, "Fay", 20i64])],
            deletes: vec![],
        };
        assert!(inc.apply(&d).is_err(), "predicate type error surfaces");
        assert!(inc.is_poisoned());
        match inc.apply(&d) {
            Err(RellensError::StatePoisoned) => {}
            other => panic!("expected StatePoisoned, got {other:?}"),
        }
        match inc.apply_governed(&d, &Governor::unlimited()) {
            Err(RellensError::StatePoisoned) => {}
            other => panic!("expected StatePoisoned, got {other:?}"),
        }
    }

    #[test]
    fn single_delete_each_operator() {
        let d = Delta {
            inserts: vec![],
            deletes: vec![(Name::new("Person"), tuple![2i64, "Bob", 30i64])],
        };
        for e in exprs() {
            check(&e, &db(), &d);
        }
    }

    #[test]
    fn mixed_batch_including_band_changes() {
        let d = Delta {
            inserts: vec![
                (Name::new("Person"), tuple![4i64, "Dan", 50i64]),
                (Name::new("AgeBand"), tuple![50i64, "fifties"]),
                (Name::new("Other"), tuple![1i64, "Alice", 30i64]),
            ],
            deletes: vec![
                (Name::new("Person"), tuple![3i64, "Kid", 7i64]),
                (Name::new("AgeBand"), tuple![7i64, "kids"]),
            ],
        };
        for e in exprs() {
            check(&e, &db(), &d);
        }
    }

    #[test]
    fn projection_counts_suppress_phantom_deletes() {
        // Alice and Bob share age 30; deleting Bob must NOT delete the
        // view row 30.
        let e = RelLensExpr::base("Person").project(
            vec!["age"],
            vec![("id", UpdatePolicy::Null), ("name", UpdatePolicy::Null)],
        );
        let mut inc = IncrementalLens::new(&e, &schema(), &db()).unwrap();
        let d = Delta {
            inserts: vec![],
            deletes: vec![(Name::new("Person"), tuple![2i64, "Bob", 30i64])],
        };
        let out = inc.apply(&d).unwrap();
        assert!(out.is_empty(), "{out:?}");
        // Now delete Alice too: the 30 row finally disappears.
        let d2 = Delta {
            inserts: vec![],
            deletes: vec![(Name::new("Person"), tuple![1i64, "Alice", 30i64])],
        };
        let out2 = inc.apply(&d2).unwrap();
        assert_eq!(out2.deletes, BTreeSet::from([tuple![30i64]]));
    }

    #[test]
    fn inaccurate_edits_are_filtered() {
        let e = RelLensExpr::base("Person");
        let mut inc = IncrementalLens::new(&e, &schema(), &db()).unwrap();
        // Re-inserting a present row, deleting an absent one: no-ops.
        let d = Delta {
            inserts: vec![(Name::new("Person"), tuple![1i64, "Alice", 30i64])],
            deletes: vec![(Name::new("Person"), tuple![99i64, "Ghost", 1i64])],
        };
        assert!(inc.apply(&d).unwrap().is_empty());
    }

    #[test]
    fn sequential_deltas_accumulate_state() {
        let e =
            RelLensExpr::base("Person").join(RelLensExpr::base("AgeBand"), JoinPolicy::DeleteBoth);
        let mut inc = IncrementalLens::new(&e, &schema(), &db()).unwrap();
        let mut current = db();
        for d in [
            Delta {
                inserts: vec![(Name::new("Person"), tuple![4i64, "Dan", 50i64])],
                deletes: vec![],
            },
            Delta {
                inserts: vec![(Name::new("AgeBand"), tuple![50i64, "fifties"])],
                deletes: vec![],
            },
            Delta {
                inserts: vec![],
                deletes: vec![(Name::new("AgeBand"), tuple![30i64, "thirties"])],
            },
        ] {
            let next = d.apply(&current).unwrap();
            let got = inc.apply(&d).unwrap();
            let v0 = e.get(&current).unwrap();
            let v1 = e.get(&next).unwrap();
            let t0 = v0.tuples();
            let t1 = v1.tuples();
            assert_eq!(
                got.inserts,
                t1.difference(&t0).cloned().collect::<BTreeSet<_>>()
            );
            assert_eq!(
                got.deletes,
                t0.difference(&t1).cloned().collect::<BTreeSet<_>>()
            );
            current = next;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random batches over the whole operator family agree with the
        /// full-recompute oracle.
        #[test]
        fn random_batches_agree_with_oracle(
            person_ins in proptest::collection::btree_set((10i64..20, 0i64..3, 0i64..60), 0..4),
            person_del_idx in proptest::collection::btree_set(0usize..3, 0..3),
            band_ins in proptest::collection::btree_set((0i64..60, 0i64..3), 0..3),
        ) {
            let base = db();
            let mut d = Delta::default();
            for (id, n, a) in person_ins {
                d.inserts.push((Name::new("Person"), tuple![id, format!("p{n}").as_str(), a]));
            }
            let existing: Vec<Tuple> = base.relation("Person").unwrap().iter().collect();
            for i in person_del_idx {
                d.deletes.push((Name::new("Person"), existing[i].clone()));
            }
            for (a, b) in band_ins {
                d.inserts.push((Name::new("AgeBand"), tuple![a, format!("b{b}").as_str()]));
            }
            for e in exprs() {
                check(&e, &base, &d);
            }
        }
    }
}
