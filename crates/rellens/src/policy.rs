//! Update policies — the explicit answers to “what do I do with this
//! extra column?” (paper §3/§4).
//!
//! A projection lens restores *surviving* rows from the source by
//! matching on the kept columns; the policy decides how to fill a
//! dropped column **for rows that are new in the view** (paper §3:
//! “if the operator drops a column c, and a new row is added to the
//! output (view) state, there are several possibilities as to how to
//! populate that column c when adding the row to the input state”).

use crate::error::RellensError;
use dex_relational::{Constant, Expr, Name, NullGen, RelSchema, Relation, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Values supplied by the surrounding system (current user, current
/// time, tenant id, …) — the paper's “environment information, domain
/// policy, or other sources … inaccessible to the current formal
/// treatment”.
pub type Environment = BTreeMap<Name, Value>;

/// How a projection lens fills a dropped column of a new row.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// Always use a fresh labeled null — the same choice the chase
    /// makes for an existential position.
    Null,
    /// Always use this constant.
    Const(Constant),
    /// Insert the environment value registered under this key.
    Env(Name),
    /// Copy the value of another (kept) column of the same view row —
    /// used by the compiler for duplicated variables, where the dropped
    /// column is provably equal to a kept one.
    CopyOf(Name),
    /// Compute the value from the new row's kept columns — the intro's
    /// “should it be filled in … as a function of the ZipCode field?”
    /// made literal: any [`Expr`] over the kept column names.
    Compute(Expr),
    /// Use a functional dependency `via → c`: look up the value from
    /// any existing source row agreeing on the `via` columns (the
    /// paper's least-lossy option); fall back when no such row exists.
    FdLookup {
        /// The determining (kept) columns.
        via: Vec<Name>,
        /// Policy when no source row matches.
        fallback: Box<UpdatePolicy>,
    },
}

impl UpdatePolicy {
    /// FD lookup through `via` with a null fallback — the relational
    /// lenses' preferred default.
    pub fn fd_or_null(via: Vec<&str>) -> UpdatePolicy {
        UpdatePolicy::FdLookup {
            via: via.into_iter().map(Name::new).collect(),
            fallback: Box::new(UpdatePolicy::Null),
        }
    }

    /// Produce the fill value for one dropped attribute of a new view
    /// row. `view_row_kept` gives the new row's values for the *kept*
    /// columns (by name); `old_input` is the pre-update source
    /// relation, consulted by [`UpdatePolicy::FdLookup`].
    pub fn fill(
        &self,
        dropped_attr: &Name,
        view_row_kept: &BTreeMap<Name, Value>,
        old_input: &Relation,
        env: &Environment,
        nulls: &mut NullGen,
    ) -> Result<Value, RellensError> {
        match self {
            UpdatePolicy::Null => Ok(nulls.fresh()),
            UpdatePolicy::Const(c) => Ok(Value::Const(c.clone())),
            UpdatePolicy::Env(key) => env
                .get(key.as_str())
                .cloned()
                .ok_or_else(|| RellensError::MissingEnvValue(key.clone())),
            UpdatePolicy::CopyOf(col) => {
                view_row_kept.get(col.as_str()).cloned().ok_or_else(|| {
                    RellensError::Structural(format!(
                        "CopyOf source column `{col}` is not a kept column"
                    ))
                })
            }
            UpdatePolicy::Compute(expr) => {
                // Evaluate against a synthetic one-row relation built
                // from the kept columns.
                let (names, vals): (Vec<Name>, Vec<Value>) = view_row_kept
                    .iter()
                    .map(|(n, v)| (n.clone(), v.clone()))
                    .unzip();
                let schema =
                    RelSchema::untyped("·view-row", names).map_err(RellensError::Relational)?;
                let row = Tuple::new(vals);
                expr.eval(&schema, &row).map_err(RellensError::Relational)
            }
            UpdatePolicy::FdLookup { via, fallback } => {
                let dropped_pos = old_input
                    .schema()
                    .position(dropped_attr.as_str())
                    .ok_or_else(|| {
                        RellensError::Structural(format!(
                            "FdLookup target `{dropped_attr}` missing from {}",
                            old_input.schema()
                        ))
                    })?;
                let via_pos: Vec<usize> = via
                    .iter()
                    .map(|a| {
                        old_input.schema().position(a.as_str()).ok_or_else(|| {
                            RellensError::Structural(format!(
                                "FdLookup via-column `{a}` missing from {}",
                                old_input.schema()
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let wanted: Option<Vec<&Value>> =
                    via.iter().map(|a| view_row_kept.get(a.as_str())).collect();
                let Some(wanted) = wanted else {
                    return Err(RellensError::Structural(format!(
                        "FdLookup via-columns {via:?} must be kept columns"
                    )));
                };
                for row in old_input.iter() {
                    if via_pos.iter().zip(&wanted).all(|(&i, w)| &&row[i] == w) {
                        return Ok(row[dropped_pos].clone());
                    }
                }
                fallback.fill(dropped_attr, view_row_kept, old_input, env, nulls)
            }
        }
    }
}

impl fmt::Display for UpdatePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdatePolicy::Null => write!(f, "null"),
            UpdatePolicy::Const(Constant::Str(s)) => write!(f, "const {s:?}"),
            UpdatePolicy::Const(c) => write!(f, "const {c}"),
            UpdatePolicy::Env(k) => write!(f, "env ${k}"),
            UpdatePolicy::CopyOf(col) => write!(f, "copy of {col}"),
            UpdatePolicy::Compute(e) => write!(f, "compute {e}"),
            UpdatePolicy::FdLookup { via, fallback } => {
                let cols = via
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "fd({cols}) else {fallback}")
            }
        }
    }
}

/// Which base side absorbs a **deletion** from a join view (Bohannon
/// et al.'s `join_dl` etc.).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum JoinPolicy {
    /// Delete the left component row.
    #[default]
    DeleteLeft,
    /// Delete the right component row.
    DeleteRight,
    /// Delete both component rows.
    DeleteBoth,
}

impl fmt::Display for JoinPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinPolicy::DeleteLeft => "delete-left",
            JoinPolicy::DeleteRight => "delete-right",
            JoinPolicy::DeleteBoth => "delete-both",
        };
        f.write_str(s)
    }
}

/// Which base side receives an **insertion** into a union view.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum UnionPolicy {
    /// Route new rows to the left input.
    #[default]
    InsertLeft,
    /// Route new rows to the right input.
    InsertRight,
}

impl fmt::Display for UnionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnionPolicy::InsertLeft => "insert-left",
            UnionPolicy::InsertRight => "insert-right",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema};

    fn addr_rel() -> Relation {
        Relation::from_tuples(
            RelSchema::untyped("Addr", vec!["name", "zip", "city"]).unwrap(),
            vec![
                tuple!["alice", 2000i64, "Sydney"],
                tuple!["bob", 8320000i64, "Santiago"],
            ],
        )
        .unwrap()
    }

    fn kept(pairs: Vec<(&str, Value)>) -> BTreeMap<Name, Value> {
        pairs.into_iter().map(|(a, v)| (Name::new(a), v)).collect()
    }

    #[test]
    fn null_policy_mints_fresh_nulls() {
        let mut g = NullGen::new();
        let env = Environment::new();
        let rel = addr_rel();
        let row = kept(vec![]);
        let a = UpdatePolicy::Null
            .fill(&Name::new("city"), &row, &rel, &env, &mut g)
            .unwrap();
        let b = UpdatePolicy::Null
            .fill(&Name::new("city"), &row, &rel, &env, &mut g)
            .unwrap();
        assert!(a.is_null() && b.is_null());
        assert_ne!(a, b, "each fill invents a distinct unknown");
    }

    #[test]
    fn const_policy() {
        let mut g = NullGen::new();
        let p = UpdatePolicy::Const(Constant::Int(0));
        assert_eq!(
            p.fill(
                &Name::new("city"),
                &kept(vec![]),
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .unwrap(),
            Value::int(0)
        );
    }

    #[test]
    fn env_policy_reads_environment() {
        let mut g = NullGen::new();
        let mut env = Environment::new();
        env.insert(Name::new("current_user"), Value::str("jft"));
        let p = UpdatePolicy::Env(Name::new("current_user"));
        assert_eq!(
            p.fill(&Name::new("city"), &kept(vec![]), &addr_rel(), &env, &mut g)
                .unwrap(),
            Value::str("jft")
        );
        let missing = UpdatePolicy::Env(Name::new("nope"));
        assert!(matches!(
            missing
                .fill(&Name::new("city"), &kept(vec![]), &addr_rel(), &env, &mut g)
                .unwrap_err(),
            RellensError::MissingEnvValue(_)
        ));
    }

    #[test]
    fn fd_lookup_finds_value_via_other_rows() {
        // New row with zip 2000: city restored as Sydney from alice's
        // row — the paper's FD option c′ → c.
        let mut g = NullGen::new();
        let p = UpdatePolicy::fd_or_null(vec!["zip"]);
        let row = kept(vec![("zip", Value::int(2000))]);
        assert_eq!(
            p.fill(
                &Name::new("city"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .unwrap(),
            Value::str("Sydney")
        );
    }

    #[test]
    fn fd_lookup_falls_back_when_unmatched() {
        let mut g = NullGen::new();
        let p = UpdatePolicy::fd_or_null(vec!["zip"]);
        let row = kept(vec![("zip", Value::int(99999))]);
        let v = p
            .fill(
                &Name::new("city"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g,
            )
            .unwrap();
        assert!(v.is_null(), "unknown zip → null fallback");
    }

    #[test]
    fn fd_lookup_with_const_fallback() {
        let mut g = NullGen::new();
        let p = UpdatePolicy::FdLookup {
            via: vec![Name::new("zip")],
            fallback: Box::new(UpdatePolicy::Const("somewhere".into())),
        };
        let row = kept(vec![("zip", Value::int(99999))]);
        assert_eq!(
            p.fill(
                &Name::new("city"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .unwrap(),
            Value::str("somewhere")
        );
    }

    #[test]
    fn copy_of_policy_reads_kept_column() {
        let mut g = NullGen::new();
        let p = UpdatePolicy::CopyOf(Name::new("name"));
        let row = kept(vec![("name", Value::str("alice"))]);
        assert_eq!(
            p.fill(
                &Name::new("alias"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .unwrap(),
            Value::str("alice")
        );
        let missing = p
            .fill(
                &Name::new("alias"),
                &kept(vec![]),
                &addr_rel(),
                &Environment::new(),
                &mut g,
            )
            .unwrap_err();
        assert!(matches!(missing, RellensError::Structural(_)));
    }

    #[test]
    fn compute_policy_derives_from_kept_columns() {
        let mut g = NullGen::new();
        // salary := zip * 10 (a silly but checkable function).
        let p = UpdatePolicy::Compute(Expr::attr("zip").mul(Expr::lit(10i64)));
        let row = kept(vec![("zip", Value::int(2000))]);
        assert_eq!(
            p.fill(
                &Name::new("salary"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .unwrap(),
            Value::int(20_000)
        );
        // Referencing a non-kept column is a loud error.
        let bad = UpdatePolicy::Compute(Expr::attr("nope").mul(Expr::lit(2i64)));
        assert!(bad
            .fill(
                &Name::new("salary"),
                &row,
                &addr_rel(),
                &Environment::new(),
                &mut g
            )
            .is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(UpdatePolicy::Null.to_string(), "null");
        assert_eq!(
            UpdatePolicy::Const(Constant::Str("x".into())).to_string(),
            "const \"x\""
        );
        assert_eq!(UpdatePolicy::Env(Name::new("now")).to_string(), "env $now");
        assert_eq!(
            UpdatePolicy::CopyOf(Name::new("name")).to_string(),
            "copy of name"
        );
        assert_eq!(
            UpdatePolicy::Compute(Expr::attr("zip").mul(Expr::lit(10i64))).to_string(),
            "compute (zip * 10)"
        );
        assert_eq!(
            UpdatePolicy::fd_or_null(vec!["zip"]).to_string(),
            "fd(zip) else null"
        );
        assert_eq!(JoinPolicy::DeleteLeft.to_string(), "delete-left");
        assert_eq!(UnionPolicy::InsertRight.to_string(), "insert-right");
    }
}
