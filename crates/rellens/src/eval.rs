//! Evaluating relational-lens expressions: `get`, `put`, `create`.

use crate::ast::RelLensExpr;
use crate::error::RellensError;
use crate::policy::{Environment, JoinPolicy, UnionPolicy};
use crate::revision::revise_all;
use dex_relational::algebra;
use dex_relational::{Instance, Name, NullGen, RelSchema, Relation, Schema, Tuple, Value};
use std::collections::BTreeMap;

impl RelLensExpr {
    /// The forward direction: evaluate like relational algebra.
    pub fn get(&self, inst: &Instance) -> Result<Relation, RellensError> {
        match self {
            RelLensExpr::Base(n) => Ok(inst.expect_relation(n.as_str())?.clone()),
            RelLensExpr::Select { input, pred } => {
                let r = input.get(inst)?;
                Ok(algebra::select(&r, pred, r.name().as_str())?)
            }
            RelLensExpr::Project { input, attrs, .. } => {
                let r = input.get(inst)?;
                let cols: Vec<&str> = attrs.iter().map(Name::as_str).collect();
                Ok(algebra::project(&r, &cols, r.name().as_str())?)
            }
            RelLensExpr::Rename { input, renaming } => {
                let r = input.get(inst)?;
                Ok(algebra::rename_attrs(&r, renaming, r.name().as_str())?)
            }
            RelLensExpr::Join { left, right, .. } => {
                let l = left.get(inst)?;
                let r = right.get(inst)?;
                Ok(algebra::natural_join(&l, &r, l.name().as_str())?)
            }
            RelLensExpr::Union { left, right, .. } => {
                let l = left.get(inst)?;
                let r = right.get(inst)?;
                Ok(algebra::union(&l, &r, l.name().as_str())?)
            }
        }
    }

    /// The backward direction: translate an updated view into an
    /// updated instance, using the node policies where information is
    /// missing.
    pub fn put(
        &self,
        view: &Relation,
        inst: &Instance,
        env: &Environment,
    ) -> Result<Instance, RellensError> {
        // Fresh nulls must dodge every null in the instance AND the view.
        let mut max = 0u64;
        let mut track = |t: &Tuple| {
            let mut s = std::collections::BTreeSet::new();
            t.collect_nulls(&mut s);
            if let Some(n) = s.iter().next_back() {
                max = max.max(n.0 + 1);
            }
        };
        for (_, t) in inst.facts() {
            track(&t);
        }
        for t in view.iter() {
            track(&t);
        }
        let mut gen = NullGen::starting_at(max);
        self.put_rec(view, inst, env, &mut gen)
    }

    /// `put` against the empty instance — the lens `create`.
    pub fn create(
        &self,
        view: &Relation,
        schema: &Schema,
        env: &Environment,
    ) -> Result<Instance, RellensError> {
        self.put(view, &Instance::empty(schema.clone()), env)
    }

    fn put_rec(
        &self,
        view: &Relation,
        inst: &Instance,
        env: &Environment,
        gen: &mut NullGen,
    ) -> Result<Instance, RellensError> {
        match self {
            RelLensExpr::Base(n) => {
                let base = inst.expect_relation(n.as_str())?;
                if base.schema().arity() != view.schema().arity() {
                    return Err(RellensError::ViewSchemaMismatch {
                        expected: base.schema().to_string(),
                        actual: view.schema().to_string(),
                    });
                }
                let mut out = inst.clone();
                // `expect_relation` above already proved the relation
                // exists in this instance.
                #[allow(clippy::expect_used)]
                let rel = out.relation_mut(n.as_str()).expect("checked above");
                rel.clear();
                for t in view.iter() {
                    rel.insert(t.clone())?;
                }
                Ok(out)
            }
            RelLensExpr::Select { input, pred } => {
                let old_in = input.get(inst)?;
                // Every view row must satisfy the predicate.
                for t in view.iter() {
                    let ok = pred
                        .eval_bool(old_in.schema(), &t)
                        .map_err(RellensError::Relational)?;
                    if !ok {
                        return Err(RellensError::PredicateViolation {
                            predicate: pred.to_string(),
                            row: t.to_string(),
                        });
                    }
                }
                // Keep the rows the view never saw, then revise them by
                // the view rows (FD conflicts resolve in the view's
                // favour — the relational revision operator).
                let not_p = algebra::select(&old_in, &pred.clone().not(), old_in.name().as_str())?;
                let vrows: Vec<Tuple> = view.iter().collect();
                let new_in = revise_all(&not_p, vrows.iter())?;
                input.put_rec(&new_in, inst, env, gen)
            }
            RelLensExpr::Project {
                input,
                attrs,
                policies,
            } => {
                let old_in = input.get(inst)?;
                let kept_pos: Vec<usize> = attrs
                    .iter()
                    .map(|a| {
                        old_in.schema().position(a.as_str()).ok_or_else(|| {
                            RellensError::Structural(format!(
                                "projection keeps `{a}` which {} lacks",
                                old_in.schema()
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                // Index old rows by their kept projection.
                let mut index: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
                for t in old_in.iter() {
                    let key = t.project(&kept_pos);
                    index.entry(key).or_default().push(t);
                }
                let mut new_in = Relation::empty(old_in.schema().clone());
                for vrow in view.iter() {
                    if vrow.arity() != kept_pos.len() {
                        return Err(RellensError::ViewSchemaMismatch {
                            expected: format!("{} columns", kept_pos.len()),
                            actual: format!("{} columns", vrow.arity()),
                        });
                    }
                    match index.get(&vrow) {
                        Some(matches) => {
                            // Surviving row(s): restore the dropped
                            // columns from the source.
                            for m in matches {
                                new_in.insert(m.clone())?;
                            }
                        }
                        None => {
                            // New row: fill dropped columns by policy.
                            let kept_vals: BTreeMap<Name, Value> =
                                attrs.iter().cloned().zip(vrow.iter().cloned()).collect();
                            let mut full = Vec::with_capacity(old_in.schema().arity());
                            for (a, _) in old_in.schema().attrs() {
                                if let Some(i) = attrs.iter().position(|k| k == a) {
                                    full.push(vrow[i].clone());
                                } else {
                                    let policy = policies.get(a).ok_or_else(|| {
                                        RellensError::Structural(format!(
                                            "no update policy for dropped column `{a}`"
                                        ))
                                    })?;
                                    full.push(policy.fill(a, &kept_vals, &old_in, env, gen)?);
                                }
                            }
                            new_in.insert(Tuple::new(full))?;
                        }
                    }
                }
                input.put_rec(&new_in, inst, env, gen)
            }
            RelLensExpr::Rename { input, renaming } => {
                let inverse: BTreeMap<Name, Name> = renaming
                    .iter()
                    .map(|(a, b)| (b.clone(), a.clone()))
                    .collect();
                let unrenamed = algebra::rename_attrs(view, &inverse, view.name().as_str())?;
                input.put_rec(&unrenamed, inst, env, gen)
            }
            RelLensExpr::Join {
                left,
                right,
                policy,
            } => {
                let old_l = left.get(inst)?;
                let old_r = right.get(inst)?;
                let old_join = algebra::natural_join(&old_l, &old_r, old_l.name().as_str())?;

                // Column positions of each side within the join header.
                let jschema = old_join.schema().clone();
                // `natural_join` headers the output with every attribute
                // of both inputs, so position() cannot miss; filter_map
                // keeps that invariant panic-free.
                let l_pos: Vec<usize> = old_l
                    .schema()
                    .attr_names()
                    .filter_map(|a| jschema.position(a.as_str()))
                    .collect();
                let r_pos: Vec<usize> = old_r
                    .schema()
                    .attr_names()
                    .filter_map(|a| jschema.position(a.as_str()))
                    .collect();

                let mut new_l = old_l.clone();
                let mut new_r = old_r.clone();
                // Deletions: remove component rows per policy.
                for t in old_join.iter() {
                    if !view.contains(&t) {
                        match policy {
                            JoinPolicy::DeleteLeft => {
                                new_l.remove(&t.project(&l_pos));
                            }
                            JoinPolicy::DeleteRight => {
                                new_r.remove(&t.project(&r_pos));
                            }
                            JoinPolicy::DeleteBoth => {
                                new_l.remove(&t.project(&l_pos));
                                new_r.remove(&t.project(&r_pos));
                            }
                        }
                    }
                }
                // Insertions: split and revise into both sides.
                let mut l_inserts = Vec::new();
                let mut r_inserts = Vec::new();
                for t in view.iter() {
                    if !old_join.contains(&t) {
                        l_inserts.push(t.project(&l_pos));
                        r_inserts.push(t.project(&r_pos));
                    }
                }
                let new_l = revise_all(&new_l, l_inserts.iter())?;
                let new_r = revise_all(&new_r, r_inserts.iter())?;

                let mid = left.put_rec(&new_l, inst, env, gen)?;
                right.put_rec(&new_r, &mid, env, gen)
            }
            RelLensExpr::Union {
                left,
                right,
                policy,
            } => {
                let old_l = left.get(inst)?;
                let old_r = right.get(inst)?;
                let mut new_l = old_l.clone();
                let mut new_r = old_r.clone();
                // Deletions disappear from both sides.
                for t in old_l.iter() {
                    if !view.contains(&t) {
                        new_l.remove(&t);
                    }
                }
                for t in old_r.iter() {
                    if !view.contains(&t) {
                        new_r.remove(&t);
                    }
                }
                // Insertions are routed by policy.
                for t in view.iter() {
                    if !old_l.contains(&t) && !old_r.contains(&t) {
                        match policy {
                            UnionPolicy::InsertLeft => {
                                new_l = revise_all(&new_l, [&t])?;
                            }
                            UnionPolicy::InsertRight => {
                                new_r = revise_all(&new_r, [&t])?;
                            }
                        }
                    }
                }
                let mid = left.put_rec(&new_l, inst, env, gen)?;
                right.put_rec(&new_r, &mid, env, gen)
            }
        }
    }
}

/// A validated relational lens over a fixed database [`Schema`]:
/// couples a [`RelLensExpr`] with its environment and caches the view
/// schema.
///
/// Implements [`dex_lens::Lens`] with `Source = Instance` and
/// `View = Relation`, so the generic law harness and the symmetric
/// combinators apply. The trait methods **panic** on evaluation errors
/// (missing environment values, predicate violations); use
/// [`InstanceLens::try_get`] / [`InstanceLens::try_put`] where errors
/// must be handled.
#[derive(Clone, Debug)]
pub struct InstanceLens {
    expr: RelLensExpr,
    schema: Schema,
    view_schema: RelSchema,
    env: Environment,
}

impl InstanceLens {
    /// Validate `expr` against `schema` and build the lens.
    pub fn new(expr: RelLensExpr, schema: Schema, env: Environment) -> Result<Self, RellensError> {
        let view_schema = expr.view_schema(&schema)?;
        Ok(InstanceLens {
            expr,
            schema,
            view_schema,
            env,
        })
    }

    /// The underlying expression (the plan).
    pub fn expr(&self) -> &RelLensExpr {
        &self.expr
    }

    /// The source database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The derived view schema.
    pub fn view_schema(&self) -> &RelSchema {
        &self.view_schema
    }

    /// Fallible `get`.
    pub fn try_get(&self, inst: &Instance) -> Result<Relation, RellensError> {
        self.expr.get(inst)
    }

    /// Fallible `put`.
    pub fn try_put(&self, view: &Relation, inst: &Instance) -> Result<Instance, RellensError> {
        self.expr.put(view, inst, &self.env)
    }

    /// Fallible `create`.
    pub fn try_create(&self, view: &Relation) -> Result<Instance, RellensError> {
        self.expr.create(view, &self.schema, &self.env)
    }
}

// The infallible `Lens` trait surface adapts the fallible try_* API
// for lenses that passed validation at construction; a failure here is
// a validator bug, not a recoverable state.
#[allow(clippy::expect_used)]
impl dex_lens::Lens for InstanceLens {
    type Source = Instance;
    type View = Relation;

    fn get(&self, s: &Instance) -> Relation {
        self.try_get(s).expect("validated lens get failed")
    }

    fn put(&self, v: &Relation, s: &Instance) -> Instance {
        self.try_put(v, s).expect("validated lens put failed")
    }

    fn create(&self, v: &Relation) -> Instance {
        self.try_create(v).expect("validated lens create failed")
    }
}

/// Helper: build a relation with `schema`'s header from raw tuples —
/// convenient for writing edited views in tests and examples.
pub fn view_of(schema: &RelSchema, tuples: Vec<Tuple>) -> Result<Relation, RellensError> {
    Ok(Relation::from_tuples(schema.clone(), tuples)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::UpdatePolicy;
    use dex_lens::laws;
    use dex_lens::Lens as _;
    use dex_relational::{tuple, Expr, Fd};

    fn schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Person", vec!["id", "name", "age", "city"])
                .unwrap()
                .with_fd(Fd::new(vec!["id"], vec!["name", "age", "city"]))
                .unwrap(),
            RelSchema::untyped("CityZip", vec!["city", "zip"])
                .unwrap()
                .with_fd(Fd::new(vec!["city"], vec!["zip"]))
                .unwrap(),
        ])
        .unwrap()
    }

    fn db() -> Instance {
        Instance::with_facts(
            schema(),
            vec![
                (
                    "Person",
                    vec![
                        tuple![1i64, "Alice", 30i64, "Sydney"],
                        tuple![2i64, "Bob", 40i64, "Santiago"],
                        tuple![3i64, "Carol", 25i64, "Sydney"],
                    ],
                ),
                (
                    "CityZip",
                    vec![tuple!["Sydney", 2000i64], tuple!["Santiago", 8320000i64]],
                ),
            ],
        )
        .unwrap()
    }

    fn lens(expr: RelLensExpr) -> InstanceLens {
        InstanceLens::new(expr, schema(), Environment::new()).unwrap()
    }

    #[test]
    fn base_lens_roundtrip() {
        let l = lens(RelLensExpr::base("Person"));
        let v = l.get(&db());
        assert_eq!(v.len(), 3);
        assert!(laws::check_get_put(&l, &db()).is_ok());
        // Edit: delete Bob.
        let mut v2 = v.clone();
        v2.remove(&tuple![2i64, "Bob", 40i64, "Santiago"]);
        let db2 = l.put(&v2, &db());
        assert_eq!(db2.relation("Person").unwrap().len(), 2);
        assert!(laws::check_put_get(&l, &v2, &db()).is_ok());
    }

    #[test]
    fn select_lens_laws_and_behaviour() {
        let l =
            lens(RelLensExpr::base("Person").select(Expr::attr("city").eq(Expr::lit("Sydney"))));
        let v = l.get(&db());
        assert_eq!(v.len(), 2);
        assert!(laws::check_get_put(&l, &db()).is_ok());
        // Delete Carol from the view: she disappears from the base.
        let mut v2 = v.clone();
        v2.remove(&tuple![3i64, "Carol", 25i64, "Sydney"]);
        let db2 = l.put(&v2, &db());
        assert_eq!(db2.relation("Person").unwrap().len(), 2);
        assert!(db2.contains("Person", &tuple![2i64, "Bob", 40i64, "Santiago"]));
        assert!(laws::check_put_get(&l, &v2, &db()).is_ok());
    }

    #[test]
    fn select_put_rejects_out_of_view_rows() {
        let l =
            lens(RelLensExpr::base("Person").select(Expr::attr("city").eq(Expr::lit("Sydney"))));
        let mut v = l.get(&db());
        v.insert(tuple![9i64, "Zed", 1i64, "Quito"]).unwrap();
        let err = l.try_put(&v, &db()).unwrap_err();
        assert!(matches!(err, RellensError::PredicateViolation { .. }));
    }

    #[test]
    fn select_put_revises_fd_conflicts() {
        // Move Alice out of Sydney *via the view*? Not possible (view
        // rows must satisfy the predicate) — but editing her age in the
        // view must replace, not duplicate, her base row (key id).
        let l =
            lens(RelLensExpr::base("Person").select(Expr::attr("city").eq(Expr::lit("Sydney"))));
        let mut v = l.get(&db());
        v.remove(&tuple![1i64, "Alice", 30i64, "Sydney"]);
        v.insert(tuple![1i64, "Alice", 31i64, "Sydney"]).unwrap();
        let db2 = l.put(&v, &db());
        let p = db2.relation("Person").unwrap();
        assert_eq!(p.len(), 3, "no duplicate Alice");
        assert!(p.contains(&tuple![1i64, "Alice", 31i64, "Sydney"]));
        assert!(p.satisfies_fds());
    }

    #[test]
    fn project_lens_restores_surviving_rows() {
        let l = lens(RelLensExpr::base("Person").project(
            vec!["id", "name"],
            vec![("age", UpdatePolicy::Null), ("city", UpdatePolicy::Null)],
        ));
        // GetPut: untouched view restores ages and cities exactly.
        assert!(laws::check_get_put(&l, &db()).is_ok());
        // Renaming Alice in the view: her row is *new* (no kept-match),
        // so age and city become nulls — the Null policy cost.
        let mut v = l.get(&db());
        v.remove(&tuple![1i64, "Alice"]);
        v.insert(tuple![1i64, "Alicia"]).unwrap();
        let db2 = l.put(&v, &db());
        let p = db2.relation("Person").unwrap();
        let alicia = p
            .iter()
            .find(|t| t[1] == Value::str("Alicia"))
            .expect("alicia present");
        assert!(alicia[2].is_null() && alicia[3].is_null());
        assert!(laws::check_put_get(&l, &v, &db()).is_ok());
    }

    #[test]
    fn project_lens_policy_comparison() {
        // The paper's four policies, applied to the same new row.
        let mk = |age_policy: UpdatePolicy| {
            let mut env = Environment::new();
            env.insert(Name::new("default_age"), Value::int(21));
            InstanceLens::new(
                RelLensExpr::base("Person")
                    .project(vec!["id", "name", "city"], vec![("age", age_policy)]),
                schema(),
                env,
            )
            .unwrap()
        };
        let new_row = tuple![4i64, "Dan", "Sydney"];
        let mut base_view = mk(UpdatePolicy::Null).get(&db());
        base_view.insert(new_row.clone()).unwrap();

        // Null.
        let db_null = mk(UpdatePolicy::Null).put(&base_view, &db());
        let dan = |i: &Instance| {
            i.relation("Person")
                .unwrap()
                .iter()
                .find(|t| t[1] == Value::str("Dan"))
                .unwrap()
                .clone()
        };
        assert!(dan(&db_null)[2].is_null());
        // Const.
        let db_const = mk(UpdatePolicy::Const(0i64.into())).put(&base_view, &db());
        assert_eq!(dan(&db_const)[2], Value::int(0));
        // Env.
        let db_env = mk(UpdatePolicy::Env(Name::new("default_age"))).put(&base_view, &db());
        assert_eq!(dan(&db_env)[2], Value::int(21));
        // FD via city: Dan is in Sydney; Alice (30) sorts before Carol
        // (25)? Canonical order: (1, Alice, ...) first → age 30.
        let db_fd = mk(UpdatePolicy::fd_or_null(vec!["city"])).put(&base_view, &db());
        let got = dan(&db_fd)[2].clone();
        assert!(got == Value::int(30) || got == Value::int(25));
    }

    #[test]
    fn rename_lens_roundtrip() {
        let l = lens(RelLensExpr::base("CityZip").rename(vec![("zip", "postcode")]));
        let v = l.get(&db());
        assert_eq!(v.schema().position("postcode"), Some(1));
        assert!(laws::check_get_put(&l, &db()).is_ok());
        let mut v2 = v.clone();
        v2.insert(tuple!["Quito", 170101i64]).unwrap();
        let db2 = l.put(&v2, &db());
        assert!(db2.contains("CityZip", &tuple!["Quito", 170101i64]));
        assert!(laws::check_put_get(&l, &v2, &db()).is_ok());
    }

    #[test]
    fn join_lens_insert_splits_row() {
        let l = lens(
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteLeft),
        );
        let v = l.get(&db());
        assert_eq!(v.len(), 3);
        let mut v2 = v.clone();
        v2.insert(tuple![4i64, "Dan", 35i64, "Quito", 170101i64])
            .unwrap();
        let db2 = l.put(&v2, &db());
        assert!(db2.contains("Person", &tuple![4i64, "Dan", 35i64, "Quito"]));
        assert!(db2.contains("CityZip", &tuple!["Quito", 170101i64]));
        assert!(laws::check_put_get(&l, &v2, &db()).is_ok());
        assert!(laws::check_get_put(&l, &db()).is_ok());
    }

    #[test]
    fn join_lens_delete_left_vs_both() {
        let deleted_row = tuple![2i64, "Bob", 40i64, "Santiago", 8320000i64];
        // DeleteLeft: Bob's Person row goes; Santiago's zip stays.
        let l = lens(
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteLeft),
        );
        let mut v = l.get(&db());
        v.remove(&deleted_row);
        let db2 = l.put(&v, &db());
        assert!(!db2.contains("Person", &tuple![2i64, "Bob", 40i64, "Santiago"]));
        assert!(db2.contains("CityZip", &tuple!["Santiago", 8320000i64]));
        // DeleteBoth: the zip row goes too.
        let l2 = lens(
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteBoth),
        );
        let db3 = l2.put(&v, &db());
        assert!(!db3.contains("CityZip", &tuple!["Santiago", 8320000i64]));
    }

    #[test]
    fn join_delete_right_can_cascade() {
        // Deleting (Alice, …, Sydney, 2000) with DeleteRight removes
        // Sydney's zip row — which also removes Carol's join row: the
        // documented side-channel of join update policies (PutGet
        // violation the user must opt into).
        let l = lens(
            RelLensExpr::base("Person").join(RelLensExpr::base("CityZip"), JoinPolicy::DeleteRight),
        );
        let mut v = l.get(&db());
        v.remove(&tuple![1i64, "Alice", 30i64, "Sydney", 2000i64]);
        let db2 = l.put(&v, &db());
        let v2 = l.get(&db2);
        assert!(
            !v2.contains(&tuple![3i64, "Carol", 25i64, "Sydney", 2000i64]),
            "Carol's row cascaded away with the shared zip row"
        );
    }

    #[test]
    fn union_lens_routes_inserts() {
        let s = Schema::with_relations(vec![
            RelSchema::untyped("Father", vec!["p", "c"]).unwrap(),
            RelSchema::untyped("Mother", vec!["p", "c"]).unwrap(),
        ])
        .unwrap();
        let i = Instance::with_facts(
            s.clone(),
            vec![
                ("Father", vec![tuple!["Leslie", "Alice"]]),
                ("Mother", vec![tuple!["Robin", "Sam"]]),
            ],
        )
        .unwrap();
        let mk = |p: UnionPolicy| {
            InstanceLens::new(
                RelLensExpr::base("Father").union(RelLensExpr::base("Mother"), p),
                s.clone(),
                Environment::new(),
            )
            .unwrap()
        };
        let l = mk(UnionPolicy::InsertLeft);
        let mut v = l.get(&i);
        assert_eq!(v.len(), 2);
        v.insert(tuple!["Pat", "Kim"]).unwrap();
        let i2 = l.put(&v, &i);
        assert!(i2.contains("Father", &tuple!["Pat", "Kim"]));
        assert!(!i2.contains("Mother", &tuple!["Pat", "Kim"]));
        let r = mk(UnionPolicy::InsertRight);
        let i3 = r.put(&v, &i);
        assert!(i3.contains("Mother", &tuple!["Pat", "Kim"]));
        // Deletion removes from the side that has it.
        let mut v2 = l.get(&i);
        v2.remove(&tuple!["Robin", "Sam"]);
        let i4 = l.put(&v2, &i);
        assert!(i4.relation("Mother").unwrap().is_empty());
        assert!(laws::check_get_put(&l, &i).is_ok());
        assert!(laws::check_put_get(&l, &v2, &i).is_ok());
    }

    #[test]
    fn composed_pipeline_select_project() {
        // π_{id,name}(σ_{city=Sydney}(Person)) with FD policies.
        let l = lens(
            RelLensExpr::base("Person")
                .select(Expr::attr("city").eq(Expr::lit("Sydney")))
                .project(
                    vec!["id", "name"],
                    vec![
                        ("age", UpdatePolicy::Const(0i64.into())),
                        ("city", UpdatePolicy::Const("Sydney".into())),
                    ],
                ),
        );
        let v = l.get(&db());
        assert_eq!(v.len(), 2);
        assert!(laws::check_get_put(&l, &db()).is_ok());
        // Add a new person through the view.
        let mut v2 = v.clone();
        v2.insert(tuple![4i64, "Dan"]).unwrap();
        let db2 = l.put(&v2, &db());
        assert!(db2.contains("Person", &tuple![4i64, "Dan", 0i64, "Sydney"]));
        assert!(laws::check_put_get(&l, &v2, &db()).is_ok());
        // Bob (Santiago) was never in the view and survives.
        assert!(db2.contains("Person", &tuple![2i64, "Bob", 40i64, "Santiago"]));
    }

    #[test]
    fn create_builds_from_nothing() {
        let l = lens(RelLensExpr::base("Person").project(
            vec!["id", "name"],
            vec![
                ("age", UpdatePolicy::Null),
                ("city", UpdatePolicy::Const("unknown".into())),
            ],
        ));
        let view =
            Relation::from_tuples(l.view_schema().clone(), vec![tuple![1i64, "Zed"]]).unwrap();
        let created = l.try_create(&view).unwrap();
        let p = created.relation("Person").unwrap();
        assert_eq!(p.len(), 1);
        let row = p.iter().next().unwrap();
        assert!(row[2].is_null());
        assert_eq!(row[3], Value::str("unknown"));
        assert!(laws::check_create_get(&l, &view).is_ok());
    }

    #[test]
    fn fresh_nulls_do_not_collide_with_view_nulls() {
        let l = lens(RelLensExpr::base("Person").project(
            vec!["id", "name"],
            vec![("age", UpdatePolicy::Null), ("city", UpdatePolicy::Null)],
        ));
        // A view row already containing null ⊥0.
        let view = Relation::from_tuples(
            l.view_schema().clone(),
            vec![Tuple::new(vec![Value::int(7), Value::null(0)])],
        )
        .unwrap();
        let out = l.try_put(&view, &db()).unwrap();
        let p = out.relation("Person").unwrap();
        let row = p.iter().find(|t| t[0] == Value::int(7)).unwrap();
        // The filled nulls must differ from ⊥0.
        assert_ne!(row[2], Value::null(0));
        assert_ne!(row[3], Value::null(0));
    }
}
