//! The relational **revision** operator.
//!
//! Bohannon, Pierce & Vaughan's relational lenses keep puts consistent
//! with functional dependencies by *revising* a relation against
//! incoming tuples: when a new tuple agrees with existing tuples on the
//! left-hand side of an FD, the existing tuples are updated to agree on
//! the right-hand side too (the new data wins), instead of creating an
//! FD violation.

use dex_relational::{Fd, Relation, RelationalError, Tuple};

/// Revise `rel` by `incoming`: for every FD `X → Y` declared on the
/// relation, any existing tuple that agrees with `incoming` on `X` is
/// rewritten to agree on `Y` as well; finally `incoming` is inserted.
///
/// The result always contains `incoming` and satisfies the declared
/// FDs with respect to it (assuming `rel` satisfied them before).
pub fn revise(rel: &Relation, incoming: &Tuple) -> Result<Relation, RelationalError> {
    let schema = rel.schema().clone();
    let mut out = Relation::empty(schema.clone());
    let fds: Vec<Fd> = schema.fds().iter().cloned().collect();
    'tuples: for t in rel.iter() {
        let mut t = t.clone();
        for fd in &fds {
            let lhs_pos: Vec<usize> = fd
                .lhs()
                .iter()
                .filter_map(|a| schema.position(a.as_str()))
                .collect();
            let rhs_pos: Vec<usize> = fd
                .rhs()
                .iter()
                .filter_map(|a| schema.position(a.as_str()))
                .collect();
            if t.project(&lhs_pos) == incoming.project(&lhs_pos) {
                for &i in &rhs_pos {
                    t = t.with_value(i, incoming[i].clone());
                }
            }
            if &t == incoming {
                continue 'tuples; // fully absorbed
            }
        }
        out.insert(t)?;
    }
    out.insert(incoming.clone())?;
    Ok(out)
}

/// Revise a relation by a whole batch of incoming tuples, in order.
pub fn revise_all<'a>(
    rel: &Relation,
    incoming: impl IntoIterator<Item = &'a Tuple>,
) -> Result<Relation, RelationalError> {
    let mut out = rel.clone();
    for t in incoming {
        out = revise(&out, t)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema};

    fn keyed_schema() -> RelSchema {
        RelSchema::untyped("P", vec!["id", "name", "city"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name", "city"]))
            .unwrap()
    }

    #[test]
    fn revision_updates_conflicting_tuple() {
        let r = Relation::from_tuples(
            keyed_schema(),
            vec![tuple![1i64, "Alice", "Sydney"], tuple![2i64, "Bob", "Lima"]],
        )
        .unwrap();
        // Incoming tuple with id 1 but a new city: old tuple revised.
        let out = revise(&r, &tuple![1i64, "Alice", "Quito"]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1i64, "Alice", "Quito"]));
        assert!(!out.contains(&tuple![1i64, "Alice", "Sydney"]));
        assert!(out.satisfies_fds());
    }

    #[test]
    fn revision_plain_insert_when_no_conflict() {
        let r = Relation::from_tuples(keyed_schema(), vec![tuple![1i64, "A", "X"]]).unwrap();
        let out = revise(&r, &tuple![2i64, "B", "Y"]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.satisfies_fds());
    }

    #[test]
    fn revision_idempotent_for_existing_tuple() {
        let r = Relation::from_tuples(keyed_schema(), vec![tuple![1i64, "A", "X"]]).unwrap();
        let out = revise(&r, &tuple![1i64, "A", "X"]).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn revision_without_fds_is_plain_insert() {
        let schema = RelSchema::untyped("Q", vec!["a", "b"]).unwrap();
        let r = Relation::from_tuples(schema, vec![tuple![1i64, 2i64]]).unwrap();
        let out = revise(&r, &tuple![1i64, 3i64]).unwrap();
        assert_eq!(out.len(), 2, "no FD, both tuples coexist");
    }

    #[test]
    fn multi_fd_revision() {
        // Zip → City and Id → everything.
        let schema = RelSchema::untyped("Addr", vec!["id", "zip", "city"])
            .unwrap()
            .with_fd(Fd::new(vec!["zip"], vec!["city"]))
            .unwrap();
        let r = Relation::from_tuples(
            schema,
            vec![
                tuple![1i64, 2000i64, "Sydney"],
                tuple![2i64, 2000i64, "Sidney"], // stale spelling
            ],
        )
        .unwrap();
        let out = revise(&r, &tuple![3i64, 2000i64, "Sydney"]).unwrap();
        // Tuple 2's city revised to match the zip FD.
        assert!(out.contains(&tuple![2i64, 2000i64, "Sydney"]));
        assert!(!out.contains(&tuple![2i64, 2000i64, "Sidney"]));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn revise_all_applies_in_order() {
        let r = Relation::empty(keyed_schema());
        let t1 = tuple![1i64, "A", "X"];
        let t2 = tuple![1i64, "A", "Y"]; // same key, later wins
        let out = revise_all(&r, [&t1, &t2]).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&t2));
    }
}
