//! # dex-rellens — relational lenses
//!
//! The paper §3's concrete lens family: “relational lenses have a
//! strong correlation with relational algebra; for instance, there is a
//! ‘projection’ lens corresponding to the projection operator π.”
//!
//! The central type is [`RelLensExpr`], a tree of relational-lens
//! operators (base table, select, project, rename, join, union) whose
//! `get` evaluates like relational algebra over an [`Instance`](dex_relational::Instance) and
//! whose `put` **translates view updates back** to the base tables.
//! Where information is missing on the way back, an explicit
//! [`UpdatePolicy`] decides — the paper's four options for a dropped
//! column:
//!
//! * always use a **null**,
//! * always use a **constant**,
//! * insert an **environment** value (current user, today's date, …),
//! * use a **functional dependency** / the surviving source rows to
//!   restore the value (the least lossy option).
//!
//! Join and union carry their own policies (which side receives
//! inserts, which side absorbs deletes) — §3: “the join and union lens
//! templates must have update policies specifying whether updates are
//! propagated to the left or right inputs, or to both.”
//!
//! [`revision`] implements the FD-driven *relational revision* operator
//! used to keep puts consistent with declared dependencies.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod error;
pub mod eval;
pub mod incremental;
pub mod policy;
pub mod revision;

pub use ast::{NodeSummary, RelLensExpr};
pub use error::RellensError;
pub use eval::InstanceLens;
pub use incremental::{IncrementalLens, RelDelta, ReplayOutcome};
pub use policy::{Environment, JoinPolicy, UnionPolicy, UpdatePolicy};
pub use revision::revise;
