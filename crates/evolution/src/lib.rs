//! # dex-evolution — schema evolution (paper Figure 2)
//!
//! “Consider a mapping M between schemas A and B, and assume that
//! schema A evolves into a schema A′. … The relationship between the
//! new schema A′ and schema B can be obtained by inverting mapping M′
//! and then composing the result with mapping M.” (§2)
//!
//! The paper's §4 offers **two** lens-flavoured solutions and this
//! crate implements both:
//!
//! 1. **Invert-and-compose** (“composing mappings specified using
//!    lenses is as simple as concatenating them … one can construct a
//!    mapping from S′ to T as [ℓ₂⁻¹, ℓ₁⁻¹, m₁, m₂, m₃]”): every schema
//!    modification operator ([`Smo`]) is a symmetric lens
//!    ([`SmoLens`]), sequences concatenate ([`EvolutionLens`]), and
//!    inversion is free — prepend the inverted evolution to any
//!    mapping lens.
//! 2. **Channel-style propagation** (the paper's \[24\]): push the SMOs
//!    *through* the st-tgd mapping, producing a rewritten mapping over
//!    the evolved schema ([`propagate`], [`propagate_all`]).

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod channel;
pub mod compile;
pub mod diff;
pub mod error;
pub mod lens;
pub mod smo;

pub use catalog::{CatColumn, CatTable, Catalog, ColumnId, TableId};
pub use channel::{propagate, propagate_all};
pub use compile::{
    compile_migration, compile_migration_checked, prefix_instance, prefix_schema,
    render_mapping_dex, render_schema_dex, version_prefix, Migration,
};
pub use diff::diff;
pub use error::EvolutionError;
pub use lens::{EvolutionLens, SmoLens};
pub use smo::{ColumnDefault, Smo};
